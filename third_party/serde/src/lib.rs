//! Minimal in-tree stand-in for `serde`.
//!
//! Instead of serde's visitor-based data model, this stub routes all
//! serialization through a concrete [`Value`] tree: [`Serialize`] lowers a
//! type to a `Value`, [`Deserialize`] rebuilds it from one. The companion
//! `serde_json` stub renders `Value` to and from JSON text, and the
//! `serde_derive` stub generates the two impls for plain structs and
//! unit-variant enums — exactly the shapes this workspace serializes.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A serialized value: the common data model between formats and types.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for `None` and non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

/// Error produced when rebuilding a type from a [`Value`].
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// A free-form error.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Lowers a type to the [`Value`] data model.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuilds a type from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses `self` out of a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Looks up a struct field in a serialized map (derive-generated code).
pub fn field<'a>(map: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

impl Value {
    /// The integer content of this value, if it is numeric and integral.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// The unsigned content of this value, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) => u64::try_from(i).ok(),
            Value::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// The float content of this value (integers widen losslessly enough).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }
}

// `Value` round-trips through itself: callers that want schema-free or
// lenient parsing (optional fields, defaults) deserialize to a `Value`
// and walk the tree by hand.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected integer for ", stringify!($t))))?;
                <$t>::try_from(i).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected integer for ", stringify!($t))))?;
                <$t>::try_from(u).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| Error::custom("wrong array length"))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(Error::custom("expected 2-element sequence")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            _ => Err(Error::custom("expected 3-element sequence")),
        }
    }
}

/// Map keys must render to/from a JSON object key string.
pub trait MapKey: Sized {
    /// The string form of the key.
    fn to_key(&self) -> String;
    /// Parses the key back from its string form.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_owned())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::custom("bad integer map key"))
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: MapKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(Error::custom("expected map")),
        }
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(Error::custom("expected map")),
        }
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".into(), Value::UInt(self.as_secs())),
            ("nanos".into(), Value::UInt(u64::from(self.subsec_nanos()))),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(m) => {
                let secs = u64::from_value(field(m, "secs")?)?;
                let nanos = u32::from_value(field(m, "nanos")?)?;
                Ok(std::time::Duration::new(secs, nanos))
            }
            _ => Err(Error::custom("expected duration map")),
        }
    }
}
