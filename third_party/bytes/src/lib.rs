//! Minimal in-tree stand-in for the `bytes` crate.
//!
//! Provides the subset of [`Bytes`] this workspace uses: construction from
//! a `Vec<u8>` or slice, cheap reference-counted clones, and read access
//! through `Deref<Target = [u8]>`.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply-cloneable, immutable, reference-counted byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `slice` into a new buffer.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes { data: slice.into() }
    }

    /// Length of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A copy of the contents as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.data.len())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.data == other.as_slice()
    }
}

// JSON-friendly representation: a hex string keeps packed weight buffers
// compact and round-trips exactly.
impl serde::Serialize for Bytes {
    fn to_value(&self) -> serde::Value {
        let mut hex = String::with_capacity(self.data.len() * 2);
        for b in self.data.iter() {
            hex.push_str(&format!("{b:02x}"));
        }
        serde::Value::Str(hex)
    }
}

impl serde::Deserialize for Bytes {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Str(hex) if hex.len() % 2 == 0 && hex.is_ascii() => {
                let digits = hex.as_bytes();
                let mut data = Vec::with_capacity(digits.len() / 2);
                for pair in digits.chunks_exact(2) {
                    let byte = std::str::from_utf8(pair)
                        .ok()
                        .and_then(|s| u8::from_str_radix(s, 16).ok())
                        .ok_or_else(|| serde::Error::custom("invalid hex in byte string"))?;
                    data.push(byte);
                }
                Ok(Bytes::from(data))
            }
            _ => Err(serde::Error::custom("expected hex string for Bytes")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_share_contents() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn serde_roundtrip_and_bad_hex() {
        use serde::{Deserialize, Serialize, Value};

        let b = Bytes::from(vec![0x00u8, 0xAB, 0xFF]);
        assert_eq!(b.to_value(), Value::Str("00abff".into()));
        assert_eq!(Bytes::from_value(&b.to_value()).unwrap(), b);
        // Non-hex, odd-length, and multi-byte UTF-8 inputs must error, not
        // panic on a char-boundary slice.
        assert!(Bytes::from_value(&Value::Str("zz".into())).is_err());
        assert!(Bytes::from_value(&Value::Str("abc".into())).is_err());
        assert!(Bytes::from_value(&Value::Str("𝄞𝄞".into())).is_err());
    }
}
