//! Minimal in-tree stand-in for `serde_derive`.
//!
//! Generates the stub-`serde` [`Serialize`]/[`Deserialize`] impls (the
//! `to_value`/`from_value` pair) for the shapes this workspace actually
//! derives: structs with named fields, tuple structs, and enums whose
//! variants are units or single-field newtypes (externally tagged, the
//! real-serde JSON convention: `"Variant"` / `{"Variant": value}`).
//! Anything fancier (generics, multi-field or struct variants,
//! `#[serde(...)]` attributes) is rejected with a compile error rather
//! than silently mis-serialized.
//!
//! The input item is parsed directly from the [`proc_macro::TokenStream`];
//! no `syn`/`quote` dependency is available in this build environment.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of the deriving item.
enum Shape {
    /// `struct Name { a: A, b: B }` — field names in declaration order.
    Named(String, Vec<String>),
    /// `struct Name(A, B);` — field count.
    Tuple(String, usize),
    /// `enum Name { V1, V2(A) }` — variant names, each unit or newtype.
    Enum(String, Vec<Variant>),
}

/// One enum variant the stub derive can handle.
struct Variant {
    name: String,
    /// Whether the variant carries exactly one unnamed field.
    newtype: bool,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Consumes leading attributes (`#[...]`, including doc comments) from `iter`.
fn skip_attributes(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    while let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() != '#' {
            break;
        }
        iter.next();
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '!' => {
                iter.next();
            }
            _ => {}
        }
        if let Some(TokenTree::Group(g)) = iter.peek() {
            if g.delimiter() == Delimiter::Bracket {
                iter.next();
            }
        }
    }
}

/// Consumes a `pub` / `pub(crate)` / `pub(in ...)` prefix if present.
fn skip_visibility(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if let Some(TokenTree::Ident(id)) = iter.peek() {
        if id.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
    }
}

/// Consumes tokens up to a top-level `,`, tracking `<...>` nesting so commas
/// inside generic arguments don't split a field type. Returns false at end.
fn skip_type(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut angle_depth = 0usize;
    for tok in iter.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return true,
                _ => {}
            }
        }
    }
    false
}

fn parse_named_fields(group: TokenStream) -> Result<Vec<String>, String> {
    let mut iter = group.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut iter);
        skip_visibility(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(name)) => {
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    _ => return Err(format!("expected `:` after field `{name}`")),
                }
                fields.push(name.to_string());
                if !skip_type(&mut iter) {
                    break;
                }
            }
            None => break,
            Some(other) => return Err(format!("unexpected token `{other}` in struct body")),
        }
    }
    Ok(fields)
}

fn count_tuple_fields(group: TokenStream) -> usize {
    let mut angle_depth = 0usize;
    let mut fields = 0usize;
    let mut saw_tokens = false;
    for tok in group {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    fields += 1;
                    saw_tokens = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_tokens = true;
    }
    fields + usize::from(saw_tokens)
}

fn parse_variants(group: TokenStream) -> Result<Vec<Variant>, String> {
    let mut iter = group.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(name)) => {
                let mut newtype = false;
                match iter.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let fields = count_tuple_fields(g.stream());
                        if fields != 1 {
                            return Err(format!(
                                "variant `{name}` has {fields} fields; the serde stub derive \
                                 only supports unit and single-field newtype variants"
                            ));
                        }
                        newtype = true;
                        iter.next();
                    }
                    Some(TokenTree::Group(_)) => {
                        return Err(format!(
                            "variant `{name}` has named fields; the serde stub derive only \
                             supports unit and single-field newtype variants"
                        ));
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                        // Explicit discriminant: skip to the next comma.
                        iter.next();
                        skip_type(&mut iter);
                        variants.push(Variant {
                            name: name.to_string(),
                            newtype: false,
                        });
                        continue;
                    }
                    _ => {}
                }
                variants.push(Variant {
                    name: name.to_string(),
                    newtype,
                });
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
                    None => break,
                    Some(other) => return Err(format!("unexpected token `{other}` after variant")),
                }
            }
            None => break,
            Some(other) => return Err(format!("unexpected token `{other}` in enum body")),
        }
    }
    Ok(variants)
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let mut iter = input.into_iter().peekable();
    skip_attributes(&mut iter);
    skip_visibility(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "`{name}` is generic; the serde stub derive only supports non-generic items"
            ));
        }
    }
    match (kind.as_str(), iter.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Shape::Named(name, parse_named_fields(g.stream())?))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(Shape::Tuple(name, count_tuple_fields(g.stream())))
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => {
            Ok(Shape::Named(name, Vec::new()))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Shape::Enum(name, parse_variants(g.stream())?))
        }
        (kind, _) => Err(format!("cannot derive for `{kind} {name}`")),
    }
}

/// Derives the stub-serde `Serialize` impl (`fn to_value(&self) -> Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Named(name, fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Tuple(name, 1) => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::Tuple(name, n) => {
            let entries: String = (0..n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Seq(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    if v.newtype {
                        format!(
                            "{name}::{vn}(inner) => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from({vn:?}), \
                                 ::serde::Serialize::to_value(inner))]),"
                        )
                    } else {
                        format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?})),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// Derives the stub-serde `Deserialize` impl (`fn from_value(&Value)`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Named(name, fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::field(m, {f:?})?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Map(m) => ::std::result::Result::Ok({name} {{ {inits} }}),\n\
                             _ => ::std::result::Result::Err(::serde::Error::custom(\
                                 concat!(\"expected map for \", {name:?}))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Tuple(name, 1) => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::Tuple(name, n) => {
            let inits: String = (0..n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Seq(items) if items.len() == {n} =>\n\
                                 ::std::result::Result::Ok({name}({inits})),\n\
                             _ => ::std::result::Result::Err(::serde::Error::custom(\
                                 concat!(\"expected sequence for \", {name:?}))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| !v.newtype)
                .map(|v| {
                    let vn = &v.name;
                    format!("{vn:?} => ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let newtype_arms: String = variants
                .iter()
                .filter(|v| v.newtype)
                .map(|v| {
                    let vn = &v.name;
                    format!(
                        "{vn:?} => ::std::result::Result::Ok(\
                             {name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::std::result::Result::Err(::serde::Error::custom(\n\
                                     ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                                 let (tag, inner) = &m[0];\n\
                                 match tag.as_str() {{\n\
                                     {newtype_arms}\n\
                                     other => ::std::result::Result::Err(::serde::Error::custom(\n\
                                         ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(::serde::Error::custom(\
                                 concat!(\"expected string or 1-entry map for enum \", {name:?}))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
