//! Minimal in-tree stand-in for `serde_json`.
//!
//! Renders the stub-serde [`serde::Value`] tree to JSON text and parses it
//! back. Covers the JSON this workspace produces: objects, arrays, strings
//! (with escape sequences), booleans, null, and numbers. Float formatting
//! relies on Rust's shortest-round-trip `Display`, so `to_string` followed
//! by `from_str` reproduces every finite `f64` (and widened `f32`) exactly.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error produced by JSON serialization or parsing.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes `value` as indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Parses a value of type `T` out of JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; mirror serde_json's lossy `null`.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a trailing `.0` so the value parses back as a float.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                write_escaped(k, out);
                out.push_str(": ");
                write_value_pretty(val, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        other => write_value(other, out),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::new(format!("expected `{lit}` at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'"'
                && self.bytes[self.pos] != b'\\'
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.read_hex4()?;
                            let code = if (0xD800..=0xDBFF).contains(&unit) {
                                // UTF-16 high surrogate: must pair with an
                                // immediately following \uDC00-\uDFFF escape.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.read_hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(Error::new("unpaired high surrogate"));
                                    }
                                    0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    return Err(Error::new("unpaired high surrogate"));
                                }
                            } else if (0xDC00..=0xDFFF).contains(&unit) {
                                return Err(Error::new("unpaired low surrogate"));
                            } else {
                                unit
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            continue;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    /// Reads exactly four hex digits at the cursor (one UTF-16 code unit).
    fn read_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("bad \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(from_str::<u64>(&to_string(&42u64).unwrap()).unwrap(), 42);
        assert_eq!(from_str::<i32>(&to_string(&-7i32).unwrap()).unwrap(), -7);
        assert!(from_str::<bool>("true").unwrap());
        let f = 0.1f64 + 0.2;
        assert_eq!(from_str::<f64>(&to_string(&f).unwrap()).unwrap(), f);
        let g = 1.0e-20f32;
        assert_eq!(from_str::<f32>(&to_string(&g).unwrap()).unwrap(), g);
    }

    #[test]
    fn collection_roundtrip() {
        let v = vec![1.5f32, -2.25, 1024.0];
        assert_eq!(from_str::<Vec<f32>>(&to_string(&v).unwrap()).unwrap(), v);
        let s = String::from("a \"quoted\"\nline\ttab \\ slash");
        assert_eq!(from_str::<String>(&to_string(&s).unwrap()).unwrap(), s);
    }

    #[test]
    fn whole_floats_keep_float_shape() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(from_str::<f64>("3.0").unwrap(), 3.0);
    }

    #[test]
    fn surrogate_pairs_decode() {
        // A standard emitter that ASCII-escapes encodes 😀 as the escaped
        // UTF-16 pair D83D/DE00.
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00\"").unwrap(),
            "\u{1F600}"
        );
        assert_eq!(
            from_str::<String>("\"a\\ud834\\udd1eb\"").unwrap(),
            "a\u{1D11E}b"
        );
        // Unescaped multi-byte UTF-8 still passes straight through.
        assert_eq!(from_str::<String>("\"\u{1F600}\"").unwrap(), "\u{1F600}");
    }

    #[test]
    fn unpaired_surrogates_are_rejected() {
        assert!(from_str::<String>(r#""\ud83d""#).is_err());
        assert!(from_str::<String>(r#""\ud83dA""#).is_err());
        assert!(from_str::<String>(r#""\ude00""#).is_err());
    }
}
