//! Minimal in-tree stand-in for `criterion`.
//!
//! Keeps the bench sources unchanged — groups, [`BenchmarkId`]s,
//! [`Throughput`] annotations, `b.iter(..)` — but measures with a plain
//! walltime loop and prints one line per benchmark instead of producing
//! statistical reports. When invoked by `cargo test` (the harness passes
//! `--test`), each benchmark body runs exactly once so the suite stays fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimizer barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver holding the measurement settings.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(200),
            warm_up_time: Duration::from_millis(20),
            test_mode,
        }
    }
}

impl Criterion {
    /// Number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target total measurement time per benchmark (capped by the stub).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d.min(Duration::from_millis(500));
        self
    }

    /// Target warm-up time per benchmark (capped by the stub).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d.min(Duration::from_millis(50));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().label;
        run_benchmark(self, &label, None, &mut f);
        self
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter rendering.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Work-per-iteration annotation, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes, displayed in decimal multiples.
    BytesDecimal(u64),
}

/// A named set of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d.min(Duration::from_millis(500));
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(self.criterion, &label, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(self.criterion, &label, self.throughput, &mut f);
        self
    }

    /// Ends the group (statistics finalization in real criterion; a no-op here).
    pub fn finish(self) {}
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.iters = 1;
            self.elapsed = Duration::from_nanos(1);
            return;
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < self.iters {
            black_box(routine());
            iters += 1;
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    label: &str,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    if criterion.test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
            test_mode: true,
        };
        f(&mut b);
        println!("test {label} ... ok (ran once)");
        return;
    }

    // Warm-up pass: estimate per-iteration cost.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
        test_mode: false,
    };
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < criterion.warm_up_time && warm_iters < 1_000_000 {
        f(&mut b);
        warm_iters += b.iters.max(1);
    }
    let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));

    // Measurement: size the batch so one sample fits the time budget.
    let budget = criterion.measurement_time.as_nanos() / criterion.sample_size.max(1) as u128;
    let batch = (budget / per_iter.max(1)).clamp(1, 1_000_000) as u64;
    let mut best = f64::INFINITY;
    let mut total = 0f64;
    for _ in 0..criterion.sample_size {
        b.iters = batch;
        f(&mut b);
        let ns = b.elapsed.as_nanos() as f64 / batch as f64;
        best = best.min(ns);
        total += ns;
    }
    let mean = total / criterion.sample_size as f64;

    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:.1} Melem/s", n as f64 / mean * 1e3)
        }
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
            format!("  {:.1} MiB/s", n as f64 / mean * 1e3 / 1.048_576)
        }
        None => String::new(),
    };
    println!("{label}: mean {mean:.1} ns/iter, best {best:.1} ns/iter{rate}");
}

/// Bundles benchmark functions into a callable group, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
