//! Minimal in-tree stand-in for `proptest`.
//!
//! Implements the property-testing surface this workspace uses — the
//! [`proptest!`] harness macro, `prop_assert*` / [`prop_assume!`],
//! range/tuple/[`Just`](strategy::Just)/[`prop_oneof!`]/`prop_map`/
//! [`collection::vec`](collection::vec()) strategies and
//! [`any`](strategy::any()) — over a deterministic per-test RNG (seeded from
//! the test name, so failures reproduce across runs). Unlike real
//! proptest there is **no shrinking**: a failing case reports its inputs
//! via the assertion message instead of a minimized counterexample.

pub mod test_runner {
    /// Harness configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful (non-rejected) cases required.
        pub cases: u32,
        /// Cap on rejected cases before the test errors out.
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            // Like real proptest, the PROPTEST_CASES environment variable
            // overrides the default case count (explicit `with_cases` still
            // wins) — CI pins it so property-suite time stays bounded.
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse::<u32>().ok())
                .filter(|c| *c > 0)
                .unwrap_or(64);
            Config {
                cases,
                max_global_rejects: 4096,
            }
        }
    }

    impl Config {
        /// A config running `cases` successful cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the property is falsified.
        Fail(String),
        /// The case was filtered out by [`prop_assume!`](crate::prop_assume).
        Reject(String),
    }

    /// Deterministic SplitMix64 RNG driving strategy sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from an arbitrary label (e.g. the test name).
        pub fn deterministic(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0);
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// The stub collapses proptest's value-tree machinery into direct
    /// sampling: `sample` draws one concrete value from the RNG.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates with `self`, then with the strategy `f` returns.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Keeps only values satisfying `f` (resampling up to a bound).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                f,
                whence,
            }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                sampler: Rc::new(move |rng| self.sample(rng)),
            }
        }
    }

    /// A type-erased [`Strategy`].
    pub struct BoxedStrategy<T> {
        sampler: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                sampler: Rc::clone(&self.sampler),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.sampler)(rng)
        }
    }

    /// Strategy that always yields a clone of its payload.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between type-erased alternatives ([`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`, each equally likely.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len());
            self.options[idx].sample(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Output of [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        f: F,
        whence: &'static str,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter `{}` rejected 1000 samples in a row",
                self.whence
            );
        }
    }

    macro_rules! impl_range_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            let v = self.start + (self.end - self.start) * rng.unit_f64();
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn sample(&self, rng: &mut TestRng) -> f32 {
            let v =
                (self.start as f64 + (self.end as f64 - self.start as f64) * rng.unit_f64()) as f32;
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Canonical whole-domain strategy for a primitive (see [`any`]).
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    /// Types [`any`] can generate.
    pub trait ArbitrarySample: Sized {
        /// Draws a value from the type's full domain.
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    impl ArbitrarySample for bool {
        fn arbitrary_sample(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitrarySample for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitrarySample for f64 {
        fn arbitrary_sample(rng: &mut TestRng) -> f64 {
            // Bounded rather than bit-random: NaN-free and useful by default.
            (rng.unit_f64() - 0.5) * 2e6
        }
    }

    impl ArbitrarySample for f32 {
        fn arbitrary_sample(rng: &mut TestRng) -> f32 {
            f64::arbitrary_sample(rng) as f32
        }
    }

    impl<T: ArbitrarySample> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    /// The canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
    pub fn any<T: ArbitrarySample>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Number of elements a [`vec()`] strategy may generate.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Output of [`vec()`]: `Vec`s of `element` with a length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo;
            let len = if span <= 1 {
                self.size.lo
            } else {
                self.size.lo + rng.below(span)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `Vec`s of `element` whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

pub use strategy::Strategy;
pub use test_runner::Config as ProptestConfig;

/// Defines property tests: each `fn name(args in strategies) { body }`
/// becomes a `#[test]` running `Config::cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@harness ($cfg) $($rest)*);
    };
    (@harness ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            if rejected > config.max_global_rejects {
                                panic!(
                                    "{}: too many prop_assume rejections ({rejected})",
                                    stringify!($name)
                                );
                            }
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("{} failed after {passed} passing cases: {msg}", stringify!($name));
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@harness ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(l == r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        ::std::format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            l,
                            r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(l == r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        ::std::format!($($fmt)+),
                    ));
                }
            }
        }
    };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if l == r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        ::std::format!(
                            "assertion failed: `{} != {}`\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            l
                        ),
                    ));
                }
            }
        }
    };
}

/// Filters out the current case without failing the property.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
