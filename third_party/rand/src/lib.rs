//! Minimal in-tree stand-in for the `rand` crate.
//!
//! Implements the subset this workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] / [`Rng::gen`]
//! over primitive numeric types. The generator is a SplitMix64 stream —
//! statistically adequate for synthetic traces and fully deterministic,
//! which is what the reproducibility tests pin.

use std::ops::Range;

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: PartialOrd + Sized {
    /// Uniform sample from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Types with a canonical "whole domain" distribution for [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Sample from the canonical distribution (unit interval for floats,
    /// full range for integers, fair coin for `bool`).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: low >= high");
                let span = (high as i128 - low as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: low >= high");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = low + (high - low) * unit;
        // Guard against rounding up to the excluded endpoint.
        if v >= high {
            low
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let v = f64::sample_range(rng, low as f64, high as f64) as f32;
        if v >= high {
            low
        } else {
            v
        }
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64::sample_standard(rng) as f32
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Sample from the type's canonical distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// A fresh RNG seeded from the system clock — nondeterministic convenience.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    rngs::StdRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u = rng.gen_range(5usize..9);
            assert!((5..9).contains(&u));
            let i = rng.gen_range(-5i64..-1);
            assert!((-5..-1).contains(&i));
        }
    }

    #[test]
    fn float_range_is_reasonably_spread() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
