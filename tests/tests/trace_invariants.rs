//! Property-based invariants on trace generation and the routing math.

use hybrimoe_model::{ModelConfig, RouterOutput};
use hybrimoe_trace::{ActivationTrace, TraceGenerator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn decode_loads_always_sum_to_k(seed in 0u64..1000, steps in 1usize..6) {
        let model = ModelConfig::tiny_test();
        let trace = TraceGenerator::new(model.clone(), seed).decode_trace(steps);
        for step in &trace.steps {
            for rec in &step.layers {
                prop_assert_eq!(
                    rec.routing.loads().iter().sum::<u32>(),
                    model.activated_experts as u32
                );
            }
        }
    }

    #[test]
    fn prefill_loads_always_sum_to_tokens_times_k(seed in 0u64..1000, tokens in 1u32..64) {
        let model = ModelConfig::tiny_test();
        let trace = TraceGenerator::new(model.clone(), seed).prefill_trace(tokens);
        let rec = &trace.steps[0].layers[0];
        prop_assert_eq!(
            rec.routing.loads().iter().sum::<u32>(),
            tokens * model.activated_experts as u32
        );
    }

    #[test]
    fn score_mass_per_token_is_one(seed in 0u64..1000) {
        let model = ModelConfig::tiny_test();
        let trace = TraceGenerator::new(model, seed).decode_trace(2);
        for step in &trace.steps {
            for rec in &step.layers {
                let mass: f32 = rec.routing.score_mass().iter().sum();
                prop_assert!((mass - step.tokens as f32).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn traces_round_trip_through_json(seed in 0u64..100) {
        let trace = TraceGenerator::new(ModelConfig::tiny_test(), seed).decode_trace(2);
        let json = trace.to_json().unwrap();
        prop_assert_eq!(ActivationTrace::from_json(&json).unwrap(), trace);
    }

    #[test]
    fn router_selects_k_distinct_experts(
        logits in proptest::collection::vec(-5.0f32..5.0, 4..32),
        k in 1usize..4,
    ) {
        prop_assume!(k <= logits.len());
        let out = RouterOutput::route(&logits, k);
        prop_assert_eq!(out.selected.len(), k);
        let distinct: std::collections::HashSet<u16> =
            out.expert_ids().map(|e| e.0).collect();
        prop_assert_eq!(distinct.len(), k);
        // Combine weights are a distribution.
        let total: f32 = out.selected.iter().map(|(_, w)| w).sum();
        prop_assert!((total - 1.0).abs() < 1e-4);
        // Scores are a distribution over all experts.
        let mass: f32 = out.scores.iter().sum();
        prop_assert!((mass - 1.0).abs() < 1e-4);
    }

    #[test]
    fn predicted_layers_are_always_future_layers(seed in 0u64..200) {
        let model = ModelConfig::tiny_test();
        let trace = TraceGenerator::new(model, seed).decode_trace(2);
        for step in &trace.steps {
            for (l, rec) in step.layers.iter().enumerate() {
                for (d, pred) in rec.predicted.iter().enumerate() {
                    prop_assert_eq!(pred.layer().0 as usize, l + d + 1);
                }
            }
        }
    }
}
