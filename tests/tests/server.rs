//! Integration tests for the TCP serving front-end: streaming, admission
//! control (queue depth, load shed, drain), and SLO accounting.
//!
//! Every test drives a real server over loopback TCP with a raw
//! hand-rolled HTTP/1.1 client, the same protocol helpers the `load_gen`
//! bench uses. Pacing floors (`min_step`) make queueing structure
//! deterministic without depending on host speed: assertions are
//! orderings and lower bounds, never exact timings.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use hybrimoe::serve::server::{
    read_one_chunk, read_response_head, Server, ServerConfig, ServerHandle, ServerMetrics,
};
use hybrimoe::{EngineConfig, Framework, PrefetcherKind};
use hybrimoe_model::ModelConfig;

/// Starts a tiny-model server with the knobs the tests care about.
fn tiny_server(
    max_batch: usize,
    queue_depth: usize,
    min_step: Duration,
    shed_watermark: Option<Duration>,
) -> ServerHandle {
    let mut config = ServerConfig::new(EngineConfig::preset(
        Framework::HybriMoe,
        ModelConfig::tiny_test(),
        0.5,
    ));
    config.max_batch = max_batch;
    config.queue_depth = queue_depth;
    config.min_step = Some(min_step);
    config.shed_watermark = shed_watermark;
    Server::start(config).expect("server binds a loopback port")
}

/// One `POST /v1/generate`: returns the status and, for streamed
/// responses, every chunk in order.
fn generate(addr: SocketAddr, body: &str) -> (u16, Vec<String>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    write!(
        stream,
        "POST /v1/generate HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut reader = BufReader::new(stream);
    let (status, chunked, _) = read_response_head(&mut reader).expect("response head");
    let mut chunks = Vec::new();
    if chunked {
        while let Some(chunk) = read_one_chunk(&mut reader).expect("read chunk") {
            chunks.push(chunk);
        }
    }
    (status, chunks)
}

/// Like [`generate`], but blocks only until the *first* chunk arrives,
/// then hands back the reader: lets a test know a request entered the
/// batch while it keeps streaming.
fn generate_streaming(addr: SocketAddr, body: &str) -> (BufReader<TcpStream>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    write!(
        stream,
        "POST /v1/generate HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut reader = BufReader::new(stream);
    let (status, chunked, _) = read_response_head(&mut reader).expect("response head");
    assert_eq!(status, 200, "request should be admitted");
    assert!(chunked, "admitted responses stream");
    let first = read_one_chunk(&mut reader)
        .expect("read first chunk")
        .expect("stream has a first chunk");
    (reader, first)
}

/// Drains a streaming reader to its terminal chunk.
fn finish_stream(mut reader: BufReader<TcpStream>) -> Vec<String> {
    let mut chunks = Vec::new();
    while let Some(chunk) = read_one_chunk(&mut reader).expect("read chunk") {
        chunks.push(chunk);
    }
    chunks
}

/// Polls the server's metrics until `pred` holds. Fixed sleeps are not
/// enough on a loaded single-core host, where a client thread can take
/// hundreds of milliseconds to even connect.
fn wait_for_metrics(server: &ServerHandle, what: &str, pred: impl Fn(&ServerMetrics) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !pred(&server.metrics()) {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        thread::sleep(Duration::from_millis(10));
    }
}

/// Pulls a named `"key":<f64>` field out of a flat JSON chunk.
fn json_f64(chunk: &str, key: &str) -> f64 {
    let value: serde::Value = serde_json::from_str(chunk).expect("chunk parses");
    let serde::Value::Map(map) = value else {
        panic!("chunk is not an object: {chunk}")
    };
    map.into_iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_f64())
        .unwrap_or_else(|| panic!("chunk lacks {key}: {chunk}"))
}

#[test]
fn streams_one_chunk_per_token_then_done() {
    let server = tiny_server(4, 64, Duration::from_millis(5), None);
    let (status, chunks) = generate(server.addr(), "{\"prompt_tokens\":8,\"decode_tokens\":4}");
    assert_eq!(status, 200);
    // One first token + one per decode step + the terminal accounting.
    let tokens = chunks.iter().filter(|c| c.contains("\"token\"")).count();
    assert_eq!(tokens, 5, "chunks: {chunks:?}");
    let done = chunks.last().expect("stream has chunks");
    assert!(done.contains("\"done\":true"), "done chunk: {done}");
    assert!(json_f64(done, "ttft_ms") >= json_f64(done, "queue_wait_ms"));

    let metrics = server.shutdown();
    assert_eq!(metrics.completed, 1);
    assert_eq!(metrics.admitted, 1);
    assert_eq!(metrics.output_tokens, 5);
}

#[test]
fn full_queue_rejects_with_503() {
    // One batch slot, one waiting slot: with a long request running and
    // another waiting, the third arrival must bounce.
    let server = tiny_server(1, 1, Duration::from_millis(30), None);
    let occupant = generate_streaming(server.addr(), "{\"prompt_tokens\":4,\"decode_tokens\":30}");
    // The occupant's first token means it left the waiting queue.
    let addr = server.addr();
    let waiter = thread::spawn(move || generate(addr, "{\"prompt_tokens\":4,\"decode_tokens\":1}"));
    // The waiter holds the one queue slot once its reservation shows up.
    wait_for_metrics(&server, "the waiter's queue slot", |m| m.queued >= 1);
    let (status, _) = generate(server.addr(), "{\"prompt_tokens\":4,\"decode_tokens\":1}");
    assert_eq!(status, 503, "third request should find the queue full");
    assert!(server.metrics().rejected_queue_full >= 1);

    let (waiter_status, _) = waiter.join().expect("waiter thread");
    assert_eq!(waiter_status, 200, "the queued request still completes");
    finish_stream(occupant.0);
    let metrics = server.shutdown();
    assert_eq!(metrics.completed, 2);
}

#[test]
fn shed_watermark_sheds_best_effort_but_not_priority_zero() {
    // A long occupant plus a queued waiter push queue delay over the
    // 1 ms watermark; default-priority arrivals shed, priority 0 rides.
    let server = tiny_server(
        1,
        64,
        Duration::from_millis(30),
        Some(Duration::from_millis(1)),
    );
    let occupant = generate_streaming(server.addr(), "{\"prompt_tokens\":4,\"decode_tokens\":40}");
    let addr = server.addr();
    let waiter = thread::spawn(move || generate(addr, "{\"prompt_tokens\":4,\"decode_tokens\":1}"));
    // Wait for the waiter to reach the engine's waiting queue (two
    // admissions counted: occupant + waiter), then let it age past the
    // 1 ms watermark.
    wait_for_metrics(&server, "the waiter's admission", |m| m.admitted >= 2);
    thread::sleep(Duration::from_millis(150));

    let (shed_status, _) = generate(server.addr(), "{\"prompt_tokens\":4,\"decode_tokens\":1}");
    assert_eq!(shed_status, 503, "best-effort traffic sheds under overload");
    assert!(server.metrics().rejected_shed >= 1);

    let (vip_status, vip_chunks) = generate(
        server.addr(),
        "{\"prompt_tokens\":4,\"decode_tokens\":1,\"priority\":0}",
    );
    assert_eq!(vip_status, 200, "priority 0 is exempt from shedding");
    assert!(vip_chunks.last().expect("vip stream").contains("\"done\""));

    let (waiter_status, _) = waiter.join().expect("waiter thread");
    assert_eq!(waiter_status, 200);
    finish_stream(occupant.0);
    server.shutdown();
}

#[test]
fn graceful_drain_completes_every_admitted_request() {
    let server = tiny_server(2, 64, Duration::from_millis(10), None);
    let addr = server.addr();
    let clients: Vec<_> = (0..4)
        .map(|_| thread::spawn(move || generate(addr, "{\"prompt_tokens\":4,\"decode_tokens\":8}")))
        .collect();
    // Let all four through admission before closing it.
    wait_for_metrics(&server, "all four admissions", |m| m.admitted >= 4);
    server.drain();

    let (status, _) = generate(addr, "{\"prompt_tokens\":4,\"decode_tokens\":1}");
    assert_eq!(status, 503, "a draining server admits nothing");

    for client in clients {
        let (status, chunks) = client.join().expect("client thread");
        assert_eq!(status, 200);
        assert!(
            chunks
                .last()
                .expect("stream has chunks")
                .contains("\"done\""),
            "admitted requests stream to completion through a drain"
        );
    }
    let metrics = server.shutdown();
    assert_eq!(metrics.completed, 4);
    assert_eq!(metrics.queued, 0);
    assert_eq!(metrics.running, 0);
    assert!(metrics.rejected_draining >= 1);
    assert!(metrics.draining);
}

#[test]
fn ttft_includes_queue_wait() {
    // One batch slot: the second request's first token can only land
    // after the occupant finishes, so its TTFT is dominated by queue wait.
    let server = tiny_server(1, 64, Duration::from_millis(20), None);
    let occupant = generate_streaming(server.addr(), "{\"prompt_tokens\":4,\"decode_tokens\":10}");
    let (status, chunks) = generate(server.addr(), "{\"prompt_tokens\":4,\"decode_tokens\":1}");
    assert_eq!(status, 200);
    let done = chunks.last().expect("stream has chunks").clone();
    let queue_wait = json_f64(&done, "queue_wait_ms");
    let ttft = json_f64(&done, "ttft_ms");
    // ~10 remaining occupant steps at a 20 ms floor: well over 100 ms.
    assert!(queue_wait > 100.0, "queue wait was only {queue_wait} ms");
    assert!(ttft >= queue_wait, "ttft {ttft} < queue wait {queue_wait}");
    finish_stream(occupant.0);

    let metrics = server.shutdown();
    assert!(metrics.ttft_p99_ms >= metrics.queue_wait_p50_ms);
}

#[test]
fn priority_zero_jumps_the_waiting_queue() {
    let server = tiny_server(1, 64, Duration::from_millis(25), None);
    let occupant = generate_streaming(server.addr(), "{\"prompt_tokens\":4,\"decode_tokens\":20}");
    let addr = server.addr();
    let best_effort = thread::spawn(move || {
        let outcome = generate(addr, "{\"prompt_tokens\":4,\"decode_tokens\":2}");
        (outcome, Instant::now())
    });
    // The best-effort request must be queued before the VIP arrives.
    wait_for_metrics(&server, "the best-effort admission", |m| m.admitted >= 2);
    let vip = thread::spawn(move || {
        let outcome = generate(
            addr,
            "{\"prompt_tokens\":4,\"decode_tokens\":2,\"priority\":0}",
        );
        (outcome, Instant::now())
    });

    let ((be_status, _), be_done) = best_effort.join().expect("best-effort thread");
    let ((vip_status, _), vip_done) = vip.join().expect("vip thread");
    assert_eq!(be_status, 200);
    assert_eq!(vip_status, 200);
    assert!(
        vip_done < be_done,
        "the priority-0 request should finish first despite arriving later"
    );
    finish_stream(occupant.0);
    server.shutdown();
}

#[test]
fn mid_stream_disconnect_cancels_and_frees_the_slot() {
    // One batch slot: a long occupant streams while a short request waits.
    // Dropping the occupant's connection mid-stream must cancel it at the
    // next step boundary — counted in `cancelled` — and hand its slot to
    // the waiter, which completes normally.
    let server = tiny_server(1, 64, Duration::from_millis(20), None);
    let occupant = generate_streaming(server.addr(), "{\"prompt_tokens\":4,\"decode_tokens\":200}");
    let addr = server.addr();
    let waiter = thread::spawn(move || generate(addr, "{\"prompt_tokens\":4,\"decode_tokens\":2}"));
    wait_for_metrics(&server, "the waiter's admission", |m| m.admitted >= 2);

    // Hang up on the occupant mid-stream.
    drop(occupant);
    wait_for_metrics(&server, "the hangup to be cancelled", |m| m.cancelled >= 1);

    // The freed slot admits the waiter, which streams to completion long
    // before the occupant's 200 steps could have elapsed.
    let (waiter_status, waiter_chunks) = waiter.join().expect("waiter thread");
    assert_eq!(waiter_status, 200);
    assert!(
        waiter_chunks
            .last()
            .expect("waiter stream has chunks")
            .contains("\"done\""),
        "the queued request completes after the hangup frees its slot"
    );

    let metrics = server.shutdown();
    assert_eq!(metrics.cancelled, 1);
    assert_eq!(metrics.completed, 1, "only the waiter ran to completion");
    assert_eq!(metrics.running, 0, "the cancelled slot was reclaimed");
    assert_eq!(metrics.queued, 0);
}

/// Sends raw bytes, optionally half-closing the write side, and returns
/// the response status (0 when the server closed without a response).
fn raw_status(addr: SocketAddr, bytes: &[u8], half_close: bool) -> u16 {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream.write_all(bytes).expect("write raw bytes");
    stream.flush().expect("flush");
    if half_close {
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
    }
    let mut reader = BufReader::new(stream);
    match read_response_head(&mut reader) {
        Ok((status, _, _)) => status,
        Err(_) => 0,
    }
}

#[test]
fn malformed_requests_answer_400_and_never_hang() {
    let server = tiny_server(2, 8, Duration::from_millis(5), None);
    let addr = server.addr();

    // Binary garbage in the request line: lossily decoded, no path.
    assert_eq!(
        raw_status(addr, b"\x00\xff\xfe\x01garbage\r\n\r\n", false),
        400
    );
    // Truncated request line (EOF before the newline).
    assert_eq!(raw_status(addr, b"POST /v1/generate", true), 400);
    // Truncated header line.
    assert_eq!(
        raw_status(addr, b"GET /healthz HTTP/1.1\r\nHost: te", true),
        400
    );
    // Non-numeric, negative, and overflowing Content-Length values.
    for bad in ["banana", "-1", "99999999999999999999999999"] {
        let req =
            format!("POST /v1/generate HTTP/1.1\r\nHost: test\r\nContent-Length: {bad}\r\n\r\n");
        assert_eq!(
            raw_status(addr, req.as_bytes(), false),
            400,
            "Content-Length: {bad}"
        );
    }
    // A parseable Content-Length over the body cap.
    assert_eq!(
        raw_status(
            addr,
            b"POST /v1/generate HTTP/1.1\r\nContent-Length: 10000000\r\n\r\n",
            false
        ),
        400
    );
    // A single header line blowing the 8 KiB head budget.
    let mut oversized = b"GET /healthz HTTP/1.1\r\nX-Pad: ".to_vec();
    oversized.extend(std::iter::repeat_n(b'a', 9000));
    oversized.extend_from_slice(b"\r\n\r\n");
    assert_eq!(raw_status(addr, &oversized, false), 400);

    // The server is still fully operational afterwards.
    let (status, chunks) = generate(addr, "{\"prompt_tokens\":4,\"decode_tokens\":2}");
    assert_eq!(status, 200);
    assert!(chunks.last().expect("stream").contains("\"done\""));
    let metrics = server.shutdown();
    assert_eq!(metrics.completed, 1);
}

#[test]
fn metrics_and_healthz_endpoints_answer() {
    let server = tiny_server(4, 64, Duration::from_millis(5), None);
    for _ in 0..2 {
        let (status, _) = generate(server.addr(), "{\"prompt_tokens\":8,\"decode_tokens\":2}");
        assert_eq!(status, 200);
    }

    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    write!(
        stream,
        "GET /metrics HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .expect("write request");
    let mut reader = BufReader::new(stream);
    let (status, chunked, length) = read_response_head(&mut reader).expect("response head");
    assert_eq!(status, 200);
    assert!(!chunked);
    assert!(length > 0, "metrics responses carry a length");
    let mut body = vec![0u8; length];
    std::io::Read::read_exact(&mut reader, &mut body).expect("read body");
    let metrics: ServerMetrics =
        serde_json::from_str(std::str::from_utf8(&body).expect("utf-8")).expect("metrics parse");
    assert_eq!(metrics.completed, 2);
    assert_eq!(metrics.admitted, 2);
    assert!(!metrics.draining);
    assert!(metrics.ttft_p50_ms > 0.0);

    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    write!(
        stream,
        "GET /healthz HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .expect("write request");
    let mut reader = BufReader::new(stream);
    let (status, _, _) = read_response_head(&mut reader).expect("response head");
    assert_eq!(status, 200);
    server.shutdown();
}

/// `GET /metrics` exposes the engine's prefetch and predictor telemetry:
/// the raw wire JSON carries the new fields, and on a predictive engine
/// the parsed snapshot reports a predictor accuracy and per-shard hit
/// ratios consistent with the prefetch counters.
#[test]
fn metrics_expose_prefetch_and_predictor_telemetry() {
    let mut config = ServerConfig::new(
        EngineConfig::preset(Framework::HybriMoe, ModelConfig::tiny_test(), 0.5)
            .with_prefetcher(PrefetcherKind::Predictive),
    );
    config.max_batch = 4;
    config.queue_depth = 64;
    config.min_step = Some(Duration::from_millis(5));
    let server = Server::start(config).expect("server binds a loopback port");

    let (status, _) = generate(server.addr(), "{\"prompt_tokens\":8,\"decode_tokens\":4}");
    assert_eq!(status, 200);

    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    write!(
        stream,
        "GET /metrics HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .expect("write request");
    let mut reader = BufReader::new(stream);
    let (status, chunked, length) = read_response_head(&mut reader).expect("response head");
    assert_eq!(status, 200);
    assert!(!chunked);
    let mut body = vec![0u8; length];
    std::io::Read::read_exact(&mut reader, &mut body).expect("read body");
    let body = std::str::from_utf8(&body).expect("utf-8");
    for field in [
        "\"prefetch_issued\"",
        "\"prefetch_landed\"",
        "\"prefetch_wasted\"",
        "\"predictor_topk_accuracy\"",
        "\"shard_hit_ratio\"",
    ] {
        assert!(body.contains(field), "wire JSON lacks {field}: {body}");
    }

    let metrics: ServerMetrics = serde_json::from_str(body).expect("metrics parse");
    assert!(metrics.engine_steps > 0, "the request must have stepped");
    // Every landed or wasted transfer was issued first.
    assert!(metrics.prefetch_landed + metrics.prefetch_wasted <= metrics.prefetch_issued);
    // A predictive engine always runs a predictor, so accuracy is
    // reported (as a ratio), never omitted.
    let accuracy = metrics
        .predictor_topk_accuracy
        .expect("predictive engines report predictor accuracy");
    assert!((0.0..=1.0).contains(&accuracy), "accuracy {accuracy}");
    assert!(
        !metrics.shard_hit_ratio.is_empty(),
        "per-shard hit ratios are published every step"
    );
    assert!(metrics
        .shard_hit_ratio
        .iter()
        .all(|r| (0.0..=1.0).contains(r)));
    server.shutdown();
}
