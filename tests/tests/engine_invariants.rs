//! Property-based invariants on the full engine, across random
//! configurations: conservation (every activated expert computed exactly
//! once), metric bounds, and determinism.

use hybrimoe::{CachePolicyKind, Engine, EngineConfig, Framework, PrefetcherKind, SchedulerKind};
use hybrimoe_model::ModelConfig;
use hybrimoe_trace::TraceGenerator;
use proptest::prelude::*;

fn arb_framework() -> impl Strategy<Value = Framework> {
    prop_oneof![
        Just(Framework::LlamaCpp),
        Just(Framework::AdapMoe),
        Just(Framework::KTransformers),
        Just(Framework::HybriMoe),
    ]
}

fn arb_scheduler() -> impl Strategy<Value = SchedulerKind> {
    prop_oneof![
        Just(SchedulerKind::Hybrid),
        Just(SchedulerKind::FixedMapping),
        Just(SchedulerKind::GpuOnly),
        Just(SchedulerKind::StaticSplit),
    ]
}

fn arb_policy() -> impl Strategy<Value = CachePolicyKind> {
    prop_oneof![
        Just(CachePolicyKind::Lru),
        Just(CachePolicyKind::Lfu),
        Just(CachePolicyKind::Mrs),
    ]
}

fn arb_prefetcher() -> impl Strategy<Value = PrefetcherKind> {
    prop_oneof![
        Just(PrefetcherKind::None),
        Just(PrefetcherKind::NextLayerTopK),
        Just(PrefetcherKind::ImpactDriven),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conservation_holds_for_every_preset(
        framework in arb_framework(),
        ratio in 0.0f64..1.0,
        seed in 0u64..500,
        steps in 1usize..5,
    ) {
        let model = ModelConfig::tiny_test();
        let trace = TraceGenerator::new(model.clone(), seed).decode_trace(steps);
        let mut engine = Engine::new(EngineConfig::preset(framework, model, ratio));
        let m = engine.run(&trace);
        // Every activated expert computed exactly once.
        prop_assert_eq!(m.cpu_experts() + m.gpu_experts(), m.cache.lookups());
        prop_assert!(m.hit_rate() >= 0.0 && m.hit_rate() <= 1.0);
        prop_assert!(m.total.as_nanos() > 0);
        // Hits never exceed lookups; eviction count never exceeds inserts.
        prop_assert!(m.cache.hits <= m.cache.lookups());
        prop_assert!(m.cache.evictions <= m.cache.insertions);
    }

    #[test]
    fn conservation_holds_for_random_component_mixes(
        scheduler in arb_scheduler(),
        policy in arb_policy(),
        prefetcher in arb_prefetcher(),
        pinned in any::<bool>(),
        refill in any::<bool>(),
        demand in any::<bool>(),
        ratio in 0.1f64..0.9,
        seed in 0u64..200,
    ) {
        let model = ModelConfig::tiny_test();
        let trace = TraceGenerator::new(model.clone(), seed).decode_trace(2);
        let config = EngineConfig {
            scheduler,
            cache_policy: policy,
            prefetcher,
            pinned,
            refill_on_miss: refill,
            demand_inserts: demand,
            ..EngineConfig::preset(Framework::HybriMoe, model, ratio)
        };
        let mut engine = Engine::new(config);
        let m = engine.run(&trace);
        prop_assert_eq!(m.cpu_experts() + m.gpu_experts(), m.cache.lookups());
    }

    #[test]
    fn runs_are_reproducible(
        framework in arb_framework(),
        ratio in 0.1f64..0.9,
        seed in 0u64..200,
    ) {
        let model = ModelConfig::tiny_test();
        let trace = TraceGenerator::new(model.clone(), seed).decode_trace(3);
        let config = EngineConfig::preset(framework, model, ratio);
        let a = Engine::new(config.clone()).run(&trace);
        let b = Engine::new(config).run(&trace);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn prefill_conservation(
        framework in arb_framework(),
        tokens in 1u32..96,
        seed in 0u64..200,
    ) {
        let model = ModelConfig::tiny_test();
        let trace = TraceGenerator::new(model.clone(), seed).prefill_trace(tokens);
        let mut engine = Engine::new(EngineConfig::preset(framework, model, 0.5));
        let m = engine.run(&trace);
        prop_assert_eq!(m.cpu_experts() + m.gpu_experts(), m.cache.lookups());
        prop_assert_eq!(m.steps[0].tokens, tokens);
    }
}
