//! Markdown documentation link checker.
//!
//! Every relative link in the repo's hand-written markdown (README,
//! ARCHITECTURE, everything under `docs/`) must resolve to a file that
//! exists, so the docs cannot silently rot as files move. External
//! (`http://`, `https://`, `mailto:`) and in-page `#anchor` links are
//! out of scope.

use std::fs;
use std::path::{Path, PathBuf};

/// The markdown files covered by the checker, relative to the repo root.
fn documents() -> Vec<PathBuf> {
    let root = repo_root();
    let mut docs = vec![
        root.join("README.md"),
        root.join("ARCHITECTURE.md"),
        root.join("ROADMAP.md"),
    ];
    let docs_dir = root.join("docs");
    if let Ok(entries) = fs::read_dir(&docs_dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "md") {
                docs.push(path);
            }
        }
    }
    docs
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..")
}

/// Extracts the `target` of every inline markdown link `[text](target)`
/// in `source`. Skips fenced code blocks, where `](` is almost always
/// code rather than a link.
fn extract_links(source: &str) -> Vec<String> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for line in source.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while let Some(open) = line[i..].find("](").map(|p| p + i) {
            // Walk back to the matching '[' for sanity; if there is none
            // on this line, treat it as prose and move on.
            let has_bracket = line[..open].contains('[');
            let start = open + 2;
            if let Some(close) = line[start..].find(')').map(|p| p + start) {
                if has_bracket && bytes[start..close].iter().all(|b| !b.is_ascii_whitespace()) {
                    links.push(line[start..close].to_string());
                }
                i = close + 1;
            } else {
                break;
            }
        }
    }
    links
}

#[test]
fn relative_markdown_links_resolve() {
    let mut failures = Vec::new();
    let mut checked = 0usize;
    for doc in documents() {
        let text = fs::read_to_string(&doc)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", doc.display()));
        let base = doc.parent().expect("doc has a parent directory");
        for link in extract_links(&text) {
            if link.starts_with("http://")
                || link.starts_with("https://")
                || link.starts_with("mailto:")
                || link.starts_with('#')
            {
                continue;
            }
            // Strip an in-page anchor from a file link: `path.md#section`.
            let path_part = link.split('#').next().unwrap_or(&link);
            if path_part.is_empty() {
                continue;
            }
            checked += 1;
            let target = base.join(path_part);
            if !target.exists() {
                failures.push(format!(
                    "{}: broken link `{link}` (no file at {})",
                    doc.display(),
                    target.display()
                ));
            }
        }
    }
    assert!(
        checked >= 2,
        "link extraction found only {checked} relative link(s); \
         the checker may have stopped parsing anything"
    );
    assert!(
        failures.is_empty(),
        "broken markdown links:\n{}",
        failures.join("\n")
    );
}

#[test]
fn architecture_doc_is_linked_from_readme_and_names_real_crates() {
    let root = repo_root();
    let readme = fs::read_to_string(root.join("README.md")).expect("read README.md");
    assert!(
        readme.contains("ARCHITECTURE.md"),
        "README.md must link to ARCHITECTURE.md"
    );
    let arch = fs::read_to_string(root.join("ARCHITECTURE.md")).expect("read ARCHITECTURE.md");
    // Every crate directory must be described in the crate map, and every
    // path the map names must exist.
    for entry in fs::read_dir(root.join("crates")).expect("list crates/") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy();
        assert!(
            arch.contains(&format!("crates/{name}")),
            "ARCHITECTURE.md crate map is missing crates/{name}"
        );
    }
}
