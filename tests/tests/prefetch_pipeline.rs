//! Integration tests for the cross-layer predictive prefetch pipeline and
//! chunked prefill: the pipelined free-slots invariant (staged landings
//! never evict), step-boundary visibility of landed transfers, numerical
//! equivalence of chunked and unchunked prefill on the real backend, and
//! decode-latency flatness while a long prompt is in flight.

use hybrimoe::realexec::RealExecOptions;
use hybrimoe::serve::{ContinuousBatcher, RequestSpec};
use hybrimoe::{BackendKind, Engine, EngineConfig, Framework, PlacementKind, PrefetcherKind};
use hybrimoe_hw::{SimDuration, SimTime};
use hybrimoe_model::ModelConfig;
use hybrimoe_trace::TraceGenerator;
use proptest::prelude::*;

fn arb_prefetcher() -> impl Strategy<Value = PrefetcherKind> {
    prop_oneof![
        Just(PrefetcherKind::NextLayerTopK),
        Just(PrefetcherKind::ImpactDriven),
        Just(PrefetcherKind::Predictive),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pipelined prefetch accounting and the free-slots invariant, across
    /// random prefetchers, cache ratios and seeds: every transfer staged at
    /// a step boundary resolves exactly there (landed or wasted, nothing
    /// lingers or double-counts), and the number that land never exceeds
    /// the free slots that existed at the boundary — staged landings never
    /// evict a resident expert.
    #[test]
    fn pipelined_commits_fill_free_slots_only(
        kind in arb_prefetcher(),
        ratio in 0.2f64..0.8,
        seed in 0u64..1_000,
        steps in 4usize..12,
        whole_layers in any::<bool>(),
    ) {
        let model = ModelConfig::tiny_test();
        let trace = TraceGenerator::new(model.clone(), seed).decode_trace(steps);
        let mut config = EngineConfig::preset(Framework::HybriMoe, model, ratio)
            .with_seed(seed)
            .with_prefetcher(kind)
            .with_pipelined_prefetch(true);
        if whole_layers {
            // Whole-layer placement leaves remainder slots free, so the
            // staging path actually runs (frequency placement fills the
            // cache completely and nothing can ever stage).
            config.placement = PlacementKind::WholeLayers;
        }
        let mut engine = Engine::new(config);
        for step in &trace.steps {
            let pending = engine.pending_prefetch_commits().len() as u64;
            let free = engine.cache().free_slots() as u64;
            let before = engine.prefetch_counters();
            engine.step(step);
            let after = engine.prefetch_counters();
            let landed = after.landed - before.landed;
            let wasted = after.wasted - before.wasted;
            prop_assert_eq!(
                landed + wasted, pending,
                "staged prefetches must resolve exactly at the boundary"
            );
            prop_assert!(
                landed <= free,
                "{landed} landings with only {free} free slots: a commit evicted"
            );
        }
    }

    /// Without pipelining nothing is ever staged: the boundary-commit path
    /// is exclusive to pipelined mode.
    #[test]
    fn unpipelined_engine_stages_nothing(
        kind in arb_prefetcher(),
        seed in 0u64..1_000,
    ) {
        let model = ModelConfig::tiny_test();
        let trace = TraceGenerator::new(model.clone(), seed).decode_trace(6);
        let mut engine = Engine::new(
            EngineConfig::preset(Framework::HybriMoe, model, 0.5)
                .with_seed(seed)
                .with_prefetcher(kind),
        );
        for step in &trace.steps {
            engine.step(step);
            prop_assert!(engine.pending_prefetch_commits().is_empty());
        }
    }
}

/// A transfer that finishes during step `N` is invisible for the rest of
/// step `N` and becomes cache-resident (or is counted wasted) exactly when
/// step `N + 1` begins.
#[test]
fn landed_prefetches_become_visible_at_the_next_step_boundary() {
    let model = ModelConfig::tiny_test();
    let trace = TraceGenerator::new(model.clone(), 11).decode_trace(16);
    // Whole-layer placement leaves a few cache slots free, so boundary
    // staging actually occurs; at cache ratio 0.7 this scenario exercises
    // both outcomes (some staged transfers land, some arrive wasted).
    let mut config = EngineConfig::preset(Framework::HybriMoe, model, 0.7)
        .with_seed(11)
        .with_prefetcher(PrefetcherKind::NextLayerTopK)
        .with_pipelined_prefetch(true);
    config.placement = PlacementKind::WholeLayers;
    let mut engine = Engine::new(config);
    let mut exercised = false;
    let mut steps = trace.steps.iter();
    let mut staged: Vec<_> = Vec::new();
    for step in &mut steps {
        // Resolve what the previous iteration staged.
        let before = engine.prefetch_counters();
        engine.step(step);
        let after = engine.prefetch_counters();
        if !staged.is_empty() {
            exercised = true;
            let resolved = (after.landed - before.landed) + (after.wasted - before.wasted);
            assert_eq!(
                resolved,
                staged.len() as u64,
                "every staged transfer resolves at the next boundary"
            );
            let wasted = after.wasted - before.wasted;
            let resident = staged
                .iter()
                .filter(|key| engine.cache().contains(**key))
                .count() as u64;
            assert!(
                resident + wasted >= staged.len() as u64,
                "a staged transfer neither landed nor was counted wasted: \
                 {staged:?} ({resident} resident, {wasted} wasted)"
            );
        }
        staged = engine.pending_prefetch_commits();
    }
    assert!(
        exercised,
        "the scenario never staged a prefetch: the test is vacuous"
    );
}

/// Chunked prefill computes exactly what unchunked prefill computes: on
/// the real CPU backend, running a prompt as decode-interleavable chunks
/// yields bit-identical per-layer hidden states to the single-pass
/// prefill, row for row.
#[test]
fn chunked_prefill_is_bit_identical_on_the_real_backend() {
    let model = ModelConfig::tiny_test();
    let layers = model.layers as usize;
    let config = EngineConfig::preset(Framework::HybriMoe, model.clone(), 0.5)
        .with_backend(BackendKind::RealCpu)
        .with_real_exec(RealExecOptions {
            max_threads: 1,
            ..Default::default()
        })
        .with_seed(19);

    let generator = TraceGenerator::new(model, 19).with_token_states();
    let (full, _) = generator.request(40);
    let (chunks, _) = generator.request_chunked(40, 16);
    assert!(chunks.len() > 1, "the prompt must actually split");
    assert_eq!(chunks.iter().map(|c| c.tokens).sum::<u32>(), 40);

    let mut reference = Engine::new(config.clone());
    reference.step(&full);
    let unchunked: Vec<Vec<f32>> = reference
        .take_real_outputs()
        .into_iter()
        .map(|o| o.output)
        .collect();
    assert_eq!(unchunked.len(), layers);

    let mut engine = Engine::new(config);
    let mut stitched: Vec<Vec<f32>> = vec![Vec::new(); layers];
    for chunk in &chunks {
        engine.step(chunk);
        let outputs = engine.take_real_outputs();
        assert_eq!(outputs.len(), layers);
        for (layer, out) in outputs.into_iter().enumerate() {
            stitched[layer].extend(out.output);
        }
    }
    assert_eq!(
        stitched, unchunked,
        "chunked prefill must be bit-identical to the single-pass prefill"
    );
}

/// While a 1024-token prompt is in flight, chunked prefill keeps the
/// decode TPOT of a neighboring request flat: no decode step stalls behind
/// a monolithic prefill pass, so the worst decode-step latency under
/// chunking stays far below the unchunked spike.
#[test]
fn chunked_prefill_keeps_decode_tpot_flat_under_a_long_prompt() {
    let run = |chunk: Option<u32>| -> (SimDuration, SimDuration) {
        let mut engine =
            EngineConfig::preset(Framework::HybriMoe, ModelConfig::deepseek(), 0.25).with_seed(3);
        if let Some(size) = chunk {
            engine = engine.with_chunked_prefill(size);
        }
        let mut batcher = ContinuousBatcher::new(engine, 4, 3);
        // The neighbor is admitted alone and decodes for a few steps
        // before the 1024-token prompt arrives, so the long prefill must
        // merge into steps that also carry the neighbor's decode tokens.
        batcher.enqueue(RequestSpec {
            id: 0,
            arrival: SimTime::ZERO,
            prompt_tokens: 8,
            decode_tokens: 48,
            priority: 0,
            deadline: None,
        });
        let mut now = SimTime::ZERO;
        for _ in 0..4 {
            let outcome = batcher.step(now, |lat| now + lat);
            now = outcome.end;
        }
        batcher.enqueue(RequestSpec {
            id: 1,
            arrival: now,
            prompt_tokens: 1024,
            decode_tokens: 4,
            priority: 1,
            deadline: None,
        });
        // Worst and median step latency among steps where the neighbor
        // decoded while the long request was still prefilling or decoding.
        let mut decode_lat: Vec<SimDuration> = Vec::new();
        let mut worst = SimDuration::ZERO;
        while !batcher.is_idle() {
            let outcome = batcher.step(now, |lat| now + lat);
            now = outcome.end;
            if outcome.decoded.iter().any(|(id, _)| *id == 0) {
                decode_lat.push(outcome.stat.latency);
                worst = worst.max(outcome.stat.latency);
            }
        }
        decode_lat.sort();
        (worst, decode_lat[decode_lat.len() / 2])
    };

    let (unchunked_worst, _) = run(None);
    let (chunked_worst, chunked_median) = run(Some(32));
    // The monolithic 1024-token pass stalls a decode step for far longer
    // than any chunk-sized pass does (the spike is the neighbor's decode
    // TPOT p99 in this scenario — one giant step dominates the tail).
    assert!(
        chunked_worst * 2 < unchunked_worst,
        "chunking should cut the worst decode-step stall at least 2x: \
         chunked {chunked_worst:?}, unchunked {unchunked_worst:?}"
    );
    // Flat in absolute terms too: while the prompt is in flight, the worst
    // chunked decode step stays within a small factor of the median one —
    // no step stalls out of line with its peers.
    assert!(
        chunked_worst < chunked_median * 2,
        "chunked decode latency is not flat: worst {chunked_worst:?} vs \
         median {chunked_median:?}"
    );
}
