//! Property-based invariants on the compute kernels: quantization error
//! bounds, GEMM linearity, and FFN batch/single-token agreement.

use hybrimoe_kernels::{gemm, ExpertFfn, QuantizedMatrix, Q4_BLOCK};
use proptest::prelude::*;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantization_error_is_bounded(w in arb_matrix(3, Q4_BLOCK * 2)) {
        let q = QuantizedMatrix::quantize(&w, 3, Q4_BLOCK * 2).unwrap();
        let back = q.dequantize();
        let bound = q.max_step() / 2.0 + 1e-6;
        for (a, b) in w.iter().zip(back.iter()) {
            prop_assert!((a - b).abs() <= bound, "{a} vs {b}, bound {bound}");
        }
    }

    #[test]
    fn double_quantization_error_stays_bounded(w in arb_matrix(2, Q4_BLOCK)) {
        // Re-quantizing a dequantized matrix compounds at most one extra
        // quantization step (the scale shifts by the code-range asymmetry,
        // so exact idempotence does not hold).
        let q1 = QuantizedMatrix::quantize(&w, 2, Q4_BLOCK).unwrap();
        let d1 = q1.dequantize();
        let q2 = QuantizedMatrix::quantize(&d1, 2, Q4_BLOCK).unwrap();
        let d2 = q2.dequantize();
        let bound = q1.max_step() / 2.0 + q2.max_step() / 2.0 + 1e-6;
        for (a, b) in w.iter().zip(d2.iter()) {
            prop_assert!((a - b).abs() <= bound, "{a} vs {b}, bound {bound}");
        }
    }

    #[test]
    fn gemv_is_linear(
        w in arb_matrix(4, 8),
        x in proptest::collection::vec(-1.0f32..1.0, 8),
        scale in -3.0f32..3.0,
    ) {
        let mut y1 = vec![0.0; 4];
        gemm::gemv(&w, 4, 8, &x, &mut y1);
        let sx: Vec<f32> = x.iter().map(|v| v * scale).collect();
        let mut y2 = vec![0.0; 4];
        gemm::gemv(&w, 4, 8, &sx, &mut y2);
        for (a, b) in y1.iter().zip(y2.iter()) {
            prop_assert!((a * scale - b).abs() < 1e-3, "{} vs {}", a * scale, b);
        }
    }

    #[test]
    fn gemm_thread_count_does_not_change_results(
        a in arb_matrix(5, 6),
        b in arb_matrix(6, 4),
        threads in 1usize..6,
    ) {
        let mut c1 = vec![0.0; 5 * 4];
        let mut cn = vec![0.0; 5 * 4];
        gemm::gemm(&a, &b, &mut c1, 5, 6, 4, 1);
        gemm::gemm(&a, &b, &mut cn, 5, 6, 4, threads);
        prop_assert_eq!(c1, cn);
    }

    #[test]
    fn ffn_batch_agrees_with_single(seed in 0u64..50, tokens in 1usize..4) {
        let ffn = ExpertFfn::random(Q4_BLOCK, Q4_BLOCK * 2, seed);
        let x: Vec<f32> = (0..tokens * Q4_BLOCK)
            .map(|i| ((i as f32) * 0.13).sin() * 0.2)
            .collect();
        let batch = ffn.forward_batch(&x, tokens, 2);
        for t in 0..tokens {
            let single = ffn.forward(&x[t * Q4_BLOCK..(t + 1) * Q4_BLOCK]);
            for i in 0..Q4_BLOCK {
                prop_assert!((batch[t * Q4_BLOCK + i] - single[i]).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn silu_is_bounded_below(x in -50.0f32..50.0) {
        let y = gemm::silu(x);
        prop_assert!(y >= -0.279, "silu({x}) = {y}");
        prop_assert!(y <= x.max(0.0) + 1e-6);
    }
}
