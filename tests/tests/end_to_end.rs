//! End-to-end integration tests: every framework preset on every paper
//! model, with cross-cutting metric consistency checks.

use hybrimoe::{Engine, EngineConfig, Framework};
use hybrimoe_hw::SimDuration;
use hybrimoe_model::ModelConfig;
use hybrimoe_tests::{decode, decode_trace, prefill, SEED};
use hybrimoe_trace::TraceGenerator;

#[test]
fn every_framework_runs_every_model_decode() {
    for model in ModelConfig::paper_models() {
        for framework in Framework::ALL {
            let m = decode(framework, &model, 0.5, 4);
            assert_eq!(m.steps.len(), 4, "{framework} on {}", model.name);
            assert!(m.total > SimDuration::ZERO);
            // Every activated expert is computed exactly once somewhere.
            let activated = m.cache.lookups();
            assert_eq!(
                m.cpu_experts() + m.gpu_experts(),
                activated,
                "{framework} on {}",
                model.name
            );
        }
    }
}

#[test]
fn every_framework_runs_every_model_prefill() {
    for model in ModelConfig::paper_models() {
        for framework in Framework::ALL {
            let m = prefill(framework, &model, 0.5, 64);
            assert_eq!(m.steps.len(), 1);
            assert!(m.total > SimDuration::ZERO);
            assert_eq!(m.steps[0].tokens, 64);
        }
    }
}

#[test]
fn runs_are_deterministic_across_engines() {
    let model = ModelConfig::deepseek();
    let trace = decode_trace(&model, 6);
    let config = EngineConfig::preset(Framework::HybriMoe, model, 0.25);
    let a = Engine::new(config.clone()).run(&trace);
    let b = Engine::new(config).run(&trace);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_change_the_trace_but_not_the_contract() {
    let model = ModelConfig::mixtral();
    let t1 = TraceGenerator::new(model.clone(), 1).decode_trace(4);
    let t2 = TraceGenerator::new(model.clone(), 2).decode_trace(4);
    assert_ne!(t1, t2);
    for trace in [t1, t2] {
        let m = Engine::new(EngineConfig::preset(
            Framework::HybriMoe,
            model.clone(),
            0.5,
        ))
        .run(&trace);
        assert_eq!(m.cpu_experts() + m.gpu_experts(), m.cache.lookups());
    }
}

#[test]
fn cache_ratio_zero_and_one_are_well_behaved() {
    let model = ModelConfig::deepseek();
    let empty = decode(Framework::HybriMoe, &model, 0.0, 3);
    assert_eq!(empty.hit_rate(), 0.0);
    let full = decode(Framework::HybriMoe, &model, 1.0, 3);
    assert!((full.hit_rate() - 1.0).abs() < 1e-9);
    assert!(full.total < empty.total, "full cache must be faster");
}

#[test]
fn more_cache_is_never_slower_for_hybrimoe() {
    let model = ModelConfig::qwen2();
    let mut last = SimDuration::from_millis(1 << 40);
    for ratio in [0.25, 0.5, 0.75, 1.0] {
        let m = decode(Framework::HybriMoe, &model, ratio, 8);
        assert!(
            m.total <= last,
            "ratio {ratio} got slower: {} > {}",
            m.total,
            last
        );
        last = m.total;
    }
}

#[test]
fn prefill_latency_grows_with_prompt_length() {
    let model = ModelConfig::deepseek();
    let short = prefill(Framework::HybriMoe, &model, 0.5, 32);
    let long = prefill(Framework::HybriMoe, &model, 0.5, 512);
    assert!(long.total > short.total);
}

#[test]
fn persistent_engine_keeps_cache_warm_across_runs() {
    let model = ModelConfig::deepseek();
    let mut engine = Engine::new(EngineConfig::preset(
        Framework::HybriMoe,
        model.clone(),
        0.25,
    ));
    let t1 = TraceGenerator::new(model.clone(), SEED).decode_trace(16);
    let first = engine.run(&t1);
    let second = engine.run(&t1);
    // Replaying the identical trace on the now-adapted cache hits more.
    assert!(
        second.hit_rate() >= first.hit_rate(),
        "warm {} < cold {}",
        second.hit_rate(),
        first.hit_rate()
    );
}

#[test]
fn device_busy_times_are_bounded_by_latency() {
    let model = ModelConfig::mixtral();
    let m = decode(Framework::HybriMoe, &model, 0.5, 4);
    for step in &m.steps {
        for (d, busy) in hybrimoe_hw::devices(step.num_gpus()).zip(step.device_busy.iter()) {
            // PCIe may exceed the step latency only because background
            // prefetch accounting attributes whole transfers to the step
            // that completes them; compute devices never can.
            if d.is_compute() {
                assert!(
                    *busy <= step.latency,
                    "{d} busy {busy} exceeds latency {}",
                    step.latency
                );
            }
        }
    }
}
