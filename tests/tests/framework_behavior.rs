//! Behavioural contracts of each framework preset — the properties that
//! define llama.cpp / AdapMoE / kTransformers / HybriMoE as *policies*,
//! independent of any latency numbers.

use hybrimoe::{Engine, EngineConfig, Framework};
use hybrimoe_model::ModelConfig;
use hybrimoe_sched::{oracle_makespan, ExpertTask, HybridScheduler, ScheduleContext, Scheduler};
use hybrimoe_tests::{decode, decode_trace, prefill, prefill_trace};

/// AdapMoE is GPU-centric: it never computes an expert on the CPU.
#[test]
fn adapmoe_never_uses_cpu_experts() {
    for model in ModelConfig::paper_models() {
        let d = decode(Framework::AdapMoe, &model, 0.25, 4);
        assert_eq!(d.cpu_experts(), 0, "{} decode", model.name);
        let p = prefill(Framework::AdapMoe, &model, 0.25, 64);
        assert_eq!(p.cpu_experts(), 0, "{} prefill", model.name);
    }
}

/// kTransformers never transfers experts on demand (its mapping is fixed).
#[test]
fn ktransformers_decode_never_transfers() {
    for model in ModelConfig::paper_models() {
        let d = decode(Framework::KTransformers, &model, 0.25, 4);
        assert_eq!(d.demand_transfers(), 0, "{} decode", model.name);
        assert_eq!(d.prefetches(), 0);
    }
}

/// llama.cpp at decode keeps every layer on one device: a layer's experts
/// are either all CPU or all GPU.
#[test]
fn llamacpp_decode_is_whole_layer() {
    let model = ModelConfig::deepseek();
    let trace = decode_trace(&model, 4);
    let mut engine = Engine::new(EngineConfig::preset(
        Framework::LlamaCpp,
        model.clone(),
        0.5,
    ));
    let m = engine.run(&trace);
    // 50% cache = 13 resident layers of 26; per step, K experts per layer:
    // GPU experts = resident_layers * K, CPU experts = rest.
    let k = model.activated_experts as u64;
    let steps = m.steps.len() as u64;
    assert_eq!(m.gpu_experts(), 13 * k * steps);
    assert_eq!(m.cpu_experts(), 13 * k * steps);
}

/// llama.cpp streams prefill batches: no cache insertions from prefill
/// loads (streamed weights are discarded).
#[test]
fn llamacpp_prefill_streams_without_caching() {
    let model = ModelConfig::deepseek();
    let m = prefill(Framework::LlamaCpp, &model, 0.25, 128);
    assert!(m.demand_transfers() > 0, "CPU layers must stream");
    assert_eq!(m.cache.insertions, 0, "streamed weights are not cached");
}

/// HybriMoE's decode uses all three mechanisms on a tight cache.
#[test]
fn hybrimoe_uses_all_three_mechanisms() {
    let model = ModelConfig::deepseek();
    let m = decode(Framework::HybriMoe, &model, 0.25, 16);
    assert!(m.cpu_experts() > 0, "hybrid must use the CPU");
    assert!(m.gpu_experts() > 0, "hybrid must use the GPU");
    assert!(m.prefetches() > 0, "prefetch/refill must fire");
    assert!(m.cache.evictions > 0, "MRS must manage the cache");
}

/// The engine's hybrid plans stay optimal against the exhaustive oracle on
/// real cost models, for every small layer of a real trace.
#[test]
fn hybrid_matches_oracle_on_real_traces() {
    use hybrimoe_hw::{AffineCostModel, Platform};
    let model = ModelConfig::mixtral(); // ≤ 8 experts: oracle territory
    let trace = decode_trace(&model, 3);
    let cost = AffineCostModel::from_platform(&Platform::a6000_xeon10());
    let mut checked = 0;
    for step in &trace.steps {
        for (l, rec) in step.layers.iter().enumerate() {
            let tasks: Vec<ExpertTask> = rec
                .routing
                .activated()
                .into_iter()
                .map(|(e, load)| ExpertTask {
                    expert: e,
                    load,
                    cached: e.0 % 2 == 0, // arbitrary residency pattern
                })
                .collect();
            let ctx = ScheduleContext::new(
                hybrimoe_model::LayerId(l as u16),
                step.tokens,
                &tasks,
                model.routed_profile(),
                model.shared_profile(),
                &cost,
            );
            let hybrid = HybridScheduler::new().schedule(&ctx).predicted_makespan;
            let Some(opt) = oracle_makespan(&ctx) else {
                continue;
            };
            assert!(
                hybrid <= opt.mul_f64(1.02).max(opt),
                "layer {l}: hybrid {hybrid} vs oracle {opt}"
            );
            checked += 1;
        }
    }
    assert!(checked > 50, "oracle comparison must cover real layers");
}

/// Prefill-sized batches flip kTransformers into on-demand loading.
#[test]
fn ktransformers_prefill_loads_on_demand() {
    let model = ModelConfig::mixtral();
    let trace = prefill_trace(&model, 128);
    let mut engine = Engine::new(EngineConfig::preset(Framework::KTransformers, model, 0.25));
    let m = engine.run(&trace);
    assert_eq!(m.cpu_experts(), 0, "no CPU expert compute at prefill");
    assert!(m.demand_transfers() > 0, "misses are fetched on demand");
}

/// The laptop platform (weaker PCIe) must widen HybriMoE's advantage over
/// the GPU-centric baseline — CPU compute substitutes for scarce bandwidth.
#[test]
fn weaker_pcie_favors_hybrid_over_gpu_centric() {
    use hybrimoe_hw::Platform;
    let model = ModelConfig::deepseek();
    let trace = decode_trace(&model, 6);
    let ratio_on = |platform: Platform| {
        let h = Engine::new(
            EngineConfig::preset(Framework::HybriMoe, model.clone(), 0.25)
                .with_platform(platform.clone()),
        )
        .run(&trace);
        let a = Engine::new(
            EngineConfig::preset(Framework::AdapMoe, model.clone(), 0.25).with_platform(platform),
        )
        .run(&trace);
        a.total.as_nanos() as f64 / h.total.as_nanos() as f64
    };
    let desktop = ratio_on(Platform::a6000_xeon10());
    let laptop = ratio_on(Platform::rtx4060_laptop());
    assert!(
        laptop >= desktop,
        "advantage should widen on the laptop: {laptop:.2} vs {desktop:.2}"
    );
}
