//! Property-based invariants on the expert cache: capacity is never
//! exceeded, pinned experts are never evicted, statistics balance, and all
//! three policies maintain these invariants under random workloads.

use hybrimoe_cache::{CachePolicy, ExpertCache, Lfu, Lru, Mrs};
use hybrimoe_model::{ExpertId, ExpertKey, LayerId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum OpSpec {
    Lookup(u16, u16),
    Insert(u16, u16),
    InsertIfFree(u16, u16),
    Pin(u16, u16),
    Unpin(u16, u16),
}

fn arb_ops() -> impl Strategy<Value = Vec<OpSpec>> {
    proptest::collection::vec(
        (0u8..5, 0u16..4, 0u16..16).prop_map(|(kind, l, e)| match kind {
            0 => OpSpec::Lookup(l, e),
            1 => OpSpec::Insert(l, e),
            2 => OpSpec::InsertIfFree(l, e),
            3 => OpSpec::Pin(l, e),
            _ => OpSpec::Unpin(l, e),
        }),
        1..120,
    )
}

fn policies() -> Vec<Box<dyn CachePolicy>> {
    vec![
        Box::new(Lru::new()),
        Box::new(Lfu::new()),
        Box::new(Mrs::new(0.3)),
    ]
}

fn key(l: u16, e: u16) -> ExpertKey {
    ExpertKey::new(LayerId(l), ExpertId(e))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn capacity_never_exceeded(ops in arb_ops(), capacity in 0usize..12) {
        for policy in policies() {
            let mut cache = ExpertCache::new(capacity, policy);
            let mut pinned = std::collections::HashSet::new();
            for op in &ops {
                match op {
                    OpSpec::Lookup(l, e) => {
                        cache.lookup(key(*l, *e));
                    }
                    OpSpec::Insert(l, e) => {
                        cache.insert(key(*l, *e));
                    }
                    OpSpec::InsertIfFree(l, e) => {
                        cache.insert_if_free(key(*l, *e));
                    }
                    OpSpec::Pin(l, e) => {
                        cache.pin(key(*l, *e));
                        pinned.insert(key(*l, *e));
                    }
                    OpSpec::Unpin(l, e) => {
                        cache.unpin(key(*l, *e));
                        pinned.remove(&key(*l, *e));
                    }
                }
                prop_assert!(cache.len() <= capacity.max(cache.len().min(capacity)));
                prop_assert!(cache.len() <= capacity);
            }
        }
    }

    #[test]
    fn pinned_resident_experts_survive(ops in arb_ops()) {
        for policy in policies() {
            let mut cache = ExpertCache::new(4, policy);
            // Insert and pin one key up front.
            let protected = key(0, 0);
            cache.insert(protected);
            cache.pin(protected);
            for op in &ops {
                match op {
                    OpSpec::Lookup(l, e) => {
                        cache.lookup(key(*l, *e));
                    }
                    // Never unpin or re-pin in this scenario.
                    OpSpec::Insert(l, e) | OpSpec::InsertIfFree(l, e)
                    | OpSpec::Pin(l, e) | OpSpec::Unpin(l, e) => {
                        cache.insert(key(*l, *e));
                    }
                }
                prop_assert!(cache.contains(protected), "pinned key evicted");
            }
        }
    }

    #[test]
    fn stats_balance(ops in arb_ops()) {
        for policy in policies() {
            let mut cache = ExpertCache::new(6, policy);
            let mut lookups = 0u64;
            for op in &ops {
                match op {
                    OpSpec::Lookup(l, e) => {
                        cache.lookup(key(*l, *e));
                        lookups += 1;
                    }
                    OpSpec::Insert(l, e) => {
                        cache.insert(key(*l, *e));
                    }
                    OpSpec::InsertIfFree(l, e) => {
                        cache.insert_if_free(key(*l, *e));
                    }
                    _ => {}
                }
            }
            let stats = cache.stats();
            prop_assert_eq!(stats.lookups(), lookups);
            // Residency = insertions - evictions.
            prop_assert_eq!(
                cache.len() as u64,
                stats.insertions - stats.evictions
            );
            prop_assert!(stats.prefetch_insertions <= stats.insertions);
        }
    }

    #[test]
    fn lookup_after_insert_always_hits(l in 0u16..4, e in 0u16..16) {
        for policy in policies() {
            let mut cache = ExpertCache::new(2, policy);
            cache.insert(key(l, e));
            prop_assert!(cache.lookup(key(l, e)));
        }
    }
}
