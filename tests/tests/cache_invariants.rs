//! Property-based invariants on the expert cache: capacity is never
//! exceeded, pinned experts are never evicted, statistics balance, and all
//! three policies maintain these invariants under random workloads.

use hybrimoe_cache::{CachePolicy, ExpertCache, InsertOutcome, Lfu, Lru, Mrs};
use hybrimoe_model::{ExpertId, ExpertKey, LayerId, LayerRouting, RouterOutput};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum OpSpec {
    Lookup(u16, u16),
    Insert(u16, u16),
    InsertIfFree(u16, u16),
    Pin(u16, u16),
    Unpin(u16, u16),
}

fn arb_ops() -> impl Strategy<Value = Vec<OpSpec>> {
    proptest::collection::vec(
        (0u8..5, 0u16..4, 0u16..16).prop_map(|(kind, l, e)| match kind {
            0 => OpSpec::Lookup(l, e),
            1 => OpSpec::Insert(l, e),
            2 => OpSpec::InsertIfFree(l, e),
            3 => OpSpec::Pin(l, e),
            _ => OpSpec::Unpin(l, e),
        }),
        1..120,
    )
}

fn policies() -> Vec<Box<dyn CachePolicy>> {
    vec![
        Box::new(Lru::new()),
        Box::new(Lfu::new()),
        Box::new(Mrs::new(0.3)),
    ]
}

fn key(l: u16, e: u16) -> ExpertKey {
    ExpertKey::new(LayerId(l), ExpertId(e))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn capacity_never_exceeded(ops in arb_ops(), capacity in 0usize..12) {
        for policy in policies() {
            let mut cache = ExpertCache::new(capacity, policy);
            let mut pinned = std::collections::HashSet::new();
            for op in &ops {
                match op {
                    OpSpec::Lookup(l, e) => {
                        cache.lookup(key(*l, *e));
                    }
                    OpSpec::Insert(l, e) => {
                        cache.insert(key(*l, *e));
                    }
                    OpSpec::InsertIfFree(l, e) => {
                        cache.insert_if_free(key(*l, *e));
                    }
                    OpSpec::Pin(l, e) => {
                        cache.pin(key(*l, *e));
                        pinned.insert(key(*l, *e));
                    }
                    OpSpec::Unpin(l, e) => {
                        cache.unpin(key(*l, *e));
                        pinned.remove(&key(*l, *e));
                    }
                }
                prop_assert!(cache.len() <= capacity.max(cache.len().min(capacity)));
                prop_assert!(cache.len() <= capacity);
            }
        }
    }

    #[test]
    fn pinned_resident_experts_survive(ops in arb_ops()) {
        for policy in policies() {
            let mut cache = ExpertCache::new(4, policy);
            // Insert and pin one key up front.
            let protected = key(0, 0);
            cache.insert(protected);
            cache.pin(protected);
            for op in &ops {
                match op {
                    OpSpec::Lookup(l, e) => {
                        cache.lookup(key(*l, *e));
                    }
                    // Never unpin or re-pin in this scenario.
                    OpSpec::Insert(l, e) | OpSpec::InsertIfFree(l, e)
                    | OpSpec::Pin(l, e) | OpSpec::Unpin(l, e) => {
                        cache.insert(key(*l, *e));
                    }
                }
                prop_assert!(cache.contains(protected), "pinned key evicted");
            }
        }
    }

    #[test]
    fn stats_balance(ops in arb_ops()) {
        for policy in policies() {
            let mut cache = ExpertCache::new(6, policy);
            let mut lookups = 0u64;
            for op in &ops {
                match op {
                    OpSpec::Lookup(l, e) => {
                        cache.lookup(key(*l, *e));
                        lookups += 1;
                    }
                    OpSpec::Insert(l, e) => {
                        cache.insert(key(*l, *e));
                    }
                    OpSpec::InsertIfFree(l, e) => {
                        cache.insert_if_free(key(*l, *e));
                    }
                    _ => {}
                }
            }
            let stats = cache.stats();
            prop_assert_eq!(stats.lookups(), lookups);
            // Residency = insertions - evictions.
            prop_assert_eq!(
                cache.len() as u64,
                stats.insertions - stats.evictions
            );
            prop_assert!(stats.prefetch_insertions <= stats.insertions);
        }
    }

    #[test]
    fn lookup_after_insert_always_hits(l in 0u16..4, e in 0u16..16) {
        for policy in policies() {
            let mut cache = ExpertCache::new(2, policy);
            cache.insert(key(l, e));
            prop_assert!(cache.lookup(key(l, e)));
        }
    }
}

/// A batched-workload op: cache operations interleaved with whole-batch
/// routing observations, as the serving engine produces them.
#[derive(Debug, Clone)]
enum BatchedOp {
    Lookup(u16, u16),
    Insert(u16, u16),
    InsertProtected(u16, u16, u16),
    InsertIfFree(u16, u16),
    Pin(u16, u16),
    Unpin(u16, u16),
    /// `NoteRouting(layer, batch)`: a batch of tokens routes on `layer`
    /// (scores derived deterministically from the tuple).
    NoteRouting(u16, u8),
}

fn arb_batched_ops() -> impl Strategy<Value = Vec<BatchedOp>> {
    proptest::collection::vec(
        (0u8..7, 0u16..4, 0u16..16, 1u8..6).prop_map(|(kind, l, e, b)| match kind {
            0 => BatchedOp::Lookup(l, e),
            1 => BatchedOp::Insert(l, e),
            2 => BatchedOp::InsertProtected(l, e, e / 2),
            3 => BatchedOp::InsertIfFree(l, e),
            4 => BatchedOp::Pin(l, e),
            5 => BatchedOp::Unpin(l, e),
            _ => BatchedOp::NoteRouting(l, b),
        }),
        1..150,
    )
}

/// Deterministic batched routing for `NoteRouting`: `batch` tokens whose
/// logits depend only on (layer, batch), 16 experts, top-2.
fn routing_for(l: u16, batch: u8) -> LayerRouting {
    let tokens: Vec<RouterOutput> = (0..batch)
        .map(|t| {
            let logits: Vec<f32> = (0..16)
                .map(|e| ((e as u32 * 7 + t as u32 * 3 + l as u32 * 11) % 13) as f32 / 2.0)
                .collect();
            RouterOutput::route(&logits, 2)
        })
        .collect();
    LayerRouting::from_tokens(LayerId(l), 16, &tokens)
}

/// Replays `ops` on a fresh cache; returns (resident keys, stats debug).
fn replay(
    policy: Box<dyn CachePolicy>,
    capacity: usize,
    ops: &[BatchedOp],
) -> (Vec<ExpertKey>, String) {
    let mut cache = ExpertCache::new(capacity, policy);
    for op in ops {
        match op {
            BatchedOp::Lookup(l, e) => {
                cache.lookup(key(*l, *e));
            }
            BatchedOp::Insert(l, e) => {
                cache.insert(key(*l, *e));
            }
            BatchedOp::InsertProtected(l, e, p) => {
                cache.insert_protected(key(*l, *e), &[key(*l, *p)]);
            }
            BatchedOp::InsertIfFree(l, e) => {
                cache.insert_if_free(key(*l, *e));
            }
            BatchedOp::Pin(l, e) => cache.pin(key(*l, *e)),
            BatchedOp::Unpin(l, e) => cache.unpin(key(*l, *e)),
            BatchedOp::NoteRouting(l, b) => cache.note_routing(&routing_for(*l, *b), 2),
        }
    }
    (
        cache.resident_keys().collect(),
        format!("{:?}", cache.stats()),
    )
}

// The new suites run under `ProptestConfig::default()`, whose case count CI
// pins via the PROPTEST_CASES environment variable.
proptest! {
    /// Order consistency: the cache is a pure function of its op sequence.
    /// Replaying the same random batched workload twice yields the same
    /// resident set and statistics for every policy.
    #[test]
    fn replay_is_order_consistent(ops in arb_batched_ops(), capacity in 0usize..10) {
        for (a, b) in policies().into_iter().zip(policies()) {
            let ra = replay(a, capacity, &ops);
            let rb = replay(b, capacity, &ops);
            prop_assert_eq!(ra, rb);
        }
    }

    /// Every [`InsertOutcome`] tells the truth about the state transition
    /// it reports, and capacity/pinning invariants hold after each op.
    #[test]
    fn insert_outcomes_match_state_transitions(
        ops in arb_batched_ops(),
        capacity in 0usize..10,
    ) {
        for policy in policies() {
            let mut cache = ExpertCache::new(capacity, policy);
            let mut pinned = std::collections::HashSet::new();
            for op in &ops {
                if let BatchedOp::Pin(l, e) = op {
                    pinned.insert(key(*l, *e));
                }
                if let BatchedOp::Unpin(l, e) = op {
                    pinned.remove(&key(*l, *e));
                }
                let insert: Option<(ExpertKey, Option<ExpertKey>, bool)> = match op {
                    BatchedOp::Insert(l, e) => Some((key(*l, *e), None, true)),
                    BatchedOp::InsertProtected(l, e, p) => {
                        Some((key(*l, *e), Some(key(*l, *p)), true))
                    }
                    BatchedOp::InsertIfFree(l, e) => Some((key(*l, *e), None, false)),
                    BatchedOp::Lookup(l, e) => {
                        cache.lookup(key(*l, *e));
                        None
                    }
                    BatchedOp::NoteRouting(l, b) => {
                        cache.note_routing(&routing_for(*l, *b), 2);
                        None
                    }
                    BatchedOp::Pin(l, e) => {
                        cache.pin(key(*l, *e));
                        None
                    }
                    BatchedOp::Unpin(l, e) => {
                        cache.unpin(key(*l, *e));
                        None
                    }
                };
                if let Some((k, protect, may_evict)) = insert {
                    let was_resident = cache.contains(k);
                    let was_full = cache.is_full();
                    let len_before = cache.len();
                    let outcome = match (protect, may_evict) {
                        (Some(p), true) => cache.insert_protected(k, &[p]),
                        (None, true) => cache.insert(k),
                        (_, false) => cache.insert_if_free(k),
                    };
                    match outcome {
                        InsertOutcome::AlreadyResident => {
                            prop_assert!(was_resident);
                            prop_assert_eq!(cache.len(), len_before);
                        }
                        InsertOutcome::Inserted => {
                            prop_assert!(!was_resident && !was_full);
                            prop_assert_eq!(cache.len(), len_before + 1);
                            prop_assert!(cache.contains(k));
                        }
                        InsertOutcome::InsertedEvicting(victim) => {
                            prop_assert!(!was_resident && was_full && may_evict);
                            prop_assert!(!pinned.contains(&victim), "evicted pinned {victim:?}");
                            if let Some(p) = protect {
                                prop_assert!(victim != p, "evicted protected {victim:?}");
                            }
                            prop_assert!(!cache.contains(victim));
                            prop_assert!(cache.contains(k));
                            prop_assert_eq!(cache.len(), len_before);
                        }
                        InsertOutcome::Refused => {
                            prop_assert!(!was_resident);
                            prop_assert!(!cache.contains(k));
                            prop_assert_eq!(cache.len(), len_before);
                        }
                    }
                }
                prop_assert!(cache.len() <= capacity);
            }
        }
    }

    /// Pinned residents survive arbitrary batched workloads, including
    /// `insert_protected` eviction pressure.
    #[test]
    fn pinned_residents_survive_batched_workloads(ops in arb_batched_ops()) {
        for policy in policies() {
            let mut cache = ExpertCache::new(3, policy);
            let protected = key(0, 0);
            cache.insert(protected);
            cache.pin(protected);
            for op in &ops {
                match op {
                    BatchedOp::Lookup(l, e) => {
                        cache.lookup(key(*l, *e));
                    }
                    BatchedOp::NoteRouting(l, b) => {
                        cache.note_routing(&routing_for(*l, *b), 2);
                    }
                    // Map every mutation (except unpinning the sentinel)
                    // onto eviction-pressure inserts.
                    BatchedOp::Insert(l, e)
                    | BatchedOp::InsertProtected(l, e, _)
                    | BatchedOp::InsertIfFree(l, e)
                    | BatchedOp::Pin(l, e)
                    | BatchedOp::Unpin(l, e) => {
                        cache.insert_protected(key(*l, *e), &[key(*l, e / 2)]);
                    }
                }
                prop_assert!(cache.contains(protected), "pinned key evicted");
                prop_assert!(cache.is_pinned(protected));
            }
        }
    }
}
