//! Out-of-process worker suite: socket-level protocol robustness (a raw
//! client driving a real worker over loopback TCP with hand-crafted
//! frames), failover integration (a worker that crashes mid-request must
//! degrade to local execution without failing any in-flight request),
//! remote ≡ local bit-identity (property-tested across worker counts,
//! pipelining and routing), and the `docs/protocol.md` example frames
//! round-tripped through the real codec.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use hybrimoe::realexec::{RealExecOptions, RealLayerExecutor};
use hybrimoe::remote::{RemoteLayerExecutor, RemoteWorkerOptions};
use hybrimoe::{Engine, EngineConfig, Framework};
use hybrimoe_kernels::KernelBackendKind;
use hybrimoe_model::{LayerId, LayerRouting, ModelConfig, RouterOutput};
use hybrimoe_sched::{ExpertTask, HybridScheduler, ScheduleContext, Scheduler};
use hybrimoe_trace::TraceGenerator;
use hybrimoe_worker::protocol::{
    encode_frame, read_frame, ErrorCode, ErrorReply, ExecuteBatch, ExecuteBatchAck, FrameHeader,
    HeartbeatAck, Hello, HelloAck, LoadShard, LoadShardAck, Opcode, HEADER_LEN, MAX_PAYLOAD,
    VERSION,
};
use hybrimoe_worker::{Endpoint, WorkerHandle, WorkerServer, WorkerServerOptions};
use proptest::prelude::*;

/// Spawns an in-thread worker on a loopback port.
fn spawn_worker(options: WorkerServerOptions) -> WorkerHandle {
    WorkerServer::bind(&Endpoint::parse("127.0.0.1:0"), options)
        .expect("bind a loopback worker")
        .spawn()
}

/// Connects a raw TCP client to a worker.
fn connect(worker: &WorkerHandle) -> TcpStream {
    let addr = worker
        .endpoint()
        .to_string()
        .strip_prefix("tcp:")
        .map(str::to_owned)
        .unwrap_or_else(|| worker.endpoint().to_string());
    let stream = TcpStream::connect(addr).expect("connect to worker");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream
}

/// Writes one frame and returns the next reply `(header, payload)`.
fn roundtrip(
    stream: &mut TcpStream,
    opcode: Opcode,
    id: u32,
    payload: &[u8],
) -> (FrameHeader, Vec<u8>) {
    let mut wire = Vec::new();
    encode_frame(opcode, id, payload, &mut wire);
    stream.write_all(&wire).expect("write frame");
    let mut reply = Vec::new();
    let header = read_frame(stream, &mut reply).expect("read reply");
    (header, reply)
}

/// Performs the Hello handshake on a fresh connection.
fn handshake(stream: &mut TcpStream) {
    let mut payload = Vec::new();
    Hello::current().encode(&mut payload);
    let (header, reply) = roundtrip(stream, Opcode::Hello, 0, &payload);
    assert_eq!(header.opcode, Opcode::HelloAck);
    assert_eq!(
        HelloAck::decode(&reply).expect("hello ack").version,
        VERSION
    );
}

/// Asserts the stream is closed: the next read returns EOF or a reset
/// (the worker may close with bytes still unread in its receive buffer,
/// which surfaces as ECONNRESET instead of a clean FIN).
fn assert_closed(stream: &mut TcpStream) {
    let mut byte = [0u8; 1];
    match stream.read(&mut byte) {
        Ok(0) => {}
        Ok(_) => panic!("expected EOF, worker sent more bytes"),
        Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {}
        Err(e) => panic!("expected EOF or reset, got {e}"),
    }
}

#[test]
fn version_mismatch_is_answered_then_closed() {
    let worker = spawn_worker(WorkerServerOptions::default());
    let mut stream = connect(&worker);
    // A client from the future: its whole version range is above ours.
    let mut payload = Vec::new();
    Hello {
        min_version: VERSION + 1,
        max_version: VERSION + 5,
    }
    .encode(&mut payload);
    let (header, reply) = roundtrip(&mut stream, Opcode::Hello, 4, &payload);
    assert_eq!(header.opcode, Opcode::Error);
    assert_eq!(header.request_id, 4, "error echoes the request id");
    let err = ErrorReply::decode(&reply).expect("error reply");
    assert_eq!(err.code, ErrorCode::VersionMismatch);
    assert_closed(&mut stream);
    worker.shutdown();
}

#[test]
fn unsupported_frame_version_is_answered_then_closed() {
    let worker = spawn_worker(WorkerServerOptions::default());
    let mut stream = connect(&worker);
    let mut payload = Vec::new();
    Hello::current().encode(&mut payload);
    let mut wire = Vec::new();
    encode_frame(Opcode::Hello, 0, &payload, &mut wire);
    wire[4] = 99; // frame-level version byte outside MIN_VERSION..=VERSION
    stream.write_all(&wire).expect("write frame");
    let mut reply = Vec::new();
    let header = read_frame(&mut stream, &mut reply).expect("read reply");
    assert_eq!(header.opcode, Opcode::Error);
    let err = ErrorReply::decode(&reply).expect("error reply");
    assert_eq!(err.code, ErrorCode::VersionMismatch);
    assert_closed(&mut stream);
    worker.shutdown();
}

#[test]
fn bad_magic_closes_the_connection_without_a_reply() {
    let worker = spawn_worker(WorkerServerOptions::default());
    let mut stream = connect(&worker);
    handshake(&mut stream);
    // Garbage where a header should be: the stream has desynchronized and
    // there is no way to find the next frame boundary, so the worker must
    // hang up rather than answer.
    stream.write_all(&[0u8; HEADER_LEN]).expect("write garbage");
    assert_closed(&mut stream);
    worker.shutdown();
}

#[test]
fn oversized_payload_length_closes_the_connection() {
    let worker = spawn_worker(WorkerServerOptions::default());
    let mut stream = connect(&worker);
    handshake(&mut stream);
    // A hostile length field: headers above MAX_PAYLOAD must be rejected
    // before any allocation, and the connection dropped.
    let mut wire = Vec::new();
    encode_frame(Opcode::Heartbeat, 1, &[], &mut wire);
    wire[10..14].copy_from_slice(&(MAX_PAYLOAD + 1).to_be_bytes());
    stream.write_all(&wire).expect("write frame");
    assert_closed(&mut stream);
    worker.shutdown();
}

#[test]
fn truncated_frame_is_a_clean_teardown() {
    let worker = spawn_worker(WorkerServerOptions::default());
    let mut stream = connect(&worker);
    handshake(&mut stream);
    // Announce a 64-byte payload, deliver 10 bytes, hang up mid-frame.
    let mut wire = Vec::new();
    encode_frame(Opcode::ExecuteBatch, 1, &[0u8; 64], &mut wire);
    stream
        .write_all(&wire[..HEADER_LEN + 10])
        .expect("write partial frame");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("close write half");
    // The worker treats mid-frame EOF as a disconnect, not a protocol
    // error: no reply, no panic, just a close.
    assert_closed(&mut stream);
    worker.shutdown();
}

#[test]
fn requests_before_load_shard_get_not_loaded_and_the_connection_survives() {
    let worker = spawn_worker(WorkerServerOptions::default());
    let mut stream = connect(&worker);
    handshake(&mut stream);
    let mut payload = Vec::new();
    ExecuteBatch {
        layer: 0,
        expert: 0,
        tokens: 1,
        hidden: 2,
        data: vec![0.0, 0.0],
    }
    .encode(&mut payload);
    let (header, reply) = roundtrip(&mut stream, Opcode::ExecuteBatch, 5, &payload);
    assert_eq!(header.opcode, Opcode::Error);
    let err = ErrorReply::decode(&reply).expect("error reply");
    assert_eq!(err.code, ErrorCode::NotLoaded);
    // The connection is still usable after the error.
    let (header, reply) = roundtrip(&mut stream, Opcode::Heartbeat, 6, &[]);
    assert_eq!(header.opcode, Opcode::HeartbeatAck);
    assert!(HeartbeatAck::decode(&reply).is_ok());
    worker.shutdown();
}

#[test]
fn wrong_shard_and_reply_opcodes_get_error_replies() {
    let worker = spawn_worker(WorkerServerOptions::default());
    let mut stream = connect(&worker);
    handshake(&mut stream);
    let mut payload = Vec::new();
    LoadShard {
        seed: 7,
        worker: 0,
        num_workers: 2,
        layers: 1,
        routed_experts: 4,
        hidden: 4,
        inter: 8,
        weight_budget_bytes: 1 << 20,
        backend: 1,
    }
    .encode(&mut payload);
    let (header, reply) = roundtrip(&mut stream, Opcode::LoadShard, 1, &payload);
    assert_eq!(header.opcode, Opcode::LoadShardAck);
    // Worker 0 of 2 owns the even experts of 4.
    assert_eq!(LoadShardAck::decode(&reply).expect("ack").experts_owned, 2);

    // Expert 1 maps to worker 1 under the shard map: NotMyShard, and the
    // engine's client fails that batch over to local execution.
    payload.clear();
    ExecuteBatch {
        layer: 0,
        expert: 1,
        tokens: 1,
        hidden: 4,
        data: vec![0.0; 4],
    }
    .encode(&mut payload);
    let (header, reply) = roundtrip(&mut stream, Opcode::ExecuteBatch, 2, &payload);
    assert_eq!(header.opcode, Opcode::Error);
    assert_eq!(
        ErrorReply::decode(&reply).expect("error").code,
        ErrorCode::NotMyShard
    );

    // A reply opcode sent as a request is a violation but survivable.
    let (header, reply) = roundtrip(&mut stream, Opcode::ExecuteBatchAck, 3, &[]);
    assert_eq!(header.opcode, Opcode::Error);
    assert_eq!(
        ErrorReply::decode(&reply).expect("error").code,
        ErrorCode::BadPayload
    );
    let (header, _) = roundtrip(&mut stream, Opcode::Heartbeat, 4, &[]);
    assert_eq!(header.opcode, Opcode::HeartbeatAck);
    worker.shutdown();
}

/// A worker that crashes mid-request (drops the connection without
/// replying) must degrade to local execution without failing a single
/// in-flight engine step, and the degraded outputs must stay
/// bit-identical to a fully-local run.
#[test]
fn mid_request_crash_fails_over_without_failing_requests() {
    let model = ModelConfig::tiny_test();
    let steps = 6;
    let crashing = spawn_worker(WorkerServerOptions {
        threads: 1,
        fail_after_executes: Some(2),
        drain_stops_server: true,
        ..Default::default()
    });
    let healthy = spawn_worker(WorkerServerOptions {
        threads: 1,
        ..Default::default()
    });
    let endpoints = vec![
        crashing.endpoint().to_string(),
        healthy.endpoint().to_string(),
    ];

    let exec = RealExecOptions {
        max_threads: 1,
        kernel_backend: KernelBackendKind::Scalar,
        ..Default::default()
    };
    let base = EngineConfig::preset(Framework::KTransformers, model.clone(), 0.25)
        .with_real_exec(exec)
        .with_max_inflight(0);
    let remote_config = base.clone().with_remote_workers(RemoteWorkerOptions {
        endpoints,
        deadline_ms: 2_000,
        ..Default::default()
    });
    let local_config = base.with_remote_workers(RemoteWorkerOptions::default());

    let trace = TraceGenerator::new(model, 11)
        .with_token_states()
        .decode_trace(steps);

    let mut local = Engine::new(local_config);
    let mut reference = Vec::new();
    for step in &trace.steps {
        local.step(step);
        reference.push(local.take_real_outputs());
    }

    let mut engine = Engine::new(remote_config);
    for (i, step) in trace.steps.iter().enumerate() {
        engine.step(step);
        let outputs = engine.take_real_outputs();
        assert_eq!(outputs.len(), reference[i].len());
        for (a, b) in outputs.iter().zip(reference[i].iter()) {
            assert_eq!(a.output, b.output, "step {i} diverged from local");
        }
    }
    let health = engine.worker_health().expect("remote backend has health");
    assert!(health.requests > 0, "no batch ever ran remotely");
    assert!(health.failovers > 0, "the crash must register as failover");
    healthy.shutdown();
    crashing.shutdown();
}

/// Deterministic token inputs and routes for one tiny-model layer.
fn layer_tokens(
    model: &ModelConfig,
    tokens: usize,
    seed: u64,
) -> (Vec<Vec<f32>>, Vec<RouterOutput>) {
    let hidden = model.routed_shape.hidden() as usize;
    let experts = model.routed_experts as usize;
    let k = model.activated_experts as usize;
    (0..tokens)
        .map(|t| {
            let x: Vec<f32> = (0..hidden)
                .map(|i| (((t as u64 * 131 + i as u64 * 7 + seed) % 100) as f32 / 50.0 - 1.0) * 0.1)
                .collect();
            let logits: Vec<f32> = (0..experts)
                .map(|e| (((t + e * 13 + seed as usize) % 17) as f32) / 4.0)
                .collect();
            (x, RouterOutput::route(&logits, k))
        })
        .unzip()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Remote execution is bit-identical to the local expert-major path
    /// across worker counts, pipelining, batch sizes and random
    /// placements. Scalar kernels are pinned on both sides (LoadShard
    /// carries the backend), and the engine accumulates experts in
    /// ascending id order regardless of which worker computed them, so
    /// float non-associativity never enters.
    #[test]
    fn remote_execution_is_bit_identical_to_local(
        seed in 0u64..500,
        tokens in 1usize..8,
        workers in 1usize..4,
        pipeline in any::<bool>(),
        cached_mask in any::<u8>(),
    ) {
        let model = ModelConfig::tiny_test();
        let (inputs, routes) = layer_tokens(&model, tokens, seed);
        let routing = LayerRouting::from_tokens(LayerId(0), model.routed_experts, &routes);
        let tasks: Vec<ExpertTask> = routing
            .activated()
            .into_iter()
            .map(|(e, load)| ExpertTask {
                expert: e,
                load,
                cached: cached_mask & (1 << (e.0 % 8)) != 0,
            })
            .collect();
        let cost = hybrimoe_hw::UnitCostModel::paper_fig5();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let plan = HybridScheduler::new().schedule(&ctx);

        let options = RealExecOptions {
            max_threads: 1,
            kernel_backend: KernelBackendKind::Scalar,
            ..Default::default()
        };
        let mut reference = RealLayerExecutor::with_options(model.clone(), 7, options);
        let expected = reference
            .execute_layer(LayerId(0), &plan, &inputs, &routes)
            .expect("local execution");

        let handles: Vec<WorkerHandle> = (0..workers)
            .map(|_| spawn_worker(WorkerServerOptions { threads: 1, ..Default::default() }))
            .collect();
        let endpoints = handles.iter().map(|h| h.endpoint().to_string()).collect();
        let mut remote = RemoteLayerExecutor::new(
            model,
            7,
            options,
            &RemoteWorkerOptions { endpoints, pipeline, ..Default::default() },
        );
        let got = remote
            .execute_layer(LayerId(0), &plan, &inputs, &routes)
            .expect("remote execution");
        prop_assert_eq!(&got.output, &expected.output);
        let health = remote.health();
        prop_assert_eq!(health.failovers, 0, "healthy workers must not fail over");
        prop_assert!(health.requests > 0);
        for handle in handles {
            handle.shutdown();
        }
    }
}

/// Re-encodes every example frame of `docs/protocol.md` through the real
/// codec and asserts the documented hex matches — the byte-level doc can
/// never drift from the implementation.
#[test]
fn protocol_doc_examples_round_trip() {
    let doc = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../docs/protocol.md"))
        .expect("docs/protocol.md exists");
    let hex = |wire: &[u8]| -> String { wire.iter().map(|b| format!("{b:02x}")).collect() };
    let assert_documented = |name: &str, wire: &[u8]| {
        assert!(
            doc.contains(&hex(wire)),
            "docs/protocol.md is out of sync: the {name} example frame should be {}",
            hex(wire)
        );
    };

    let mut wire = Vec::new();
    let mut payload = Vec::new();
    Hello::current().encode(&mut payload);
    encode_frame(Opcode::Hello, 1, &payload, &mut wire);
    assert_documented("Hello", &wire);

    wire.clear();
    payload.clear();
    HelloAck { version: VERSION }.encode(&mut payload);
    encode_frame(Opcode::HelloAck, 1, &payload, &mut wire);
    assert_documented("HelloAck", &wire);

    wire.clear();
    payload.clear();
    LoadShard {
        seed: 42,
        worker: 0,
        num_workers: 2,
        layers: 2,
        routed_experts: 4,
        hidden: 8,
        inter: 16,
        weight_budget_bytes: 1 << 20,
        backend: 1,
    }
    .encode(&mut payload);
    encode_frame(Opcode::LoadShard, 2, &payload, &mut wire);
    assert_documented("LoadShard", &wire);

    wire.clear();
    payload.clear();
    ExecuteBatch {
        layer: 0,
        expert: 3,
        tokens: 1,
        hidden: 2,
        data: vec![1.0, -2.0],
    }
    .encode(&mut payload);
    encode_frame(Opcode::ExecuteBatch, 3, &payload, &mut wire);
    assert_documented("ExecuteBatch", &wire);

    wire.clear();
    payload.clear();
    ExecuteBatchAck {
        tokens: 1,
        hidden: 2,
        data: vec![0.5, 0.25],
    }
    .encode(&mut payload);
    encode_frame(Opcode::ExecuteBatchAck, 3, &payload, &mut wire);
    assert_documented("ExecuteBatchAck", &wire);

    wire.clear();
    encode_frame(Opcode::Heartbeat, 7, &[], &mut wire);
    assert_documented("Heartbeat", &wire);

    wire.clear();
    payload.clear();
    ErrorReply::new(ErrorCode::VersionMismatch, "no shared version").encode(&mut payload);
    encode_frame(Opcode::Error, 9, &payload, &mut wire);
    assert_documented("Error", &wire);
}
