//! Reproducibility regression: the whole pipeline — trace generation,
//! scheduling, prefetching, caching, simulated execution — must be a pure
//! function of the seed. Bench comparisons across PRs rely on this: if two
//! runs of the same configuration diverge, every figure/table binary
//! becomes noise.

use hybrimoe::realexec::RealExecOptions;
use hybrimoe::serve::{ArrivalProcess, ServeConfig, ServeReport, ServeSim};
use hybrimoe::{BackendKind, Engine, EngineConfig, Framework, StageMetrics};
use hybrimoe_hw::SimDuration;
use hybrimoe_model::ModelConfig;
use hybrimoe_trace::TraceGenerator;

fn run_once(framework: Framework, seed: u64, decode_steps: usize) -> StageMetrics {
    let model = ModelConfig::deepseek();
    let config = EngineConfig::preset(framework, model.clone(), 0.25);
    let mut engine = Engine::new(config);
    let trace = TraceGenerator::new(model, seed).decode_trace(decode_steps);
    engine.run(&trace)
}

#[test]
fn same_seed_gives_identical_stage_metrics() {
    for framework in [
        Framework::LlamaCpp,
        Framework::AdapMoe,
        Framework::KTransformers,
        Framework::HybriMoe,
    ] {
        let a = run_once(framework, 42, 12);
        let b = run_once(framework, 42, 12);
        assert_eq!(a, b, "{framework:?}: same seed, different metrics");
    }
}

#[test]
fn same_seed_gives_identical_traces() {
    let model = ModelConfig::deepseek();
    let t1 = TraceGenerator::new(model.clone(), 7).decode_trace(16);
    let t2 = TraceGenerator::new(model, 7).decode_trace(16);
    assert_eq!(t1, t2, "trace generation is not seed-deterministic");
}

#[test]
fn different_seeds_give_different_traces() {
    let model = ModelConfig::deepseek();
    let t1 = TraceGenerator::new(model.clone(), 1).decode_trace(16);
    let t2 = TraceGenerator::new(model, 2).decode_trace(16);
    assert_ne!(t1, t2, "seed does not influence the trace");
}

#[test]
fn prefill_is_seed_deterministic_end_to_end() {
    let model = ModelConfig::deepseek();
    let config = EngineConfig::preset(Framework::HybriMoe, model.clone(), 0.25);
    let trace = TraceGenerator::new(model, 1234).prefill_trace(64);
    let a = Engine::new(config.clone()).run(&trace);
    let b = Engine::new(config).run(&trace);
    assert_eq!(a, b, "prefill replay diverged between engines");
}

fn serve_once(framework: Framework, seed: u64) -> ServeReport {
    ServeSim::new(ServeConfig {
        engine: EngineConfig::preset(framework, ModelConfig::deepseek(), 0.25),
        arrivals: ArrivalProcess::poisson(SimDuration::from_millis(120)),
        requests: 6,
        prompt_tokens: 16,
        decode_tokens: 4,
        max_batch: 4,
        seed,
    })
    .run()
}

/// The continuous-batching path is a pure function of the seed: arrivals,
/// per-request traces, batch formation and engine state all replay, so
/// TTFT/TPOT/throughput are bit-identical across runs.
#[test]
fn serving_metrics_are_bit_identical_across_runs() {
    for framework in [Framework::KTransformers, Framework::HybriMoe] {
        let a = serve_once(framework, 42);
        let b = serve_once(framework, 42);
        assert_eq!(a, b, "{framework:?}: same seed, different serving report");
        // The derived metrics (including every float) pin down too.
        assert_eq!(a.summary(), b.summary());
        for (x, y) in a.requests.iter().zip(b.requests.iter()) {
            assert_eq!(x.ttft(), y.ttft());
            assert_eq!(x.tpot(), y.tpot());
            assert_eq!(x.latency(), y.latency());
        }
    }
}

#[test]
fn serving_seed_changes_the_outcome() {
    let a = serve_once(Framework::HybriMoe, 1);
    let b = serve_once(Framework::HybriMoe, 2);
    assert_ne!(a, b, "serving seed has no effect");
}

/// Absolute pins captured on the pre-multi-GPU engine (single GPU, flat
/// cache, scalar timelines). The `num_gpus = 1` path of the generalized
/// stack must reproduce them bit for bit: any drift means the refactor
/// changed single-GPU scheduling, caching or accounting behaviour.
#[test]
fn single_gpu_pins_match_the_pre_refactor_engine() {
    // (framework, total latency in ns, cache hits, cache misses) for
    // run_once(seed 42, 12 decode steps) on the DeepSeek model at cache
    // ratio 0.25.
    let pins: [(Framework, u64, u64, u64); 4] = [
        (Framework::LlamaCpp, 470_022_552, 432, 1440),
        (Framework::AdapMoe, 321_147_595, 773, 1099),
        (Framework::KTransformers, 337_071_861, 453, 1419),
        (Framework::HybriMoe, 225_848_268, 680, 1192),
    ];
    for (framework, total_ns, hits, misses) in pins {
        let m = run_once(framework, 42, 12);
        assert_eq!(m.total.as_nanos(), total_ns, "{framework:?} total drifted");
        assert_eq!(m.cache.hits, hits, "{framework:?} hits drifted");
        assert_eq!(m.cache.misses, misses, "{framework:?} misses drifted");
    }
}

/// The serving path's pre-refactor pins (seed 42, DeepSeek, ratio 0.25,
/// Poisson arrivals): wall clock and decode throughput.
#[test]
fn single_gpu_serving_pins_match_the_pre_refactor_engine() {
    let k = serve_once(Framework::KTransformers, 42).summary();
    assert_eq!(k.makespan_ms, 1523.34477);
    assert_eq!(k.output_tokens_per_sec, 15.754805131867817);
    let h = serve_once(Framework::HybriMoe, 42).summary();
    assert_eq!(h.makespan_ms, 1041.30531);
    assert_eq!(h.output_tokens_per_sec, 23.047995404921156);
}

/// Absolute pin of the real backend's numerical layer outputs, captured on
/// the **pre-refactor token-major executor** (the PR-4 tree): the
/// expert-major batched executor must reproduce every engine-level real
/// output bit for bit (hashed over the f32 bit patterns of all layer
/// outputs of a 2-step tiny-model decode, seed 41). The kernel backend is
/// pinned to the scalar reference: the pin predates SIMD dispatch, and
/// only the scalar backend is bit-identical to the pre-refactor loops.
#[test]
fn real_backend_outputs_match_the_pre_refactor_pin() {
    let model = ModelConfig::tiny_test();
    let trace = TraceGenerator::new(model.clone(), 41)
        .with_token_states()
        .decode_trace(2);
    let config = EngineConfig::preset(Framework::HybriMoe, model, 0.25)
        .with_backend(BackendKind::RealCpu)
        .with_real_exec(RealExecOptions {
            max_threads: 1,
            kernel_backend: hybrimoe_kernels::KernelBackendKind::Scalar,
            ..Default::default()
        })
        .with_seed(41);
    let mut engine = Engine::new(config);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for step in &trace.steps {
        engine.step(step);
        for out in engine.take_real_outputs() {
            for w in out.output.iter().map(|v| v.to_bits()) {
                for b in w.to_le_bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
            }
        }
    }
    assert_eq!(h, 0x4eb5ef82fc189ade, "real outputs drifted");
}

/// An explicit `num_gpus = 1` is the identity: same metrics as the default
/// configuration, step for step.
#[test]
fn explicit_single_gpu_is_bit_identical_to_default() {
    let model = ModelConfig::deepseek();
    let trace = TraceGenerator::new(model.clone(), 42).decode_trace(12);
    for framework in [Framework::KTransformers, Framework::HybriMoe] {
        let default_cfg = EngineConfig::preset(framework, model.clone(), 0.25);
        let explicit = default_cfg.clone().with_num_gpus(1);
        let a = Engine::new(default_cfg).run(&trace);
        let b = Engine::new(explicit).run(&trace);
        assert_eq!(a, b, "{framework:?}: explicit num_gpus=1 diverged");
    }
}
