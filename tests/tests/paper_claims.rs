//! Shape tests for the paper's headline claims: these assert the
//! *qualitative* results of every figure — who wins, in which stage, and
//! in which direction the trends run — on small, fast configurations.

use hybrimoe::Framework;
use hybrimoe_cache::{CachePolicy, ExpertCache, Lru, Mrs};
use hybrimoe_hw::UnitCostModel;
use hybrimoe_model::{ExpertId, ExpertKey, LayerId, ModelConfig};
use hybrimoe_sched::baselines::FixedMappingScheduler;
use hybrimoe_sched::{ExpertTask, HybridScheduler, ScheduleContext, Scheduler};
use hybrimoe_tests::{decode, decode_trace, prefill};

/// Fig. 7/8 headline: HybriMoE beats kTransformers in both stages on every
/// paper model at the paper's tightest cache ratio.
#[test]
fn hybrimoe_beats_ktransformers_everywhere() {
    for model in ModelConfig::paper_models() {
        let h = decode(Framework::HybriMoe, &model, 0.25, 8);
        let k = decode(Framework::KTransformers, &model, 0.25, 8);
        assert!(
            h.total <= k.total,
            "decode {}: hybri {} vs ktrans {}",
            model.name,
            h.total,
            k.total
        );
        let hp = prefill(Framework::HybriMoe, &model, 0.25, 128);
        let kp = prefill(Framework::KTransformers, &model, 0.25, 128);
        assert!(
            hp.total <= kp.total,
            "prefill {}: hybri {} vs ktrans {}",
            model.name,
            hp.total,
            kp.total
        );
    }
}

/// Fig. 7: llama.cpp is the worst prefill performer (static whole-layer
/// mapping serializes the heavy batch through streamed weights).
#[test]
fn llamacpp_is_worst_at_prefill() {
    let model = ModelConfig::qwen2();
    let l = prefill(Framework::LlamaCpp, &model, 0.25, 256);
    for other in [
        Framework::AdapMoe,
        Framework::KTransformers,
        Framework::HybriMoe,
    ] {
        let o = prefill(other, &model, 0.25, 256);
        assert!(
            l.total >= o.total,
            "llama.cpp {} should not beat {other} {}",
            l.total,
            o.total
        );
    }
}

/// Fig. 8 discussion: llama.cpp is *relatively* strong at decode — closer
/// to kTransformers than it is at prefill.
#[test]
fn llamacpp_decode_gap_is_smaller_than_prefill_gap() {
    let model = ModelConfig::deepseek();
    let ld = decode(Framework::LlamaCpp, &model, 0.5, 8).total.as_nanos() as f64;
    let kd = decode(Framework::KTransformers, &model, 0.5, 8)
        .total
        .as_nanos() as f64;
    let lp = prefill(Framework::LlamaCpp, &model, 0.5, 256)
        .total
        .as_nanos() as f64;
    let kp = prefill(Framework::KTransformers, &model, 0.5, 256)
        .total
        .as_nanos() as f64;
    assert!(
        ld / kd < lp / kp,
        "decode ratio {:.2} should be smaller than prefill ratio {:.2}",
        ld / kd,
        lp / kp
    );
}

/// Fig. 9: MRS achieves a higher hit rate than LRU at tight capacities, and
/// the gap narrows as the cache grows.
#[test]
fn mrs_beats_lru_with_narrowing_gap() {
    let model = ModelConfig::deepseek();
    let trace = decode_trace(&model, 160);
    let rate = |policy: Box<dyn CachePolicy>, ratio: f64| {
        let mut cache = ExpertCache::new(model.cache_capacity_for_ratio(ratio), policy);
        let warm = trace.steps.len() / 4;
        for (i, step) in trace.steps.iter().enumerate() {
            if i == warm {
                cache.reset_stats();
            }
            for rec in &step.layers {
                cache.note_routing(&rec.routing, model.activated_experts);
                for (expert, _) in rec.routing.activated() {
                    let key = ExpertKey::new(rec.routing.layer(), expert);
                    if !cache.lookup(key) {
                        cache.insert(key);
                    }
                }
            }
        }
        cache.stats().hit_rate()
    };
    let gap_low = rate(Box::new(Mrs::new(0.3)), 0.3) - rate(Box::new(Lru::new()), 0.3);
    let gap_high = rate(Box::new(Mrs::new(0.3)), 0.7) - rate(Box::new(Lru::new()), 0.7);
    assert!(gap_low > 0.0, "MRS must beat LRU at 30%: gap {gap_low:.3}");
    assert!(
        gap_high < gap_low,
        "gap must narrow with capacity: low {gap_low:.3} high {gap_high:.3}"
    );
}

/// Fig. 5 golden test: the worked example schedules to a 4-unit makespan
/// with C transferred, beating the fixed mapping's 5 units.
#[test]
fn fig5_worked_example_schedules_as_published() {
    let tasks = vec![
        ExpertTask::uncached(ExpertId(0), 1),
        ExpertTask::uncached(ExpertId(1), 1),
        ExpertTask::uncached(ExpertId(2), 3),
        ExpertTask::cached(ExpertId(3), 4),
        ExpertTask::cached(ExpertId(4), 1),
    ];
    let cost = UnitCostModel::paper_fig5();
    let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
    let hybrid = HybridScheduler::new().schedule(&ctx);
    let fixed = FixedMappingScheduler::new().schedule(&ctx);
    assert_eq!(hybrid.predicted_makespan.as_micros_f64(), 4.0);
    assert_eq!(fixed.predicted_makespan.as_micros_f64(), 5.0);
    assert_eq!(
        hybrid.transferred_experts().collect::<Vec<_>>(),
        vec![ExpertId(2)]
    );
}

/// Table III directionality: each technique alone speeds up decode, and the
/// full system is at least as fast as each single technique.
#[test]
fn ablation_components_compose() {
    use hybrimoe::{CachePolicyKind, EngineConfig, PrefetcherKind, SchedulerKind};
    use hybrimoe_tests::decode_trace as trace_for;

    let model = ModelConfig::qwen2();
    let trace = trace_for(&model, 10);
    let run = |config: EngineConfig| hybrimoe::Engine::new(config).run(&trace).total;

    let base = EngineConfig::preset(Framework::KTransformers, model.clone(), 0.25);
    let baseline = run(base.clone());
    let sched = run(base.clone().with_scheduler(SchedulerKind::Hybrid));
    let cached = run(base.clone().with_cache_policy(CachePolicyKind::Mrs));
    let prefetched = run(base.with_prefetcher(PrefetcherKind::ImpactDriven));
    let all = run(EngineConfig::preset(Framework::HybriMoe, model, 0.25));

    assert!(sched <= baseline, "scheduling must not slow decode");
    assert!(cached <= baseline, "caching must not slow decode");
    assert!(prefetched <= baseline, "prefetching must not slow decode");
    assert!(
        all <= sched.min(cached).min(prefetched) + baseline / 10,
        "the full system should be in the ballpark of the best single technique or better"
    );
}
