//! Multi-GPU expert sharding, end to end: the engine and the serving layer
//! must actually get faster with more GPUs at the paper's tight cache
//! point, residency must follow the affinity map, and the metrics layout
//! must scale with the device count.

use hybrimoe::serve::{ArrivalProcess, ServeConfig, ServeReport, ServeSim};
use hybrimoe::{Engine, EngineConfig, Framework};
use hybrimoe_model::{shard_of, ModelConfig};
use hybrimoe_trace::TraceGenerator;

fn decode_total(num_gpus: usize) -> hybrimoe_hw::SimDuration {
    let model = ModelConfig::deepseek();
    let config =
        EngineConfig::preset(Framework::HybriMoe, model.clone(), 0.25).with_num_gpus(num_gpus);
    let trace = TraceGenerator::new(model, 42).decode_trace(12);
    Engine::new(config).run(&trace).total
}

/// The acceptance property of the sharded stack: two GPUs decode strictly
/// faster than one on the same workload at cache ratio 0.25, and four are
/// at least as fast as two.
#[test]
fn two_gpus_decode_strictly_faster_than_one() {
    let one = decode_total(1);
    let two = decode_total(2);
    let four = decode_total(4);
    assert!(two < one, "2 GPUs not faster: {two} >= {one}");
    assert!(four <= two, "4 GPUs slower than 2: {four} > {two}");
}

fn serve_once(num_gpus: usize) -> ServeReport {
    ServeSim::new(ServeConfig {
        engine: EngineConfig::preset(Framework::HybriMoe, ModelConfig::deepseek(), 0.25)
            .with_num_gpus(num_gpus),
        arrivals: ArrivalProcess::poisson(hybrimoe_hw::SimDuration::from_millis(100)),
        requests: 8,
        prompt_tokens: 32,
        decode_tokens: 8,
        max_batch: 8,
        seed: 42,
    })
    .run()
}

/// The serving layer inherits the speedup: higher decode throughput with
/// two shards under the same arrival schedule.
#[test]
fn serving_throughput_scales_with_gpus() {
    let one = serve_once(1).summary();
    let two = serve_once(2).summary();
    assert_eq!(one.num_gpus, 1);
    assert_eq!(two.num_gpus, 2);
    assert!(
        two.output_tokens_per_sec > one.output_tokens_per_sec,
        "2 GPUs: {} tok/s <= 1 GPU: {} tok/s",
        two.output_tokens_per_sec,
        one.output_tokens_per_sec
    );
}

/// Every resident expert sits on its affinity shard, after warmup and
/// after a dynamic workload churned the cache.
#[test]
fn cache_residency_follows_the_affinity_map() {
    let model = ModelConfig::deepseek();
    let config = EngineConfig::preset(Framework::HybriMoe, model.clone(), 0.25).with_num_gpus(4);
    let mut engine = Engine::new(config);
    let check = |engine: &Engine, when: &str| {
        for s in 0..engine.cache().num_shards() {
            for key in engine.cache().shard(s).resident_keys() {
                assert_eq!(
                    shard_of(key.expert, engine.cache().num_shards()),
                    s,
                    "{when}: {key} resident off its shard"
                );
            }
        }
    };
    check(&engine, "after warmup");
    let trace = TraceGenerator::new(model, 7).decode_trace(8);
    engine.run(&trace);
    check(&engine, "after decode");
}

/// The busy-vector layout tracks the device count (`1 + 2 * num_gpus`) and
/// the per-step latency bounds each device's busy time.
#[test]
fn step_metrics_scale_with_device_count() {
    let model = ModelConfig::tiny_test();
    for num_gpus in [1usize, 2, 4] {
        let config =
            EngineConfig::preset(Framework::HybriMoe, model.clone(), 0.5).with_num_gpus(num_gpus);
        let trace = TraceGenerator::new(model.clone(), 3).decode_trace(4);
        let metrics = Engine::new(config).run(&trace);
        for step in &metrics.steps {
            assert_eq!(step.device_busy.len(), 1 + 2 * num_gpus);
            assert_eq!(step.num_gpus(), num_gpus);
            for (d, busy) in hybrimoe_hw::devices(num_gpus).zip(step.device_busy.iter()) {
                assert!(
                    *busy <= step.latency,
                    "N={num_gpus}: {d} busy {busy} exceeds step latency {}",
                    step.latency
                );
            }
        }
    }
}

/// Warmup placement is shard-aware: every shard fills to its own capacity
/// (a shard-blind frequency fill would overfill some shards — dropping
/// their most frequent experts — while leaving others with free slots).
#[test]
fn warmup_fills_every_shard_to_capacity() {
    for framework in [Framework::HybriMoe, Framework::KTransformers] {
        for num_gpus in [1usize, 2, 4] {
            let config = EngineConfig::preset(framework, ModelConfig::deepseek(), 0.25)
                .with_num_gpus(num_gpus);
            let engine = Engine::new(config);
            for s in 0..num_gpus {
                let shard = engine.cache().shard(s);
                assert_eq!(
                    shard.len(),
                    shard.capacity(),
                    "{framework:?} N={num_gpus}: shard {s} not full after warmup"
                );
            }
        }
    }
}

/// Total cache capacity is preserved across shard counts (shards split the
/// budget; they do not multiply it).
#[test]
fn sharding_preserves_total_cache_capacity() {
    let model = ModelConfig::deepseek();
    let base = EngineConfig::preset(Framework::HybriMoe, model.clone(), 0.25);
    let expect = base.cache_capacity();
    for num_gpus in [1usize, 2, 4] {
        let engine = Engine::new(base.clone().with_num_gpus(num_gpus));
        assert_eq!(engine.cache().capacity(), expect, "N={num_gpus}");
        assert_eq!(engine.cache().num_shards(), num_gpus);
    }
}
