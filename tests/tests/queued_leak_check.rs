//! Scratch review test: does a contained engine panic leak the `queued`
//! gauge when the panicking step admitted requests?

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use hybrimoe::fault::{FaultPlan, FaultRates};
use hybrimoe::serve::server::{read_one_chunk, read_response_head_full, Server, ServerConfig};
use hybrimoe::{EngineConfig, Framework};
use hybrimoe_model::ModelConfig;

#[test]
fn queued_gauge_after_panic() {
    let mut config = ServerConfig::new(
        EngineConfig::preset(Framework::HybriMoe, ModelConfig::tiny_test(), 0.5).with_fault_plan(
            FaultPlan {
                seed: 7,
                rates: FaultRates {
                    panic_ppm: 1_000_000,
                    ..FaultRates::default()
                },
            },
        ),
    );
    config.max_batch = 2;
    config.queue_depth = 8;
    config.min_step = Some(Duration::from_millis(1));
    let server = Server::start(config).expect("server starts");
    let addr = server.addr();

    let body = "{\"prompt_tokens\":4,\"decode_tokens\":4}";
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "POST /v1/generate HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut reader = BufReader::new(stream);
    let head = read_response_head_full(&mut reader).expect("head");
    assert_eq!(head.status, 200);
    while let Ok(Some(chunk)) = read_one_chunk(&mut reader) {
        eprintln!("chunk: {chunk}");
    }

    let metrics = server.shutdown();
    eprintln!(
        "queued={} admitted={} failed={} restarts={}",
        metrics.queued, metrics.admitted, metrics.failed, metrics.engine_restarts
    );
    assert_eq!(metrics.queued, 0, "queued gauge leaked");
}
