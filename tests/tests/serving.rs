//! Integration tests for the continuous-batching serving layer: request
//! lifecycle invariants, batch-bound compliance, load monotonicity, and the
//! headline serving claim (HybriMoE sustains at least kTransformers'
//! throughput under every arrival rate).

use hybrimoe::serve::{ArrivalProcess, ServeConfig, ServeReport, ServeSim};
use hybrimoe::{EngineConfig, Framework};
use hybrimoe_hw::{SimDuration, SimTime};
use hybrimoe_model::ModelConfig;

fn tiny_config(framework: Framework, ratio: f64, mean_us: u64) -> ServeConfig {
    ServeConfig {
        engine: EngineConfig::preset(framework, ModelConfig::tiny_test(), ratio),
        arrivals: ArrivalProcess::poisson(SimDuration::from_micros(mean_us)),
        requests: 12,
        prompt_tokens: 16,
        decode_tokens: 6,
        max_batch: 4,
        seed: 0xC0FFEE,
    }
}

fn run(config: ServeConfig) -> ServeReport {
    ServeSim::new(config).run()
}

#[test]
fn request_lifecycle_is_well_ordered() {
    let report = run(tiny_config(Framework::HybriMoe, 0.5, 400));
    assert_eq!(report.requests.len(), 12);
    for m in &report.requests {
        assert!(m.first_token >= m.arrival, "first token before arrival");
        assert!(m.completion >= m.first_token, "completion before TTFT");
        assert!(m.ttft() > SimDuration::ZERO);
        assert!(m.tpot() > SimDuration::ZERO);
    }
    // Steps advance monotonically on the simulated clock.
    for w in report.steps.windows(2) {
        assert!(w[1].start >= w[0].start + w[0].latency);
    }
}

#[test]
fn batch_bound_holds_and_saturates_under_pressure() {
    // Arrivals far faster than service: the batch must hit (and never
    // exceed) the bound.
    let report = run(tiny_config(Framework::HybriMoe, 0.5, 1));
    assert!(report.steps.iter().all(|s| s.batch <= 4));
    assert!(report.steps.iter().any(|s| s.batch == 4));
    let s = report.summary();
    assert!(s.mean_batch > 1.0, "no batching under pressure: {s:?}");
}

#[test]
fn light_load_decodes_mostly_alone() {
    // Arrivals far slower than service: requests rarely overlap.
    let report = run(tiny_config(Framework::HybriMoe, 0.5, 2_000_000));
    let s = report.summary();
    assert!(
        s.mean_batch < 1.5,
        "unexpected batching at light load: {s:?}"
    );
    // Idle gaps mean the makespan stretches to roughly the arrival span.
    let last = report.requests.iter().map(|m| m.completion).max().unwrap();
    assert!(last.elapsed_since(SimTime::ZERO) >= SimDuration::from_millis(20));
}

#[test]
fn throughput_grows_with_arrival_rate_until_saturation() {
    let slow = run(tiny_config(Framework::HybriMoe, 0.5, 4_000)).summary();
    let fast = run(tiny_config(Framework::HybriMoe, 0.5, 100)).summary();
    assert!(
        fast.output_tokens_per_sec > slow.output_tokens_per_sec,
        "more offered load should raise throughput: fast {} vs slow {}",
        fast.output_tokens_per_sec,
        slow.output_tokens_per_sec
    );
    // Queueing delay shows up in TTFT.
    assert!(fast.ttft_p99_ms >= slow.ttft_p50_ms);
}

/// The serving headline: HybriMoE sustains at least the fixed mapping's
/// decode throughput at the paper's tightest cache ratio, across arrival
/// rates from light to saturating.
#[test]
fn hybrimoe_serving_throughput_not_below_ktransformers() {
    for mean_us in [2_000u64, 500, 50] {
        let h = run(tiny_config(Framework::HybriMoe, 0.25, mean_us)).summary();
        let k = run(tiny_config(Framework::KTransformers, 0.25, mean_us)).summary();
        assert!(
            h.output_tokens_per_sec >= k.output_tokens_per_sec,
            "mean gap {mean_us}us: hybri {} tok/s < ktrans {} tok/s",
            h.output_tokens_per_sec,
            k.output_tokens_per_sec
        );
    }
}

#[test]
fn deterministic_arrivals_serve_in_order() {
    let mut config = tiny_config(Framework::HybriMoe, 0.5, 1);
    config.arrivals = ArrivalProcess::deterministic(SimDuration::from_millis(1));
    let report = run(config);
    // FIFO admission + identical lengths → first tokens in arrival order.
    for w in report.requests.windows(2) {
        assert!(w[0].first_token <= w[1].first_token);
        assert!(w[0].arrival <= w[1].arrival);
    }
}

#[test]
fn summary_accounting_is_exact() {
    let report = run(tiny_config(Framework::HybriMoe, 0.5, 300));
    let s = report.summary();
    assert_eq!(s.requests, 12);
    assert_eq!(s.prompt_tokens, 12 * 16);
    assert_eq!(s.output_tokens, 12 * 6);
    assert_eq!(s.engine_steps, report.steps.len() as u64);
    // Every output token was produced by exactly one decode slot of one
    // step; prefill tokens account for the rest.
    let step_tokens: u64 = report.steps.iter().map(|st| st.tokens as u64).sum();
    assert_eq!(step_tokens, s.prompt_tokens + s.output_tokens);
    let makespan_end = report.requests.iter().map(|m| m.completion).max().unwrap();
    assert_eq!(makespan_end.elapsed_since(SimTime::ZERO), report.makespan);
}

#[test]
fn serving_report_round_trips_through_json() {
    let report = run(tiny_config(Framework::HybriMoe, 0.5, 500));
    let json = serde_json::to_string(&report).unwrap();
    let back: ServeReport = serde_json::from_str(&json).unwrap();
    assert_eq!(report, back);
}
