//! Property-based slot-conservation invariants on the continuous
//! batcher: under any interleaving of arrivals, deadline expiries,
//! mid-flight cancels (client hangups) and injected engine-step panics,
//! every enqueued request reaches exactly one terminal outcome and no
//! batch slot leaks.

use hybrimoe::fault::{FaultPlan, FaultRates, FaultStream};
use hybrimoe::serve::{ContinuousBatcher, RequestSpec};
use hybrimoe::{EngineConfig, Framework};
use hybrimoe_hw::{SimDuration, SimTime};
use hybrimoe_model::ModelConfig;
use proptest::prelude::*;

/// Drives one randomized scenario to drain and returns
/// `(completed, timed_out, cancelled, failed, leaked)`.
fn drive(
    seed: u64,
    requests: u64,
    max_batch: usize,
    panic_ppm: u32,
    ops_seed: u64,
) -> (u64, u64, u64, u64, u64) {
    let engine = EngineConfig::preset(Framework::HybriMoe, ModelConfig::tiny_test(), 0.5)
        .with_seed(seed)
        .with_fault_plan(FaultPlan {
            seed,
            rates: FaultRates {
                panic_ppm,
                ..FaultRates::default()
            },
        });
    let make = || ContinuousBatcher::new(engine.clone(), max_batch, seed);
    let mut batcher = make();
    let mut rng = FaultStream::new(ops_seed);

    let (mut completed, mut timed_out, mut cancelled, mut failed) = (0u64, 0u64, 0u64, 0u64);
    let mut live: Vec<u32> = Vec::new();
    let mut issued = 0u64;
    let mut next_id = 0u32;
    let mut now = SimTime::ZERO;
    // A generous step bound: every scenario drains far sooner, and a
    // leak (a request neither terminating nor draining) trips the
    // assertion below instead of hanging the test.
    for _ in 0..10_000 {
        if issued >= requests && batcher.is_idle() {
            break;
        }
        while issued < requests && rng.below(100) < 50 {
            let deadline = match rng.below(4) {
                // Tight enough that queueing behind a full batch (or
                // plain step latency) expires some of these...
                0 => Some(now + SimDuration::from_micros(rng.next_u64() % 5_000)),
                // ...an already-passed deadline expires immediately...
                1 => Some(now),
                // ...and the rest run without one.
                _ => None,
            };
            batcher.enqueue(RequestSpec {
                id: next_id,
                arrival: now,
                prompt_tokens: 1 + (rng.next_u64() % 16) as u32,
                decode_tokens: 1 + (rng.next_u64() % 8) as u32,
                priority: (rng.next_u64() % 2) as u8,
                deadline,
            });
            live.push(next_id);
            next_id += 1;
            issued += 1;
        }
        if !live.is_empty() && rng.roll_ppm(150_000) {
            let victim = live[rng.below(live.len() as u64) as usize];
            if batcher.cancel(victim) {
                cancelled += 1;
                live.retain(|id| *id != victim);
            }
        }
        if batcher.is_idle() {
            now += SimDuration::from_millis(1);
            continue;
        }
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            batcher.step(now, |latency| now + latency)
        })) {
            Ok(outcome) => {
                completed += outcome.completed.len() as u64;
                for m in &outcome.completed {
                    live.retain(|id| *id != m.id);
                }
                for id in outcome
                    .expired_waiting
                    .iter()
                    .chain(&outcome.expired_running)
                {
                    timed_out += 1;
                    live.retain(|l| l != id);
                }
                now = outcome.end;
            }
            Err(_) => {
                // Contained like the serving engine loop: in-flight
                // requests fail, a fresh batcher takes over.
                failed += live.len() as u64;
                live.clear();
                batcher = make();
                now += SimDuration::from_millis(1);
            }
        }
    }
    let leaked = (batcher.waiting_len() + batcher.running_len()) as u64;
    (completed, timed_out, cancelled, failed, leaked)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Slot conservation: terminal outcomes partition the admitted set
    /// and the drained batcher holds nothing, for any interleaving of
    /// completion, deadline expiry, cancellation and panic containment.
    #[test]
    fn every_request_terminates_and_no_slot_leaks(
        seed in 0u64..50,
        requests in 1u64..40,
        max_batch in 1usize..5,
        inject_panics in any::<bool>(),
        ops_seed in any::<u64>(),
    ) {
        let panic_ppm = if inject_panics { 20_000 } else { 0 };
        let (completed, timed_out, cancelled, failed, leaked) =
            drive(seed, requests, max_batch, panic_ppm, ops_seed);
        prop_assert_eq!(leaked, 0, "drained batcher still holds slots");
        prop_assert_eq!(
            completed + timed_out + cancelled + failed,
            requests,
            "terminal outcomes must partition the admitted set \
             (completed {} + timed_out {} + cancelled {} + failed {})",
            completed, timed_out, cancelled, failed
        );
    }

    /// The same scenario replayed is bit-identical: fault injection and
    /// the storm shape are pure functions of their seeds.
    #[test]
    fn scenarios_replay_identically(
        seed in 0u64..50,
        requests in 1u64..24,
        ops_seed in any::<u64>(),
    ) {
        let a = drive(seed, requests, 3, 20_000, ops_seed);
        let b = drive(seed, requests, 3, 20_000, ops_seed);
        prop_assert_eq!(a, b);
    }
}
