//! Cross-backend kernel dispatch suite: every runtime-selectable kernel
//! backend (scalar reference, portable auto-vectorized, AVX2 intrinsics)
//! must compute the same Q4 dequant+dot — bit-identically between the two
//! SIMD formulations, and within the documented reassociation bound of an
//! `f64` oracle for all of them. Runs with the default proptest config so
//! the weekly deep-fuzz job's `PROPTEST_CASES=1024` scales it up.

use hybrimoe::realexec::{RealExecOptions, RealLayerExecutor};
use hybrimoe_hw::UnitCostModel;
use hybrimoe_kernels::backend;
use hybrimoe_kernels::{KernelBackendKind, QuantizedMatrix, Q4_BLOCK};
use hybrimoe_model::{LayerId, LayerRouting, ModelConfig, RouterOutput};
use hybrimoe_sched::{ExpertTask, HybridScheduler, ScheduleContext, Scheduler};
use proptest::prelude::*;

const Q4_BLOCK_BYTES: usize = hybrimoe_kernels::quant::Q4_BLOCK_BYTES;

/// Deterministic pseudo-random f32s in [-0.5, 0.5) (LCG; no rand dep).
fn pseudo(n: usize, seed: u32) -> Vec<f32> {
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            ((state >> 8) as f32 / (1u32 << 24) as f32) - 0.5
        })
        .collect()
}

/// One weight row's packed Q4 blocks.
fn row_bytes(q: &QuantizedMatrix, r: usize) -> Vec<u8> {
    let bpr = q.cols() / Q4_BLOCK * Q4_BLOCK_BYTES;
    q.data()[r * bpr..(r + 1) * bpr].to_vec()
}

/// Deterministic token inputs and routes for one tiny-model layer.
fn layer_tokens(
    model: &ModelConfig,
    tokens: usize,
    seed: u64,
) -> (Vec<Vec<f32>>, Vec<RouterOutput>) {
    let hidden = model.routed_shape.hidden() as usize;
    let experts = model.routed_experts as usize;
    let k = model.activated_experts as usize;
    (0..tokens)
        .map(|t| {
            let x: Vec<f32> = (0..hidden)
                .map(|i| (((t as u64 * 131 + i as u64 * 7 + seed) % 100) as f32 / 50.0 - 1.0) * 0.1)
                .collect();
            let logits: Vec<f32> = (0..experts)
                .map(|e| (((t + e * 13 + seed as usize) % 17) as f32) / 4.0)
                .collect();
            (x, RouterOutput::route(&logits, k))
        })
        .unzip()
}

/// Runs one scheduled layer under a pinned kernel backend.
fn run_layer(kind: KernelBackendKind, tokens: usize, threads: usize, seed: u64) -> Vec<f32> {
    let model = ModelConfig::tiny_test();
    let (inputs, routes) = layer_tokens(&model, tokens, seed);
    let routing = LayerRouting::from_tokens(LayerId(0), model.routed_experts, &routes);
    let tasks: Vec<ExpertTask> = routing
        .activated()
        .into_iter()
        .map(|(e, load)| ExpertTask {
            expert: e,
            load,
            cached: e.0 % 2 == 0,
        })
        .collect();
    let cost = UnitCostModel::paper_fig5();
    let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
    let plan = HybridScheduler::new().schedule(&ctx);
    let mut exec = RealLayerExecutor::with_options(
        model,
        7,
        RealExecOptions {
            max_threads: threads,
            kernel_backend: kind,
            ..Default::default()
        },
    );
    exec.execute_layer(LayerId(0), &plan, &inputs, &routes)
        .expect("valid plan executes")
        .output
}

proptest! {
    // Default config on purpose: PROPTEST_CASES scales the case count in
    // the weekly deep-fuzz job (1024) without touching this file.

    /// Kernel-level contract: each backend's `qdot_row` stays within the
    /// documented reassociation bound of `f64` ground truth over random
    /// matrices, token counts, and column counts, and the portable and
    /// AVX2 backends (same tile/lane accumulation order, no FMA) are bit
    /// for bit identical.
    #[test]
    fn backends_agree_on_qdot_row(
        seed in 0u32..10_000,
        rows in 1usize..6,
        blocks in 1usize..6,
        tokens in 1usize..6,
    ) {
        let cols = blocks * Q4_BLOCK;
        let q = QuantizedMatrix::quantize(&pseudo(rows * cols, seed), rows, cols).unwrap();
        let dense = q.dequantize();
        let x = pseudo(tokens * cols, seed ^ 0x9e37);

        let mut per_backend: Vec<(KernelBackendKind, Vec<f32>)> = Vec::new();
        for b in backend::available() {
            let mut out = vec![f32::NAN; rows * tokens];
            for r in 0..rows {
                b.qdot_row(&row_bytes(&q, r), &x, cols, &mut out[r * tokens..(r + 1) * tokens]);
            }
            per_backend.push((b.kind(), out));
        }

        for (kind, out) in &per_backend {
            for r in 0..rows {
                let w = &dense[r * cols..(r + 1) * cols];
                for t in 0..tokens {
                    let xt = &x[t * cols..(t + 1) * cols];
                    let truth: f64 = w.iter().zip(xt).map(|(a, b)| *a as f64 * *b as f64).sum();
                    let mag: f64 = w
                        .iter()
                        .zip(xt)
                        .map(|(a, b)| (*a as f64 * *b as f64).abs())
                        .sum();
                    let bound = (cols as f64) * f64::from(f32::EPSILON) * mag + 1e-12;
                    let got = out[r * tokens + t] as f64;
                    prop_assert!(
                        (got - truth).abs() <= bound,
                        "{kind:?} r={r} t={t}: {got} vs {truth} (bound {bound})"
                    );
                }
            }
        }

        let portable = per_backend
            .iter()
            .find(|(k, _)| *k == KernelBackendKind::Portable)
            .map(|(_, o)| o);
        let avx2 = per_backend
            .iter()
            .find(|(k, _)| *k == KernelBackendKind::Avx2)
            .map(|(_, o)| o);
        if let (Some(p), Some(a)) = (portable, avx2) {
            let pb: Vec<u32> = p.iter().map(|v| v.to_bits()).collect();
            let ab: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(pb, ab, "portable and AVX2 diverged bitwise");
        }
    }

    /// Executor-level contract: a layer executed under any available
    /// backend lands within a tight tolerance of the scalar-pinned run
    /// across batch sizes and thread counts, the scalar run is
    /// bit-identical to itself under dispatch (same loops, dispatched
    /// once at startup), and portable/AVX2 agree bitwise end to end.
    #[test]
    fn layer_outputs_agree_across_backends(
        seed in 0u64..1_000,
        tokens in 1usize..9,
        threads in 1usize..4,
    ) {
        let reference = run_layer(KernelBackendKind::Scalar, tokens, threads, seed);
        prop_assert!(reference.iter().all(|v| v.is_finite()));

        let mut per_kind: Vec<(KernelBackendKind, Vec<f32>)> = Vec::new();
        for b in backend::available() {
            per_kind.push((b.kind(), run_layer(b.kind(), tokens, threads, seed)));
        }
        for (kind, out) in &per_kind {
            prop_assert_eq!(out.len(), reference.len());
            if *kind == KernelBackendKind::Scalar {
                let got: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
                let want: Vec<u32> = reference.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(got, want, "scalar dispatch drifted from the pinned scalar run");
                continue;
            }
            for (i, (a, b)) in out.iter().zip(reference.iter()).enumerate() {
                prop_assert!(
                    (a - b).abs() <= 1e-4 * b.abs().max(1.0),
                    "{kind:?} diverged from scalar at {i}: {a} vs {b} \
                     (tokens={tokens}, threads={threads})"
                );
            }
        }

        let portable = per_kind
            .iter()
            .find(|(k, _)| *k == KernelBackendKind::Portable)
            .map(|(_, o)| o);
        let avx2 = per_kind
            .iter()
            .find(|(k, _)| *k == KernelBackendKind::Avx2)
            .map(|(_, o)| o);
        if let (Some(p), Some(a)) = (portable, avx2) {
            let pb: Vec<u32> = p.iter().map(|v| v.to_bits()).collect();
            let ab: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(pb, ab, "portable and AVX2 layer outputs diverged bitwise");
        }
    }
}

/// The `HYBRIMOE_KERNEL_BACKEND` knob and the `RealExecOptions` field pick
/// concrete backends, and an executor always reports one (never `Auto`).
#[test]
fn executors_report_concrete_backends() {
    for kind in [
        KernelBackendKind::Auto,
        KernelBackendKind::Scalar,
        KernelBackendKind::Portable,
        KernelBackendKind::Avx2,
    ] {
        let exec = RealLayerExecutor::with_options(
            ModelConfig::tiny_test(),
            7,
            RealExecOptions {
                kernel_backend: kind,
                ..Default::default()
            },
        );
        let resolved = exec.backend_kind();
        assert_ne!(resolved, KernelBackendKind::Auto);
        match kind {
            KernelBackendKind::Auto => {}
            KernelBackendKind::Avx2 if !backend::avx2_available() => {
                assert_eq!(resolved, KernelBackendKind::Scalar, "clean scalar fallback");
            }
            pinned => assert_eq!(resolved, pinned),
        }
    }
}
