//! Failure-path integration tests for the serving front-end: end-to-end
//! request deadlines (admission 504s, waiting- and running-expiry with
//! the typed `timed_out` terminal chunk), `Retry-After` on retryable
//! 503s, engine-panic containment with the `failed` terminal chunk, and
//! the degraded `/healthz` body.
//!
//! Like `server.rs`, every test drives a real loopback server with a
//! hand-rolled HTTP/1.1 client; pacing floors make queueing structure
//! deterministic without exact-timing assertions.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use hybrimoe::fault::{FaultPlan, FaultRates};
use hybrimoe::serve::server::{
    read_one_chunk, read_response_head_full, ResponseHead, Server, ServerConfig, ServerHandle,
    ServerMetrics,
};
use hybrimoe::{EngineConfig, Framework};
use hybrimoe_model::ModelConfig;

/// Builds a tiny-model server config; tests tweak the knobs they care
/// about (fault plans, default deadlines) before starting it.
fn tiny_config(max_batch: usize, queue_depth: usize, min_step: Duration) -> ServerConfig {
    let mut config = ServerConfig::new(EngineConfig::preset(
        Framework::HybriMoe,
        ModelConfig::tiny_test(),
        0.5,
    ));
    config.max_batch = max_batch;
    config.queue_depth = queue_depth;
    config.min_step = Some(min_step);
    config
}

/// One `POST /v1/generate` with optional extra headers (e.g.
/// `X-Deadline-Ms`): returns the parsed response head and, for streamed
/// responses, every chunk in order.
fn generate_with_headers(
    addr: SocketAddr,
    body: &str,
    headers: &[(&str, &str)],
) -> (ResponseHead, Vec<String>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut request = String::from("POST /v1/generate HTTP/1.1\r\nHost: test\r\n");
    for (name, value) in headers {
        request.push_str(&format!("{name}: {value}\r\n"));
    }
    request.push_str(&format!(
        "Content-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    ));
    stream.write_all(request.as_bytes()).expect("write request");
    let mut reader = BufReader::new(stream);
    let head = read_response_head_full(&mut reader).expect("response head");
    let mut chunks = Vec::new();
    if head.chunked {
        while let Some(chunk) = read_one_chunk(&mut reader).expect("read chunk") {
            chunks.push(chunk);
        }
    }
    (head, chunks)
}

/// Like [`generate_with_headers`], but blocks only until the first chunk
/// arrives, then hands back the reader: lets a test know a request
/// entered the batch while it keeps streaming.
fn generate_streaming(addr: SocketAddr, body: &str) -> (BufReader<TcpStream>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    write!(
        stream,
        "POST /v1/generate HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut reader = BufReader::new(stream);
    let head = read_response_head_full(&mut reader).expect("response head");
    assert_eq!(head.status, 200, "request should be admitted");
    assert!(head.chunked, "admitted responses stream");
    let first = read_one_chunk(&mut reader)
        .expect("read first chunk")
        .expect("stream has a first chunk");
    (reader, first)
}

/// Drains a streaming reader to its terminal chunk.
fn finish_stream(mut reader: BufReader<TcpStream>) -> Vec<String> {
    let mut chunks = Vec::new();
    while let Some(chunk) = read_one_chunk(&mut reader).expect("read chunk") {
        chunks.push(chunk);
    }
    chunks
}

/// Fetches a GET endpoint's full body (reading to connection close).
fn get_body(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .expect("write request");
    let mut reader = BufReader::new(stream);
    let head = read_response_head_full(&mut reader).expect("response head");
    let mut body = String::new();
    let mut line = String::new();
    while reader.read_line(&mut line).expect("read body") > 0 {
        body.push_str(&line);
        line.clear();
    }
    (head.status, body)
}

/// Polls the server's metrics until `pred` holds.
fn wait_for_metrics(server: &ServerHandle, what: &str, pred: impl Fn(&ServerMetrics) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !pred(&server.metrics()) {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        thread::sleep(Duration::from_millis(10));
    }
}

/// An `X-Deadline-Ms: 0` budget is already spent: the server answers 504
/// at admission without ever enqueueing, and counts the rejection.
#[test]
fn zero_deadline_is_rejected_with_504() {
    let server = Server::start(tiny_config(2, 8, Duration::from_millis(1))).expect("server starts");
    let (head, _) = generate_with_headers(
        server.addr(),
        "{\"prompt_tokens\":4,\"decode_tokens\":2}",
        &[("X-Deadline-Ms", "0")],
    );
    assert_eq!(head.status, 504, "expired budget rejected at admission");
    let metrics = server.shutdown();
    assert_eq!(metrics.rejected_deadline, 1);
    assert_eq!(metrics.admitted, 0, "nothing should have been enqueued");
}

/// A garbage `X-Deadline-Ms` value is a client error, not a crash.
#[test]
fn unparseable_deadline_header_is_400() {
    let server = Server::start(tiny_config(2, 8, Duration::from_millis(1))).expect("server starts");
    let (head, _) = generate_with_headers(
        server.addr(),
        "{\"prompt_tokens\":4,\"decode_tokens\":2}",
        &[("X-Deadline-Ms", "soon")],
    );
    assert_eq!(head.status, 400);
    server.shutdown();
}

/// A request whose deadline expires while it queues behind a full batch
/// gets the typed `timed_out` terminal chunk — admitted (200, streamed),
/// never silently dropped — and the `timed_out` counter moves.
#[test]
fn waiting_request_past_deadline_streams_timed_out_chunk() {
    // One slot, slow steps: the occupant pins the batch long past the
    // waiter's 100ms budget.
    let server =
        Server::start(tiny_config(1, 8, Duration::from_millis(20))).expect("server starts");
    let addr = server.addr();
    let occupant = generate_streaming(addr, "{\"prompt_tokens\":4,\"decode_tokens\":100}");
    wait_for_metrics(&server, "occupant running", |m| m.running >= 1);

    let (head, chunks) = generate_with_headers(
        addr,
        "{\"prompt_tokens\":4,\"decode_tokens\":1}",
        &[("X-Deadline-Ms", "100")],
    );
    assert_eq!(head.status, 200, "deadline expiry is a streamed outcome");
    let last = chunks.last().expect("stream has a terminal chunk");
    assert!(
        last.contains("\"timed_out\":true"),
        "terminal chunk should be typed timed_out, got {last:?}"
    );

    finish_stream(occupant.0);
    let metrics = server.shutdown();
    assert_eq!(metrics.timed_out, 1);
    assert_eq!(metrics.completed, 1, "the occupant still completes");
    assert_eq!(metrics.admitted, 2);
}

/// With no header, `default_deadline` from config applies: a decode too
/// long for the budget expires mid-run (the running-expiry path), after
/// streaming at least one token.
#[test]
fn default_deadline_expires_running_request() {
    let mut config = tiny_config(2, 8, Duration::from_millis(20));
    config.default_deadline = Some(Duration::from_millis(150));
    let server = Server::start(config).expect("server starts");

    let (head, chunks) = generate_with_headers(
        server.addr(),
        "{\"prompt_tokens\":4,\"decode_tokens\":100}",
        &[],
    );
    assert_eq!(head.status, 200);
    let last = chunks.last().expect("stream has a terminal chunk");
    assert!(
        last.contains("\"timed_out\":true"),
        "terminal chunk should be typed timed_out, got {last:?}"
    );
    assert!(
        chunks.len() > 1,
        "the request should stream some tokens before expiring"
    );

    let metrics = server.shutdown();
    assert_eq!(metrics.timed_out, 1);
    assert_eq!(metrics.completed, 0);
}

/// A generous deadline never fires: the request completes normally even
/// though a `default_deadline` is configured.
#[test]
fn generous_deadline_does_not_fire() {
    let mut config = tiny_config(2, 8, Duration::from_millis(1));
    config.default_deadline = Some(Duration::from_secs(60));
    let server = Server::start(config).expect("server starts");
    let (head, chunks) = generate_with_headers(
        server.addr(),
        "{\"prompt_tokens\":4,\"decode_tokens\":3}",
        &[("X-Deadline-Ms", "60000")],
    );
    assert_eq!(head.status, 200);
    let last = chunks.last().expect("terminal chunk");
    assert!(last.contains("\"done\":true"), "got {last:?}");
    let metrics = server.shutdown();
    assert_eq!(metrics.completed, 1);
    assert_eq!(metrics.timed_out, 0);
}

/// Queue-full 503s are retryable and say so: the response carries a
/// `Retry-After` header a client can honor.
#[test]
fn queue_full_rejection_carries_retry_after() {
    // One slot, queue depth 1: an occupant plus one waiter fill the
    // house; the third request bounces.
    let server =
        Server::start(tiny_config(1, 1, Duration::from_millis(20))).expect("server starts");
    let addr = server.addr();
    let occupant = generate_streaming(addr, "{\"prompt_tokens\":4,\"decode_tokens\":60}");
    let waiter = thread::spawn(move || {
        generate_with_headers(addr, "{\"prompt_tokens\":4,\"decode_tokens\":1}", &[])
    });
    wait_for_metrics(&server, "waiter queued", |m| m.queued >= 1);

    let (head, _) = generate_with_headers(addr, "{\"prompt_tokens\":4,\"decode_tokens\":1}", &[]);
    assert_eq!(head.status, 503, "full queue rejects");
    assert_eq!(
        head.retry_after,
        Some(1),
        "retryable 503 should carry Retry-After"
    );

    finish_stream(occupant.0);
    let (waiter_head, _) = waiter.join().expect("waiter thread");
    assert_eq!(waiter_head.status, 200);
    server.shutdown();
}

/// A panicking engine step is contained: the in-flight request gets the
/// typed `failed` terminal chunk, the engine loop re-arms with a fresh
/// batcher, `/healthz` reports `degraded` (while staying HTTP 200 — the
/// process is alive and still serving), and the next request completes.
#[test]
fn engine_panic_is_contained_and_reported_degraded() {
    let mut config = tiny_config(2, 8, Duration::from_millis(1));
    // Every step panics until the hook disarms nothing — rate 100%: the
    // first admitted request is guaranteed to hit the failure path.
    config.engine = config.engine.with_fault_plan(FaultPlan {
        seed: 7,
        rates: FaultRates {
            panic_ppm: 1_000_000,
            ..FaultRates::default()
        },
    });
    let server = Server::start(config).expect("server starts");
    let addr = server.addr();

    let (status, body) = get_body(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(
        body.contains("\"status\":\"ok\""),
        "fresh server is healthy, got {body:?}"
    );

    let (head, chunks) =
        generate_with_headers(addr, "{\"prompt_tokens\":4,\"decode_tokens\":4}", &[]);
    assert_eq!(head.status, 200, "the request is admitted before the panic");
    let last = chunks.last().expect("stream has a terminal chunk");
    assert!(
        last.contains("\"failed\":true"),
        "terminal chunk should be typed failed, got {last:?}"
    );

    wait_for_metrics(&server, "restart counted", |m| m.engine_restarts >= 1);
    let (status, body) = get_body(addr, "/healthz");
    assert_eq!(status, 200, "degraded is a body statement, not an error");
    assert!(
        body.contains("\"status\":\"degraded\""),
        "healthz should report degradation, got {body:?}"
    );
    assert!(
        body.contains("engine restarted"),
        "healthz should say why, got {body:?}"
    );

    let metrics = server.shutdown();
    assert!(metrics.engine_restarts >= 1);
    assert!(metrics.failed >= 1);
    assert_eq!(
        metrics.admitted,
        metrics.completed + metrics.cancelled + metrics.timed_out + metrics.failed,
        "every admitted request reached exactly one terminal outcome"
    );
}

/// After contained panics the server keeps serving: with the fault plan
/// off, requests behind a restart-scarred server complete normally.
#[test]
fn healthy_server_reports_ok_status() {
    let server = Server::start(tiny_config(2, 8, Duration::from_millis(1))).expect("server starts");
    let (head, chunks) = generate_with_headers(
        server.addr(),
        "{\"prompt_tokens\":4,\"decode_tokens\":2}",
        &[],
    );
    assert_eq!(head.status, 200);
    assert!(chunks
        .last()
        .expect("terminal chunk")
        .contains("\"done\":true"));
    let (status, body) = get_body(server.addr(), "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "got {body:?}");
    server.shutdown();
}
