//! Property-based invariants on the schedulers, checked across random task
//! sets: plans are complete and valid, the scheduler's internal makespan
//! prediction agrees with the ground-truth plan executor, and the hybrid
//! schedule never loses to the fixed mapping.

use hybrimoe_hw::{Device, PlanExecutor, SimDuration, UnitCostModel};
use hybrimoe_model::{ExpertId, LayerId};
use hybrimoe_sched::baselines::{
    FixedMappingScheduler, GpuOnlyScheduler, StaticSplitScheduler, PREFILL_BATCH_THRESHOLD,
};
use hybrimoe_sched::{ExpertTask, HybridScheduler, ScheduleContext, Scheduler};
use proptest::prelude::*;

fn arb_tasks() -> impl Strategy<Value = Vec<ExpertTask>> {
    proptest::collection::vec((1u32..12, any::<bool>()), 1..10).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (load, cached))| ExpertTask {
                expert: ExpertId(i as u16),
                load,
                cached,
            })
            .collect()
    })
}

/// Every scheduler the engine can be configured with.
fn all_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(HybridScheduler::new()),
        Box::new(HybridScheduler::without_cpu_steal()),
        Box::new(FixedMappingScheduler::new()),
        Box::new(GpuOnlyScheduler::new()),
        Box::new(StaticSplitScheduler::new()),
    ]
}

fn arb_cost() -> impl Strategy<Value = UnitCostModel> {
    (1u64..6, 1u64..6, 1u64..12).prop_map(|(cpu, gpu, xfer)| UnitCostModel {
        cpu_per_load: SimDuration::from_micros(cpu),
        gpu_per_task: SimDuration::from_micros(gpu),
        transfer_per_expert: SimDuration::from_micros(xfer),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn hybrid_plans_are_valid_and_prediction_matches_executor(
        tasks in arb_tasks(),
        cost in arb_cost(),
    ) {
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let plan = HybridScheduler::new().schedule(&ctx);
        prop_assert_eq!(plan.validate(&tasks), Ok(()));
        let executed = PlanExecutor::new().execute(plan.to_ops(&ctx)).unwrap();
        // The executor includes PCIe tails; the paper's objective (Eq. 2)
        // excludes them, but every transfer is consumed by a GPU compute so
        // the two agree exactly.
        prop_assert_eq!(executed.makespan, plan.predicted_makespan);
    }

    #[test]
    fn baseline_plans_are_valid(
        tasks in arb_tasks(),
        cost in arb_cost(),
    ) {
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        for scheduler in [
            Box::new(FixedMappingScheduler::new()) as Box<dyn Scheduler>,
            Box::new(GpuOnlyScheduler::new()),
        ] {
            let plan = scheduler.schedule(&ctx);
            prop_assert_eq!(plan.validate(&tasks), Ok(()));
            let executed = PlanExecutor::new().execute(plan.to_ops(&ctx)).unwrap();
            prop_assert_eq!(executed.makespan, plan.predicted_makespan);
        }
    }

    #[test]
    fn hybrid_never_loses_to_fixed_mapping(
        tasks in arb_tasks(),
        cost in arb_cost(),
    ) {
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let hybrid = HybridScheduler::new().schedule(&ctx);
        let fixed = FixedMappingScheduler::new().schedule(&ctx);
        prop_assert!(
            hybrid.predicted_makespan <= fixed.predicted_makespan,
            "hybrid {} > fixed {} on {:?}",
            hybrid.predicted_makespan,
            fixed.predicted_makespan,
            tasks
        );
    }

    #[test]
    fn hybrid_without_steal_is_still_valid(
        tasks in arb_tasks(),
        cost in arb_cost(),
    ) {
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let plan = HybridScheduler::without_cpu_steal().schedule(&ctx);
        prop_assert_eq!(plan.validate(&tasks), Ok(()));
    }

    #[test]
    fn every_cached_task_avoids_pcie(
        tasks in arb_tasks(),
        cost in arb_cost(),
    ) {
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let plan = HybridScheduler::new().schedule(&ctx);
        for x in &plan.pcie_order {
            prop_assert!(!x.cached, "cached expert {} transferred", x.expert);
        }
    }
}

// The new suites run under `ProptestConfig::default()`, whose case count CI
// pins via the PROPTEST_CASES environment variable.
proptest! {
    /// Conservation across **all** schedulers, llama.cpp included: every
    /// activated expert is computed exactly once, on exactly one device.
    #[test]
    fn every_activated_expert_computed_exactly_once(
        tasks in arb_tasks(),
        cost in arb_cost(),
    ) {
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        for scheduler in all_schedulers() {
            let plan = scheduler.schedule(&ctx);
            prop_assert_eq!(plan.validate(&tasks), Ok(()), "{} invalid", scheduler.name());
            for t in &tasks {
                let computes = plan.cpu_experts().filter(|e| *e == t.expert).count()
                    + plan.gpu_experts().filter(|e| *e == t.expert).count();
                prop_assert_eq!(
                    computes, 1,
                    "{}: expert {} computed {} times", scheduler.name(), t.expert, computes
                );
            }
        }
    }

    /// The paper's objective (Eq. 2): the realized makespan is exactly
    /// `max(CPU, GPU)` finish time — PCIe never has a dangling tail because
    /// every committed transfer is consumed by a GPU compute.
    #[test]
    fn makespan_equals_max_of_cpu_and_gpu_timelines(
        tasks in arb_tasks(),
        cost in arb_cost(),
    ) {
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        for scheduler in all_schedulers() {
            let plan = scheduler.schedule(&ctx);
            let executed = PlanExecutor::new().execute(plan.to_ops(&ctx)).unwrap();
            let cpu_end = executed.timelines.get(Device::Cpu).ready_at();
            let gpu_end = executed.timelines.get(Device::Gpu).ready_at();
            let expected = cpu_end.max(gpu_end).elapsed_since(hybrimoe_hw::SimTime::ZERO);
            prop_assert_eq!(
                executed.makespan, expected,
                "{}: makespan {} != max(CPU {}, GPU {})",
                scheduler.name(), executed.makespan, cpu_end, gpu_end
            );
            prop_assert_eq!(executed.makespan, plan.predicted_makespan, "{} misPredicted", scheduler.name());
        }
    }

    /// The same invariants hold in the prefill regime, where the batch-aware
    /// baselines switch policy (kTransformers stops using the CPU, llama.cpp
    /// streams dequantized weights).
    #[test]
    fn prefill_contexts_keep_all_invariants(
        tasks in arb_tasks(),
        cost in arb_cost(),
    ) {
        let tokens = PREFILL_BATCH_THRESHOLD + 8;
        let ctx = ScheduleContext::new(
            LayerId(0),
            tokens,
            &tasks,
            hybrimoe_hw::ExpertProfile::new(100, 10),
            None,
            &cost,
        );
        for scheduler in all_schedulers() {
            let plan = scheduler.schedule(&ctx);
            prop_assert_eq!(plan.validate(&tasks), Ok(()), "{} invalid at prefill", scheduler.name());
            let executed = PlanExecutor::new().execute(plan.to_ops(&ctx)).unwrap();
            prop_assert_eq!(
                executed.makespan, plan.predicted_makespan,
                "{} prefill prediction off", scheduler.name()
            );
        }
    }

    /// HybriMoE's predicted makespan never exceeds the fixed mapping's on
    /// the same context, decode or prefill.
    #[test]
    fn hybrid_never_loses_to_fixed_mapping_any_regime(
        tasks in arb_tasks(),
        cost in arb_cost(),
        prefill in any::<bool>(),
    ) {
        let tokens = if prefill {
            PREFILL_BATCH_THRESHOLD
        } else {
            tasks.iter().map(|t| t.load).max().unwrap_or(1)
        };
        let ctx = ScheduleContext::new(
            LayerId(0),
            tokens,
            &tasks,
            hybrimoe_hw::ExpertProfile::new(100, 10),
            None,
            &cost,
        );
        let hybrid = HybridScheduler::new().schedule(&ctx);
        let fixed = FixedMappingScheduler::new().schedule(&ctx);
        prop_assert!(
            hybrid.predicted_makespan <= fixed.predicted_makespan,
            "hybrid {} > fixed {} (prefill={}) on {:?}",
            hybrid.predicted_makespan,
            fixed.predicted_makespan,
            prefill,
            tasks
        );
    }
}
