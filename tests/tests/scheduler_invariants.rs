//! Property-based invariants on the schedulers, checked across random task
//! sets: plans are complete and valid, the scheduler's internal makespan
//! prediction agrees with the ground-truth plan executor, and the hybrid
//! schedule never loses to the fixed mapping.

use hybrimoe_hw::{PlanExecutor, SimDuration, UnitCostModel};
use hybrimoe_model::{ExpertId, LayerId};
use hybrimoe_sched::baselines::{FixedMappingScheduler, GpuOnlyScheduler};
use hybrimoe_sched::{ExpertTask, HybridScheduler, ScheduleContext, Scheduler};
use proptest::prelude::*;

fn arb_tasks() -> impl Strategy<Value = Vec<ExpertTask>> {
    proptest::collection::vec((1u32..12, any::<bool>()), 1..10).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (load, cached))| ExpertTask {
                expert: ExpertId(i as u16),
                load,
                cached,
            })
            .collect()
    })
}

fn arb_cost() -> impl Strategy<Value = UnitCostModel> {
    (1u64..6, 1u64..6, 1u64..12).prop_map(|(cpu, gpu, xfer)| UnitCostModel {
        cpu_per_load: SimDuration::from_micros(cpu),
        gpu_per_task: SimDuration::from_micros(gpu),
        transfer_per_expert: SimDuration::from_micros(xfer),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn hybrid_plans_are_valid_and_prediction_matches_executor(
        tasks in arb_tasks(),
        cost in arb_cost(),
    ) {
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let plan = HybridScheduler::new().schedule(&ctx);
        prop_assert_eq!(plan.validate(&tasks), Ok(()));
        let executed = PlanExecutor::new().execute(plan.to_ops(&ctx)).unwrap();
        // The executor includes PCIe tails; the paper's objective (Eq. 2)
        // excludes them, but every transfer is consumed by a GPU compute so
        // the two agree exactly.
        prop_assert_eq!(executed.makespan, plan.predicted_makespan);
    }

    #[test]
    fn baseline_plans_are_valid(
        tasks in arb_tasks(),
        cost in arb_cost(),
    ) {
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        for scheduler in [
            Box::new(FixedMappingScheduler::new()) as Box<dyn Scheduler>,
            Box::new(GpuOnlyScheduler::new()),
        ] {
            let plan = scheduler.schedule(&ctx);
            prop_assert_eq!(plan.validate(&tasks), Ok(()));
            let executed = PlanExecutor::new().execute(plan.to_ops(&ctx)).unwrap();
            prop_assert_eq!(executed.makespan, plan.predicted_makespan);
        }
    }

    #[test]
    fn hybrid_never_loses_to_fixed_mapping(
        tasks in arb_tasks(),
        cost in arb_cost(),
    ) {
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let hybrid = HybridScheduler::new().schedule(&ctx);
        let fixed = FixedMappingScheduler::new().schedule(&ctx);
        prop_assert!(
            hybrid.predicted_makespan <= fixed.predicted_makespan,
            "hybrid {} > fixed {} on {:?}",
            hybrid.predicted_makespan,
            fixed.predicted_makespan,
            tasks
        );
    }

    #[test]
    fn hybrid_without_steal_is_still_valid(
        tasks in arb_tasks(),
        cost in arb_cost(),
    ) {
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let plan = HybridScheduler::without_cpu_steal().schedule(&ctx);
        prop_assert_eq!(plan.validate(&tasks), Ok(()));
    }

    #[test]
    fn every_cached_task_avoids_pcie(
        tasks in arb_tasks(),
        cost in arb_cost(),
    ) {
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let plan = HybridScheduler::new().schedule(&ctx);
        for x in &plan.pcie_order {
            prop_assert!(!x.cached, "cached expert {} transferred", x.expert);
        }
    }
}
