//! Property-based invariants on the schedulers, checked across random task
//! sets: plans are complete and valid, the scheduler's internal makespan
//! prediction agrees with the ground-truth plan executor, and the hybrid
//! schedule never loses to the fixed mapping.

use hybrimoe_hw::{Device, PlanExecutor, SimDuration, UnitCostModel};
use hybrimoe_model::{shard_of, ExpertId, LayerId};
use hybrimoe_sched::baselines::{
    FixedMappingScheduler, GpuOnlyScheduler, StaticSplitScheduler, PREFILL_BATCH_THRESHOLD,
};
use hybrimoe_sched::{ExpertTask, HybridScheduler, ScheduleContext, Scheduler};
use proptest::prelude::*;

fn arb_tasks() -> impl Strategy<Value = Vec<ExpertTask>> {
    proptest::collection::vec((1u32..12, any::<bool>()), 1..10).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (load, cached))| ExpertTask {
                expert: ExpertId(i as u16),
                load,
                cached,
            })
            .collect()
    })
}

/// Every scheduler the engine can be configured with.
fn all_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(HybridScheduler::new()),
        Box::new(HybridScheduler::without_cpu_steal()),
        Box::new(FixedMappingScheduler::new()),
        Box::new(GpuOnlyScheduler::new()),
        Box::new(StaticSplitScheduler::new()),
    ]
}

fn arb_cost() -> impl Strategy<Value = UnitCostModel> {
    (1u64..6, 1u64..6, 1u64..12).prop_map(|(cpu, gpu, xfer)| UnitCostModel {
        cpu_per_load: SimDuration::from_micros(cpu),
        gpu_per_task: SimDuration::from_micros(gpu),
        transfer_per_expert: SimDuration::from_micros(xfer),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn hybrid_plans_are_valid_and_prediction_matches_executor(
        tasks in arb_tasks(),
        cost in arb_cost(),
    ) {
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let plan = HybridScheduler::new().schedule(&ctx);
        prop_assert_eq!(plan.validate(&tasks), Ok(()));
        let executed = PlanExecutor::new().execute(plan.to_ops(&ctx)).unwrap();
        // The executor includes PCIe tails; the paper's objective (Eq. 2)
        // excludes them, but every transfer is consumed by a GPU compute so
        // the two agree exactly.
        prop_assert_eq!(executed.makespan, plan.predicted_makespan);
    }

    #[test]
    fn baseline_plans_are_valid(
        tasks in arb_tasks(),
        cost in arb_cost(),
    ) {
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        for scheduler in [
            Box::new(FixedMappingScheduler::new()) as Box<dyn Scheduler>,
            Box::new(GpuOnlyScheduler::new()),
        ] {
            let plan = scheduler.schedule(&ctx);
            prop_assert_eq!(plan.validate(&tasks), Ok(()));
            let executed = PlanExecutor::new().execute(plan.to_ops(&ctx)).unwrap();
            prop_assert_eq!(executed.makespan, plan.predicted_makespan);
        }
    }

    #[test]
    fn hybrid_never_loses_to_fixed_mapping(
        tasks in arb_tasks(),
        cost in arb_cost(),
    ) {
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let hybrid = HybridScheduler::new().schedule(&ctx);
        let fixed = FixedMappingScheduler::new().schedule(&ctx);
        prop_assert!(
            hybrid.predicted_makespan <= fixed.predicted_makespan,
            "hybrid {} > fixed {} on {:?}",
            hybrid.predicted_makespan,
            fixed.predicted_makespan,
            tasks
        );
    }

    #[test]
    fn hybrid_without_steal_is_still_valid(
        tasks in arb_tasks(),
        cost in arb_cost(),
    ) {
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let plan = HybridScheduler::without_cpu_steal().schedule(&ctx);
        prop_assert_eq!(plan.validate(&tasks), Ok(()));
    }

    #[test]
    fn every_cached_task_avoids_pcie(
        tasks in arb_tasks(),
        cost in arb_cost(),
    ) {
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let plan = HybridScheduler::new().schedule(&ctx);
        for x in &plan.pcie_order {
            prop_assert!(!x.cached, "cached expert {} transferred", x.expert);
        }
    }
}

// The new suites run under `ProptestConfig::default()`, whose case count CI
// pins via the PROPTEST_CASES environment variable.
proptest! {
    /// Conservation across **all** schedulers, llama.cpp included: every
    /// activated expert is computed exactly once, on exactly one device.
    #[test]
    fn every_activated_expert_computed_exactly_once(
        tasks in arb_tasks(),
        cost in arb_cost(),
    ) {
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        for scheduler in all_schedulers() {
            let plan = scheduler.schedule(&ctx);
            prop_assert_eq!(plan.validate(&tasks), Ok(()), "{} invalid", scheduler.name());
            for t in &tasks {
                let computes = plan.cpu_experts().filter(|e| *e == t.expert).count()
                    + plan.gpu_experts().filter(|e| *e == t.expert).count();
                prop_assert_eq!(
                    computes, 1,
                    "{}: expert {} computed {} times", scheduler.name(), t.expert, computes
                );
            }
        }
    }

    /// The paper's objective (Eq. 2): the realized makespan is exactly
    /// `max(CPU, GPU)` finish time — PCIe never has a dangling tail because
    /// every committed transfer is consumed by a GPU compute.
    #[test]
    fn makespan_equals_max_of_cpu_and_gpu_timelines(
        tasks in arb_tasks(),
        cost in arb_cost(),
    ) {
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        for scheduler in all_schedulers() {
            let plan = scheduler.schedule(&ctx);
            let executed = PlanExecutor::new().execute(plan.to_ops(&ctx)).unwrap();
            let cpu_end = executed.timelines.get(Device::Cpu).ready_at();
            let gpu_end = executed.timelines.get(Device::gpu(0)).ready_at();
            let expected = cpu_end.max(gpu_end).elapsed_since(hybrimoe_hw::SimTime::ZERO);
            prop_assert_eq!(
                executed.makespan, expected,
                "{}: makespan {} != max(CPU {}, GPU {})",
                scheduler.name(), executed.makespan, cpu_end, gpu_end
            );
            prop_assert_eq!(executed.makespan, plan.predicted_makespan, "{} misPredicted", scheduler.name());
        }
    }

    /// The same invariants hold in the prefill regime, where the batch-aware
    /// baselines switch policy (kTransformers stops using the CPU, llama.cpp
    /// streams dequantized weights).
    #[test]
    fn prefill_contexts_keep_all_invariants(
        tasks in arb_tasks(),
        cost in arb_cost(),
    ) {
        let tokens = PREFILL_BATCH_THRESHOLD + 8;
        let ctx = ScheduleContext::new(
            LayerId(0),
            tokens,
            &tasks,
            hybrimoe_hw::ExpertProfile::new(100, 10),
            None,
            &cost,
        );
        for scheduler in all_schedulers() {
            let plan = scheduler.schedule(&ctx);
            prop_assert_eq!(plan.validate(&tasks), Ok(()), "{} invalid at prefill", scheduler.name());
            let executed = PlanExecutor::new().execute(plan.to_ops(&ctx)).unwrap();
            prop_assert_eq!(
                executed.makespan, plan.predicted_makespan,
                "{} prefill prediction off", scheduler.name()
            );
        }
    }

    /// HybriMoE's predicted makespan never exceeds the fixed mapping's on
    /// the same context, decode or prefill.
    #[test]
    fn hybrid_never_loses_to_fixed_mapping_any_regime(
        tasks in arb_tasks(),
        cost in arb_cost(),
        prefill in any::<bool>(),
    ) {
        let tokens = if prefill {
            PREFILL_BATCH_THRESHOLD
        } else {
            tasks.iter().map(|t| t.load).max().unwrap_or(1)
        };
        let ctx = ScheduleContext::new(
            LayerId(0),
            tokens,
            &tasks,
            hybrimoe_hw::ExpertProfile::new(100, 10),
            None,
            &cost,
        );
        let hybrid = HybridScheduler::new().schedule(&ctx);
        let fixed = FixedMappingScheduler::new().schedule(&ctx);
        prop_assert!(
            hybrid.predicted_makespan <= fixed.predicted_makespan,
            "hybrid {} > fixed {} (prefill={}) on {:?}",
            hybrid.predicted_makespan,
            fixed.predicted_makespan,
            prefill,
            tasks
        );
    }
}

// Multi-GPU properties: the sharded generalization must keep every
// single-GPU invariant across 1, 2 and 4 shards, respect the expert→shard
// affinity map, and stay bit-identical to the pre-refactor algorithm at
// N = 1.
proptest! {
    /// Exactly-once expert computation across **all** GPUs: no expert runs
    /// on two shards, none is dropped, for every scheduler at every GPU
    /// count.
    #[test]
    fn every_expert_computed_exactly_once_across_all_gpus(
        tasks in arb_tasks(),
        cost in arb_cost(),
        num_gpus in 1usize..5,
    ) {
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost).with_gpus(num_gpus);
        for scheduler in all_schedulers() {
            let plan = scheduler.schedule(&ctx);
            prop_assert_eq!(
                plan.validate(&tasks), Ok(()),
                "{} invalid at N={}", scheduler.name(), num_gpus
            );
            for t in &tasks {
                let computes = plan.cpu_experts().filter(|e| *e == t.expert).count()
                    + plan.gpu_experts().filter(|e| *e == t.expert).count();
                prop_assert_eq!(
                    computes, 1,
                    "{} N={}: expert {} computed {} times",
                    scheduler.name(), num_gpus, t.expert, computes
                );
            }
        }
    }

    /// Every GPU-side placement (compute or transfer target) lands on the
    /// expert's affinity shard, so per-GPU caches never hold duplicates.
    #[test]
    fn gpu_placements_respect_the_affinity_map(
        tasks in arb_tasks(),
        cost in arb_cost(),
        num_gpus in 1usize..5,
    ) {
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost).with_gpus(num_gpus);
        for scheduler in all_schedulers() {
            let plan = scheduler.schedule(&ctx);
            for g in &plan.gpu_order {
                let Some(gpu) = g.placement.gpu() else {
                    prop_assert!(false, "{}: CPU placement in gpu_order", scheduler.name());
                    continue;
                };
                prop_assert_eq!(
                    gpu.0 as usize,
                    shard_of(g.task.expert, num_gpus),
                    "{} N={}: {} off its shard",
                    scheduler.name(), num_gpus, g.task.expert
                );
            }
        }
    }

    /// The executed makespan equals the maximum finish time over **every**
    /// per-device timeline (CPU, all GPUs, all PCIe lanes) — and, because
    /// every transfer is consumed by a GPU compute, also over just the
    /// compute devices. The scheduler's internal prediction agrees.
    #[test]
    fn makespan_is_max_over_per_device_timelines(
        tasks in arb_tasks(),
        cost in arb_cost(),
        num_gpus in 1usize..5,
    ) {
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost).with_gpus(num_gpus);
        for scheduler in all_schedulers() {
            let plan = scheduler.schedule(&ctx);
            let executed = PlanExecutor::new()
                .with_gpus(num_gpus)
                .execute(plan.to_ops(&ctx))
                .unwrap();
            let all_max = executed
                .timelines
                .iter()
                .map(|tl| tl.ready_at())
                .fold(hybrimoe_hw::SimTime::ZERO, hybrimoe_hw::SimTime::max)
                .elapsed_since(hybrimoe_hw::SimTime::ZERO);
            prop_assert_eq!(
                executed.makespan, all_max,
                "{} N={}: makespan != max over device timelines", scheduler.name(), num_gpus
            );
            let compute_max = executed
                .timelines
                .compute_finish_time()
                .elapsed_since(hybrimoe_hw::SimTime::ZERO);
            prop_assert_eq!(
                executed.makespan, compute_max,
                "{} N={}: PCIe tail not consumed", scheduler.name(), num_gpus
            );
            prop_assert_eq!(
                executed.makespan, plan.predicted_makespan,
                "{} N={} misPredicted", scheduler.name(), num_gpus
            );
        }
    }

    /// `with_gpus(1)` is the identity: the whole plan (orders, placements,
    /// prediction) matches the default single-GPU context bit for bit.
    #[test]
    fn single_gpu_plans_are_bit_identical_to_default(
        tasks in arb_tasks(),
        cost in arb_cost(),
    ) {
        let base = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let one = ScheduleContext::for_test(LayerId(0), &tasks, &cost).with_gpus(1);
        for scheduler in all_schedulers() {
            prop_assert_eq!(
                scheduler.schedule(&base),
                scheduler.schedule(&one),
                "{} diverges at explicit N=1",
                scheduler.name()
            );
        }
    }

    /// Adding GPUs never hurts the hybrid schedule: with more shards the
    /// predicted makespan is monotone non-increasing on fully cached
    /// layers (each shard serializes less work).
    #[test]
    fn more_gpus_never_slow_fully_cached_layers(
        loads in proptest::collection::vec(1u32..12, 1..10),
        cost in arb_cost(),
    ) {
        let tasks: Vec<ExpertTask> = loads
            .into_iter()
            .enumerate()
            .map(|(i, load)| ExpertTask::cached(ExpertId(i as u16), load))
            .collect();
        let mut last = None;
        for num_gpus in [1usize, 2, 4] {
            let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost).with_gpus(num_gpus);
            let plan = HybridScheduler::without_cpu_steal().schedule(&ctx);
            if let Some(prev) = last {
                prop_assert!(
                    plan.predicted_makespan <= prev,
                    "N={} makespan {} > previous {}",
                    num_gpus, plan.predicted_makespan, prev
                );
            }
            last = Some(plan.predicted_makespan);
        }
    }
}
