//! Real-execution backend suite: placement invariance of the numerical
//! layer outputs (property-tested across every scheduler), sim/real engine
//! interchangeability, continuous-batching serving on real kernels, and
//! the calibration feedback loop — after grounding the simulator's CPU
//! constants in measured kernel runs, its predicted CPU time must land
//! within ±30% of the measured wall-clock.

use hybrimoe::realexec::{RealExecOptions, RealLayerExecutor};
use hybrimoe::serve::{ArrivalProcess, ServeConfig, ServeSim};
use hybrimoe::{BackendKind, Engine, EngineConfig, Framework, SchedulerKind};
use hybrimoe_hw::{Device, SimDuration, UnitCostModel};
use hybrimoe_model::{LayerId, LayerRouting, ModelConfig, RouterOutput};
use hybrimoe_sched::baselines::{FixedMappingScheduler, GpuOnlyScheduler, StaticSplitScheduler};
use hybrimoe_sched::{ExpertTask, HybridScheduler, ScheduleContext, Scheduler};
use hybrimoe_trace::TraceGenerator;
use proptest::prelude::*;

/// Deterministic token inputs and routes for one tiny-model layer.
fn layer_tokens(
    model: &ModelConfig,
    tokens: usize,
    seed: u64,
) -> (Vec<Vec<f32>>, Vec<RouterOutput>) {
    let hidden = model.routed_shape.hidden() as usize;
    let experts = model.routed_experts as usize;
    let k = model.activated_experts as usize;
    (0..tokens)
        .map(|t| {
            let x: Vec<f32> = (0..hidden)
                .map(|i| (((t as u64 * 131 + i as u64 * 7 + seed) % 100) as f32 / 50.0 - 1.0) * 0.1)
                .collect();
            let logits: Vec<f32> = (0..experts)
                .map(|e| (((t + e * 13 + seed as usize) % 17) as f32) / 4.0)
                .collect();
            (x, RouterOutput::route(&logits, k))
        })
        .unzip()
}

/// Every scheduler an engine can be configured with, including StaticSplit.
fn all_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(HybridScheduler::new()),
        Box::new(HybridScheduler::without_cpu_steal()),
        Box::new(FixedMappingScheduler::new()),
        Box::new(GpuOnlyScheduler::new()),
        Box::new(StaticSplitScheduler::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The expert-major batched hot path is bit-identical to the retained
    /// token-major reference across random placements (every scheduler ×
    /// random residency), batch sizes, and thread counts. The batched side
    /// pins the scalar kernel backend: the token-major reference always
    /// runs the scalar loops, and cross-strategy bit-identity is only
    /// promised when both sides use the same arithmetic.
    #[test]
    fn expert_major_is_bit_identical_to_token_major(
        seed in 0u64..1_000,
        cached_mask in any::<u8>(),
        tokens in 1usize..10,
        threads in 1usize..4,
    ) {
        let model = ModelConfig::tiny_test();
        let (inputs, routes) = layer_tokens(&model, tokens, seed);
        let routing = LayerRouting::from_tokens(LayerId(0), model.routed_experts, &routes);
        let tasks: Vec<ExpertTask> = routing
            .activated()
            .into_iter()
            .map(|(e, load)| ExpertTask {
                expert: e,
                load,
                cached: cached_mask & (1 << (e.0 % 8)) != 0,
            })
            .collect();
        let cost = UnitCostModel::paper_fig5();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);

        let mut batched = RealLayerExecutor::with_options(
            model.clone(),
            7,
            RealExecOptions {
                max_threads: threads,
                kernel_backend: hybrimoe_kernels::KernelBackendKind::Scalar,
                ..Default::default()
            },
        );
        let mut reference = RealLayerExecutor::with_options(
            model,
            7,
            RealExecOptions { max_threads: threads, token_major: true, ..Default::default() },
        );
        for scheduler in all_schedulers() {
            let plan = scheduler.schedule(&ctx);
            prop_assert_eq!(plan.validate(&tasks), Ok(()));
            let fast = batched
                .execute_layer(LayerId(0), &plan, &inputs, &routes)
                .expect("valid plan executes");
            let slow = reference
                .execute_layer(LayerId(0), &plan, &inputs, &routes)
                .expect("valid plan executes");
            prop_assert_eq!(
                &fast.output,
                &slow.output,
                "{} diverged between strategies (tokens={}, threads={})",
                scheduler.name(),
                tokens,
                threads
            );
            prop_assert_eq!(fast.cpu_tasks, slow.cpu_tasks);
            prop_assert_eq!(fast.gpu_tasks, slow.gpu_tasks);
            prop_assert!(fast.output.iter().all(|v| v.is_finite()));
        }
    }

    /// A layer's real output is bit-identical no matter which scheduler
    /// produced the plan — HybridScheduler, every baseline, and
    /// StaticSplit — across random inputs and cache residency patterns.
    #[test]
    fn real_output_is_bit_identical_across_all_schedulers(
        seed in 0u64..1_000,
        cached_mask in any::<u8>(),
        tokens in 1usize..4,
    ) {
        let model = ModelConfig::tiny_test();
        let (inputs, routes) = layer_tokens(&model, tokens, seed);
        let routing = LayerRouting::from_tokens(LayerId(0), model.routed_experts, &routes);
        let tasks: Vec<ExpertTask> = routing
            .activated()
            .into_iter()
            .map(|(e, load)| ExpertTask {
                expert: e,
                load,
                cached: cached_mask & (1 << (e.0 % 8)) != 0,
            })
            .collect();
        let cost = UnitCostModel::paper_fig5();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);

        let mut exec = RealLayerExecutor::with_options(
            model,
            7,
            RealExecOptions { max_threads: 1, ..Default::default() },
        );
        let mut reference: Option<Vec<f32>> = None;
        for scheduler in all_schedulers() {
            let plan = scheduler.schedule(&ctx);
            prop_assert_eq!(plan.validate(&tasks), Ok(()));
            let out = exec
                .execute_layer(LayerId(0), &plan, &inputs, &routes)
                .expect("valid plan executes");
            match &reference {
                None => reference = Some(out.output),
                Some(r) => prop_assert_eq!(
                    r,
                    &out.output,
                    "{} diverged from the reference output",
                    scheduler.name()
                ),
            }
        }
        prop_assert!(reference.unwrap().iter().any(|v| *v != 0.0));
    }
}

fn real_config(framework: Framework, seed: u64) -> EngineConfig {
    EngineConfig::preset(framework, ModelConfig::tiny_test(), 0.25)
        .with_backend(BackendKind::RealCpu)
        .with_real_exec(RealExecOptions {
            max_threads: 1,
            ..Default::default()
        })
        .with_seed(seed)
}

/// End-to-end placement invariance: engines with different frameworks
/// (different schedulers, caches, placements) produce bit-identical real
/// layer outputs for the same trace.
#[test]
fn engine_real_outputs_are_framework_independent() {
    let model = ModelConfig::tiny_test();
    let trace = TraceGenerator::new(model, 41)
        .with_token_states()
        .decode_trace(3);

    let mut reference: Option<Vec<Vec<Vec<f32>>>> = None;
    for framework in Framework::ALL {
        let mut engine = Engine::new(real_config(framework, 41));
        let mut per_step = Vec::new();
        for step in &trace.steps {
            engine.step(step);
            let outputs: Vec<Vec<f32>> = engine
                .take_real_outputs()
                .into_iter()
                .map(|o| o.output)
                .collect();
            assert_eq!(outputs.len(), engine.config().model.layers as usize);
            per_step.push(outputs);
        }
        match &reference {
            None => reference = Some(per_step),
            Some(r) => assert_eq!(r, &per_step, "{framework} diverged"),
        }
    }
}

/// The sim backend ignores token states: metrics are identical whether or
/// not the trace carries them, and identical to the pre-backend engine
/// (the determinism suite pins the latter).
#[test]
fn sim_backend_ignores_token_states() {
    let model = ModelConfig::tiny_test();
    let plain = TraceGenerator::new(model.clone(), 43).decode_trace(6);
    let stated = TraceGenerator::new(model.clone(), 43)
        .with_token_states()
        .decode_trace(6);
    let config = EngineConfig::preset(Framework::HybriMoe, model, 0.5);
    let a = Engine::new(config.clone()).run(&plain);
    let b = Engine::new(config).run(&stated);
    assert_eq!(a, b);
}

/// Real execution works under the continuous-batching serve loop: prefill
/// merges, join-on-arrival and leave-on-completion all run on the real
/// kernels (the serve layer generates token states automatically).
#[test]
fn real_backend_serves_continuous_batches() {
    let report = ServeSim::new(ServeConfig {
        engine: real_config(Framework::HybriMoe, 7),
        arrivals: ArrivalProcess::deterministic(SimDuration::from_micros(200)),
        requests: 4,
        prompt_tokens: 6,
        decode_tokens: 3,
        max_batch: 2,
        seed: 7,
    })
    .run();
    assert_eq!(report.requests.len(), 4);
    for m in &report.requests {
        assert!(m.first_token >= m.arrival);
        assert!(m.completion >= m.first_token);
    }
    // Real kernels took real time: every step has nonzero latency.
    assert!(report.steps.iter().all(|s| s.latency > SimDuration::ZERO));
    // The batcher actually merged concurrent requests at some point.
    assert!(report.steps.iter().any(|s| s.batch == 2));
}

/// One calibrate-then-predict round: profile run on `profile_seed` grounds
/// the CPU constants, then the calibrated simulator predicts a fresh
/// workload (`smoke_seed`) that the real backend measures. Returns
/// `predicted / measured` total CPU seconds.
fn calibration_round(profile_seed: u64, smoke_seed: u64) -> f64 {
    let model = ModelConfig::tiny_test();
    // KTransformers' fixed mapping sends every uncached expert to the CPU
    // *independently of the cost model*, so (a) the tiny-model workload is
    // guaranteed to exercise the CPU and (b) the sim and real engines build
    // identical schedules before and after calibration. Background
    // transfers are disabled because they depend on the (measured, hence
    // noisy) makespan.
    let base = real_config(Framework::KTransformers, 51).with_max_inflight(0);

    // Phase 1: profile run grounds the CPU constants.
    let profile_trace = TraceGenerator::new(model.clone(), profile_seed)
        .with_token_states()
        .decode_trace(12);
    let mut probe = Engine::new(base.clone());
    probe.run(&profile_trace);
    let calibration = probe
        .backend_calibration()
        .expect("the profile run executed CPU experts");
    assert!(calibration.is_plausible(), "{calibration:?}");

    // Phase 2: fresh workload, calibrated platform, real vs simulated.
    let platform = base.platform.with_calibration(&calibration);
    let smoke_trace = TraceGenerator::new(model, smoke_seed)
        .with_token_states()
        .decode_trace(12);
    let calibrated = base.with_platform(platform);

    let measured = Engine::new(calibrated.clone()).run(&smoke_trace);
    let predicted = Engine::new(calibrated.with_backend(BackendKind::Sim)).run(&smoke_trace);

    // Identical schedules on both sides (same cost model, no background
    // transfers), so CPU expert counts must agree exactly.
    assert_eq!(measured.cpu_experts(), predicted.cpu_experts());
    assert!(measured.cpu_experts() > 0, "workload must exercise the CPU");

    let cpu = |m: &hybrimoe::StageMetrics| -> f64 {
        m.steps
            .iter()
            .map(|s| s.busy(Device::Cpu).as_secs_f64())
            .sum()
    };
    cpu(&predicted) / cpu(&measured)
}

/// The calibration loop closes: measured CPU wall-clock from a real run is
/// distilled into a `CalibrationProfile`, folded into the platform, and the
/// re-grounded simulator predicts the CPU time of a *fresh* workload within
/// ±30% of what the real backend measures for it.
///
/// Wall-clock assertions on microsecond-scale kernels can be perturbed by a
/// noisy host (frequency scaling, scheduler interference between the two
/// phases), so a transient miss gets up to two fresh retries with new
/// seeds; a systematic calibration error fails all three rounds.
#[test]
fn calibrated_simulator_predicts_real_cpu_time_within_30_percent() {
    let mut ratios = Vec::new();
    for (profile_seed, smoke_seed) in [(61, 67), (161, 167), (261, 267)] {
        let ratio = calibration_round(profile_seed, smoke_seed);
        if (0.7..=1.3).contains(&ratio) {
            return;
        }
        ratios.push(ratio);
    }
    panic!("predicted/measured CPU-time ratio outside ±30% in every round: {ratios:?}");
}

/// FNV-1a over the f32 bit patterns, for compact output pins.
fn fnv1a(words: impl Iterator<Item = u32>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// Absolute output pins captured on the **pre-refactor token-major
/// executor** (the PR-4 tree, before expert-major batching existed). The
/// batched executor must reproduce them bit for bit: any drift means the
/// rewrite changed the numerics, not just the speed. The scalar kernel
/// backend is pinned — only it is bit-identical to the pre-SIMD loops.
#[test]
fn expert_major_output_matches_pre_refactor_pin() {
    let pins: [(usize, u64); 3] = [
        (1, 0x45e658ef7579f5dd),
        (3, 0xaed265dd55ed4251),
        (8, 0xe6ae6ef302f5e7cd),
    ];
    let model = ModelConfig::tiny_test();
    for (tokens, expected) in pins {
        let (inputs, routes) = layer_tokens(&model, tokens, 9);
        let routing = LayerRouting::from_tokens(LayerId(0), model.routed_experts, &routes);
        let tasks: Vec<ExpertTask> = routing
            .activated()
            .into_iter()
            .map(|(e, load)| ExpertTask {
                expert: e,
                load,
                cached: e.0 % 2 == 0,
            })
            .collect();
        let cost = UnitCostModel::paper_fig5();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let plan = HybridScheduler::new().schedule(&ctx);
        let mut exec = RealLayerExecutor::with_options(
            model.clone(),
            7,
            RealExecOptions {
                max_threads: 2,
                kernel_backend: hybrimoe_kernels::KernelBackendKind::Scalar,
                ..Default::default()
            },
        );
        let out = exec
            .execute_layer(LayerId(0), &plan, &inputs, &routes)
            .unwrap();
        assert_eq!(
            fnv1a(out.output.iter().map(|v| v.to_bits())),
            expected,
            "tokens={tokens}: output drifted from the pre-refactor executor"
        );
    }
}

/// The StaticSplit scheduler can drive the real backend end to end as an
/// explicit configuration (not just a llama.cpp preset).
#[test]
fn static_split_runs_real_backend_end_to_end() {
    let model = ModelConfig::tiny_test();
    let trace = TraceGenerator::new(model, 45)
        .with_token_states()
        .decode_trace(2);
    let config = real_config(Framework::LlamaCpp, 45).with_scheduler(SchedulerKind::StaticSplit);
    let mut engine = Engine::new(config);
    let metrics = engine.run(&trace);
    assert_eq!(metrics.steps.len(), 2);
    assert!(metrics.total > SimDuration::ZERO);
}
