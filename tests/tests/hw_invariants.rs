//! Property-based invariants on the hardware substrate: timeline
//! well-formedness, executor consistency, and cost-model monotonicity.

use hybrimoe_hw::{
    AffineCostModel, CostModel, Device, ExpertProfile, Op, PlanExecutor, Platform, SimDuration,
    SimTime, Timeline,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn timelines_never_overlap(
        ops in proptest::collection::vec((0u64..100, 1u64..50), 1..40),
    ) {
        let mut tl = Timeline::new(Device::Cpu);
        for (release, dur) in ops {
            tl.push(
                SimTime::from_nanos(release),
                SimDuration::from_nanos(dur),
                "op",
            );
        }
        prop_assert!(tl.is_well_formed());
        // Busy time can never exceed the horizon.
        let horizon = tl.ready_at().elapsed_since(SimTime::ZERO);
        prop_assert!(tl.busy_time() <= horizon);
    }

    #[test]
    fn executor_respects_device_order_and_dependencies(
        durations in proptest::collection::vec(1u64..20, 2..12),
    ) {
        // A chain: transfer i gates compute i on the GPU; CPU runs the rest.
        let mut ops = Vec::new();
        let mut id = 0u32;
        for (i, d) in durations.iter().enumerate() {
            let dur = SimDuration::from_micros(*d);
            if i % 2 == 0 {
                let xfer = Op::new(id, Device::pcie(0), dur, format!("x{i}"));
                let xid = xfer.id;
                id += 1;
                let comp = Op::new(id, Device::gpu(0), dur, format!("g{i}")).after(xid);
                id += 1;
                ops.push(xfer);
                ops.push(comp);
            } else {
                ops.push(Op::new(id, Device::Cpu, dur, format!("c{i}")));
                id += 1;
            }
        }
        let executed = PlanExecutor::new().execute(ops.clone()).unwrap();
        prop_assert_eq!(executed.ops.len(), ops.len());
        // Dependencies respected.
        for op in &ops {
            for dep in &op.deps {
                let dep_end = executed.end_of(*dep).unwrap();
                let start = executed.start_of(op.id).unwrap();
                prop_assert!(start >= dep_end);
            }
        }
        // Per-device, ops run in the given order.
        for device in hybrimoe_hw::devices(1) {
            let starts: Vec<_> = ops
                .iter()
                .filter(|o| o.device == device)
                .map(|o| executed.start_of(o.id).unwrap())
                .collect();
            prop_assert!(starts.windows(2).all(|w| w[0] <= w[1]));
        }
        for tl in executed.timelines.iter() {
            prop_assert!(tl.is_well_formed());
        }
    }

    #[test]
    fn cost_model_is_monotone_in_tokens(
        bytes in 1_000u64..200_000_000,
        flops in 1_000u64..500_000_000,
        t1 in 1u32..512,
        t2 in 1u32..512,
    ) {
        prop_assume!(t1 < t2);
        let m = AffineCostModel::from_platform(&Platform::a6000_xeon10());
        let e = ExpertProfile::new(bytes, flops);
        prop_assert!(m.cpu_compute(&e, t1, true) <= m.cpu_compute(&e, t2, true));
        prop_assert!(m.gpu_compute(&e, t1) <= m.gpu_compute(&e, t2));
        // Cold is never cheaper than warm.
        prop_assert!(m.cpu_compute(&e, t1, false) >= m.cpu_compute(&e, t1, true));
    }

    #[test]
    fn transfer_monotone_in_bytes(b1 in 1u64..1_000_000_000, b2 in 1u64..1_000_000_000) {
        prop_assume!(b1 < b2);
        let m = AffineCostModel::from_platform(&Platform::a6000_xeon10());
        prop_assert!(
            m.transfer(&ExpertProfile::new(b1, 1)) <= m.transfer(&ExpertProfile::new(b2, 1))
        );
    }
}
