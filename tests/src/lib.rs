//! Shared helpers for the HybriMoE integration test suite.

use hybrimoe::{Engine, EngineConfig, Framework, StageMetrics};
use hybrimoe_model::ModelConfig;
use hybrimoe_trace::{ActivationTrace, TraceGenerator};

/// Seed used across the integration tests.
pub const SEED: u64 = 0x1E57;

/// Runs a framework preset over a decode trace.
pub fn decode(framework: Framework, model: &ModelConfig, ratio: f64, steps: usize) -> StageMetrics {
    let trace = decode_trace(model, steps);
    Engine::new(EngineConfig::preset(framework, model.clone(), ratio)).run(&trace)
}

/// Runs a framework preset over a prefill trace.
pub fn prefill(framework: Framework, model: &ModelConfig, ratio: f64, tokens: u32) -> StageMetrics {
    let trace = prefill_trace(model, tokens);
    Engine::new(EngineConfig::preset(framework, model.clone(), ratio)).run(&trace)
}

/// The shared decode trace for `model`.
pub fn decode_trace(model: &ModelConfig, steps: usize) -> ActivationTrace {
    TraceGenerator::new(model.clone(), SEED).decode_trace(steps)
}

/// The shared prefill trace for `model`.
pub fn prefill_trace(model: &ModelConfig, tokens: u32) -> ActivationTrace {
    TraceGenerator::new(model.clone(), SEED).prefill_trace(tokens)
}
