//! Visualizing a single layer's schedule as a Gantt chart.
//!
//! Takes one MoE layer of a real Mixtral prefill trace, schedules it with
//! each policy, and draws the CPU/GPU/PCIe timelines — the fastest way to
//! see *why* the hybrid schedule wins: the CPU absorbs small experts while
//! PCIe feeds the GPU the heavy ones.
//!
//! ```text
//! cargo run -p hybrimoe-examples --release --bin gantt_trace
//! ```

use hybrimoe_cache::{ExpertCache, Mrs};
use hybrimoe_hw::{AffineCostModel, Gantt, PlanExecutor, Platform};
use hybrimoe_model::{ExpertKey, ModelConfig};
use hybrimoe_sched::baselines::{FixedMappingScheduler, GpuOnlyScheduler};
use hybrimoe_sched::{ExpertTask, HybridScheduler, ScheduleContext, Scheduler};
use hybrimoe_trace::TraceGenerator;

fn main() {
    let model = ModelConfig::mixtral();
    let tokens = 64u32;
    let trace = TraceGenerator::new(model.clone(), 5).prefill_trace(tokens);
    let rec = &trace.steps[0].layers[3]; // an arbitrary mid-stack layer
    let layer = rec.routing.layer();

    // Cache half the experts (MRS policy, warmed by the routing itself).
    let mut cache = ExpertCache::new(model.cache_capacity_for_ratio(0.5), Box::new(Mrs::new(0.3)));
    for key in model.expert_keys().step_by(2) {
        cache.insert(key);
    }

    let tasks: Vec<ExpertTask> = rec
        .routing
        .activated()
        .into_iter()
        .map(|(expert, load)| ExpertTask {
            expert,
            load,
            cached: cache.contains(ExpertKey::new(layer, expert)),
        })
        .collect();
    println!(
        "{} prefill, layer {layer}, {} activated experts, loads {:?}\n",
        model.name,
        tasks.len(),
        tasks.iter().map(|t| t.load).collect::<Vec<_>>()
    );

    let cost = AffineCostModel::from_platform(&Platform::a6000_xeon10());
    let ctx = ScheduleContext::new(
        layer,
        tokens,
        &tasks,
        model.routed_profile(),
        model.shared_profile(),
        &cost,
    );

    let schedulers: [(&str, Box<dyn Scheduler>); 3] = [
        (
            "GPU-only on-demand (AdapMoE)",
            Box::new(GpuOnlyScheduler::new()),
        ),
        (
            "fixed mapping (kTransformers)",
            Box::new(FixedMappingScheduler::new()),
        ),
        ("hybrid (HybriMoE)", Box::new(HybridScheduler::new())),
    ];
    for (name, scheduler) in schedulers {
        let plan = scheduler.schedule(&ctx);
        plan.validate(&tasks).expect("valid plan");
        let executed = PlanExecutor::new()
            .execute(plan.to_ops(&ctx))
            .expect("acyclic plan");
        println!("-- {name}: {:.2} ms --", executed.makespan.as_millis_f64());
        println!("{}\n", Gantt::render(&executed.timelines, 64));
    }
}
