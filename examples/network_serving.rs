//! Network serving: start the TCP front-end in-process, stream a few
//! requests over real HTTP/1.1 connections, and read the SLO accounting
//! back from `GET /metrics`.
//!
//! ```text
//! cargo run -p hybrimoe --release --example network_serving
//! ```
//!
//! The server runs the same continuous batcher the simulator drives, but
//! stepped against the wall clock: admission control (queue depth and a
//! load-shed watermark), per-token chunked streaming, and a graceful
//! drain on shutdown.

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use hybrimoe::serve::server::{read_chunks, read_response_head, Server, ServerConfig};
use hybrimoe::{EngineConfig, Framework};
use hybrimoe_model::ModelConfig;

fn main() {
    let mut config = ServerConfig::new(EngineConfig::preset(
        Framework::HybriMoe,
        ModelConfig::tiny_test(),
        0.5,
    ));
    config.max_batch = 8;
    config.queue_depth = 64;
    config.shed_watermark = Some(Duration::from_millis(500));
    config.min_step = Some(Duration::from_millis(2));
    let server = Server::start(config).expect("bind a loopback port");
    let addr = server.addr();
    println!("serving on {addr} (tiny model, max batch 8, queue depth 64)\n");

    // Eight concurrent clients, each streaming one request.
    let clients: Vec<_> = (0..8)
        .map(|i| {
            thread::spawn(move || {
                let body = format!("{{\"prompt_tokens\":16,\"decode_tokens\":{}}}", 4 + i % 3);
                let mut stream = TcpStream::connect(addr).expect("connect");
                let started = Instant::now();
                write!(
                    stream,
                    "POST /v1/generate HTTP/1.1\r\nHost: example\r\n\
                     Content-Type: application/json\r\nContent-Length: {}\r\n\
                     Connection: close\r\n\r\n{body}",
                    body.len()
                )
                .expect("send request");
                let mut reader = BufReader::new(stream);
                let (status, chunked, _) = read_response_head(&mut reader).expect("response head");
                assert_eq!(status, 200, "request admitted");
                assert!(chunked, "admitted responses stream");
                let chunks = read_chunks(&mut reader).expect("stream to completion");
                let tokens = chunks.iter().filter(|c| c.contains("\"token\"")).count();
                let elapsed = started.elapsed();
                (
                    i,
                    tokens,
                    elapsed,
                    chunks.last().cloned().unwrap_or_default(),
                )
            })
        })
        .collect();

    for client in clients {
        let (i, tokens, elapsed, done) = client.join().expect("client thread");
        println!(
            "client {i}: {tokens} tokens in {:>5.1} ms — {}",
            elapsed.as_secs_f64() * 1e3,
            done.trim()
        );
    }

    // Graceful shutdown drains accepted requests, then reports totals.
    let metrics = server.shutdown();
    println!(
        "\nserver totals: {} admitted, {} completed, {} output tokens over {} steps",
        metrics.admitted, metrics.completed, metrics.output_tokens, metrics.engine_steps
    );
    println!(
        "SLO: queue wait p50/p99 {:.1}/{:.1} ms, TTFT p50/p99 {:.1}/{:.1} ms, \
         TPOT p50/p99 {:.2}/{:.2} ms",
        metrics.queue_wait_p50_ms,
        metrics.queue_wait_p99_ms,
        metrics.ttft_p50_ms,
        metrics.ttft_p99_ms,
        metrics.tpot_p50_ms,
        metrics.tpot_p99_ms
    );
}
