//! Multi-GPU expert sharding: the same HybriMoE engine scaled from one GPU
//! to four.
//!
//! Experts are distributed across GPU shards by the static affinity map
//! (`expert mod num_gpus`): each GPU owns a cache shard and a PCIe lane,
//! and the hybrid scheduler fills every device timeline by minimum
//! completion time, so a layer's cached experts compute on several GPUs in
//! parallel while transfers ride per-GPU lanes.
//!
//! ```text
//! cargo run -p hybrimoe --release --example multi_gpu
//! ```

use hybrimoe::report::Table;
use hybrimoe::{Engine, EngineConfig, Framework};
use hybrimoe_hw::Device;
use hybrimoe_model::ModelConfig;
use hybrimoe_trace::TraceGenerator;

fn main() {
    let model = ModelConfig::deepseek();
    let trace = TraceGenerator::new(model.clone(), 42).decode_trace(24);

    println!(
        "Multi-GPU expert sharding — {} | 24 decode steps, cache ratio 0.25\n",
        model.name
    );

    let mut table = Table::new(vec![
        "gpus".into(),
        "decode total".into(),
        "mean step".into(),
        "speedup".into(),
        "GPU0 util".into(),
        "GPU1 util".into(),
        "hit rate".into(),
    ]);

    let mut baseline_ns = 0u64;
    let mut totals = Vec::new();
    for num_gpus in [1usize, 2, 4] {
        let config =
            EngineConfig::preset(Framework::HybriMoe, model.clone(), 0.25).with_num_gpus(num_gpus);
        let mut engine = Engine::new(config);
        let metrics = engine.run(&trace);
        if num_gpus == 1 {
            baseline_ns = metrics.total.as_nanos();
        }
        let gpu1 = if num_gpus > 1 {
            format!("{:.1}%", metrics.utilization(Device::gpu(1)) * 100.0)
        } else {
            "-".into()
        };
        table.push_row(vec![
            num_gpus.to_string(),
            format!("{:.1}ms", metrics.total.as_millis_f64()),
            format!("{:.2}ms", metrics.mean_step_latency().as_millis_f64()),
            hybrimoe::report::speedup(baseline_ns, metrics.total.as_nanos()),
            format!("{:.1}%", metrics.utilization(Device::gpu(0)) * 100.0),
            gpu1,
            hybrimoe::report::percent(metrics.hit_rate()),
        ]);
        totals.push(metrics.total);
    }
    println!("{table}");

    // The acceptance property of the sharded stack: two GPUs strictly beat
    // one on the same decode workload.
    assert!(
        totals[1] < totals[0],
        "2 GPUs must decode strictly faster than 1 ({:?} vs {:?})",
        totals[1],
        totals[0]
    );
    println!(
        "2 GPUs decode {} faster than 1 on the same trace.",
        hybrimoe::report::speedup(totals[0].as_nanos(), totals[1].as_nanos())
    );
}
