//! Continuous-batching serving: requests arrive over time (Poisson), join
//! the running batch as slots free up, decode token by token through the
//! incremental `Engine::step` API, and leave on completion. Per-request
//! TTFT/TPOT and aggregate throughput come out of the `ServeReport`.
//!
//! ```text
//! cargo run -p hybrimoe --release --example continuous_serving
//! ```

use hybrimoe::report::serve_table;
use hybrimoe::serve::{ArrivalProcess, ServeConfig, ServeSim};
use hybrimoe::{EngineConfig, Framework};
use hybrimoe_model::ModelConfig;

fn main() {
    let model = ModelConfig::deepseek();
    let cache_ratio = 0.25;
    println!(
        "Continuous-batching serving — {} @ {:.0}% cache\n\
         16 requests, 64-token prompts, 16 output tokens, max batch 8\n",
        model.name,
        cache_ratio * 100.0
    );

    let mut rows = Vec::new();
    for rate in [2.0, 8.0] {
        for framework in [Framework::KTransformers, Framework::HybriMoe] {
            let report = ServeSim::new(ServeConfig {
                engine: EngineConfig::preset(framework, model.clone(), cache_ratio),
                arrivals: ArrivalProcess::per_second(rate, true),
                requests: 16,
                prompt_tokens: 64,
                decode_tokens: 16,
                max_batch: 8,
                seed: 2025,
            })
            .run();
            rows.push((framework.to_string(), report.summary()));
        }
    }
    println!("{}", serve_table(&rows));
    println!(
        "Under load the continuous batcher keeps the GPU cache hot across\n\
         overlapping requests; the hybrid scheduler turns the bigger batched\n\
         loads into CPU work and transfers the fixed mapping cannot use, so\n\
         HybriMoE's throughput advantage *grows* with the arrival rate."
    );
}
