//! Quickstart: run HybriMoE decode on DeepSeek-V2-Lite and compare against
//! the kTransformers baseline.
//!
//! ```text
//! cargo run -p hybrimoe-examples --release --bin quickstart
//! ```

use hybrimoe::{Engine, EngineConfig, Framework};
use hybrimoe_model::ModelConfig;
use hybrimoe_trace::TraceGenerator;

fn main() {
    // 1. Pick a model (paper presets: deepseek / mixtral / qwen2) and a GPU
    //    expert-cache ratio.
    let model = ModelConfig::deepseek();
    let cache_ratio = 0.25;

    // 2. Generate a deterministic synthetic activation trace: 32 decode
    //    steps of one token each.
    let trace = TraceGenerator::new(model.clone(), 42).decode_trace(32);

    // 3. Run both engines on the identical trace.
    let mut hybri = Engine::new(EngineConfig::preset(
        Framework::HybriMoe,
        model.clone(),
        cache_ratio,
    ));
    let mut ktrans = Engine::new(EngineConfig::preset(
        Framework::KTransformers,
        model,
        cache_ratio,
    ));
    let ours = hybri.run(&trace);
    let base = ktrans.run(&trace);

    // 4. Report.
    println!("DeepSeek-V2-Lite decode, 32 tokens, 25% expert cache\n");
    println!(
        "kTransformers: {:>8.2} ms/token (hit rate {:.1}%)",
        base.mean_step_latency().as_millis_f64(),
        base.hit_rate() * 100.0
    );
    println!(
        "HybriMoE:      {:>8.2} ms/token (hit rate {:.1}%)",
        ours.mean_step_latency().as_millis_f64(),
        ours.hit_rate() * 100.0
    );
    println!(
        "speedup:       {:>8.2}x",
        base.total.as_nanos() as f64 / ours.total.as_nanos() as f64
    );
    println!(
        "\nHybriMoE placed {} experts on the CPU, {} on the GPU, \
         moved {} on demand and prefetched {}.",
        ours.cpu_experts(),
        ours.gpu_experts(),
        ours.demand_transfers(),
        ours.prefetches()
    );
}
