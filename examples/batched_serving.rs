//! Small-batch decode serving: several concurrent requests decoded in
//! lockstep — the regime between single-user decode and prefill. Batching
//! multiplies per-expert loads, which shifts the optimal placement (more
//! transfers pay off) and widens the dynamic scheduler's advantage.
//!
//! ```text
//! cargo run -p hybrimoe-examples --release --bin batched_serving
//! ```

use hybrimoe::report::Table;
use hybrimoe::{Engine, EngineConfig, Framework};
use hybrimoe_model::ModelConfig;
use hybrimoe_trace::TraceGenerator;

fn main() {
    let model = ModelConfig::deepseek();
    let cache_ratio = 0.25;
    println!(
        "Batched decode serving — {} @ {:.0}% cache, 16 steps\n",
        model.name,
        cache_ratio * 100.0
    );

    let mut table = Table::new(vec![
        "batch".into(),
        "framework".into(),
        "ms/step".into(),
        "ms/token".into(),
        "CPU experts".into(),
        "transfers".into(),
    ]);
    for batch in [1u32, 2, 4, 8] {
        let trace = TraceGenerator::new(model.clone(), 31).decode_trace_batched(16, batch);
        for framework in [Framework::KTransformers, Framework::HybriMoe] {
            let mut engine =
                Engine::new(EngineConfig::preset(framework, model.clone(), cache_ratio));
            let m = engine.run(&trace);
            let per_step = m.mean_step_latency().as_millis_f64();
            table.push_row(vec![
                batch.to_string(),
                framework.to_string(),
                format!("{per_step:.1}"),
                format!("{:.1}", per_step / batch as f64),
                m.cpu_experts().to_string(),
                (m.demand_transfers() + m.prefetches()).to_string(),
            ]);
        }
    }
    println!("{table}");
    println!("Per-token cost falls with batch size for both systems, but HybriMoE");
    println!("converts the growing loads into transfers the fixed mapping cannot use.");
}
