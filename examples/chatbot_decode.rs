//! Chatbot serving scenario: a multi-turn conversation decoded token by
//! token on an edge box (the paper's motivating workload). Prompts are
//! sampled from the ChatGPT-Prompts length distribution, each answer is
//! decoded for a fixed budget, and the report shows TTFT + per-token
//! latency per turn for HybriMoE vs the strongest baseline.
//!
//! ```text
//! cargo run -p hybrimoe-examples --release --bin chatbot_decode
//! ```

use hybrimoe::report::Table;
use hybrimoe::{Engine, EngineConfig, Framework};
use hybrimoe_model::ModelConfig;
use hybrimoe_trace::{Dataset, TraceGenerator};

const TURNS: usize = 3;
const ANSWER_TOKENS: usize = 24;
const CACHE_RATIO: f64 = 0.25;

fn main() {
    let model = ModelConfig::qwen2();
    let prompts = Dataset::ChatGptPrompts.sample_lengths(TURNS, 7);
    println!(
        "Chatbot on {} @ {:.0}% cache — {} turns from {}\n",
        model.name,
        CACHE_RATIO * 100.0,
        TURNS,
        Dataset::ChatGptPrompts
    );

    let mut table = Table::new(vec![
        "turn".into(),
        "prompt".into(),
        "framework".into(),
        "TTFT".into(),
        "ms/token".into(),
        "hit rate".into(),
    ]);

    for framework in [Framework::KTransformers, Framework::HybriMoe] {
        // One persistent engine per framework: the cache stays warm across
        // turns, exactly like a long-lived serving process.
        let mut engine = Engine::new(EngineConfig::preset(framework, model.clone(), CACHE_RATIO));
        for (turn, prompt_len) in prompts.iter().enumerate() {
            let seed = 1000 + turn as u64;
            let prefill = TraceGenerator::new(model.clone(), seed).prefill_trace(*prompt_len);
            let decode = TraceGenerator::new(model.clone(), seed ^ 0xD).decode_trace(ANSWER_TOKENS);
            let p = engine.run(&prefill);
            let d = engine.run(&decode);
            table.push_row(vec![
                (turn + 1).to_string(),
                format!("{prompt_len} tok"),
                framework.to_string(),
                format!("{:.0} ms", p.ttft().as_millis_f64()),
                format!("{:.1}", d.mean_step_latency().as_millis_f64()),
                format!("{:.0}%", d.hit_rate() * 100.0),
            ]);
        }
    }
    println!("{table}");
    println!("HybriMoE keeps both first-token and inter-token latency lower while the");
    println!("cache adapts to each turn's routing distribution.");
}
