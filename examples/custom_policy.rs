//! Extending HybriMoE with a custom cache replacement policy.
//!
//! The `CachePolicy` trait is the extension point: implement it, hand it to
//! an `ExpertCache`, and compare hit rates against the built-in policies on
//! the same trace. The example policy is "score-weighted LRU": recency
//! aged by the router-score mass each expert accumulated.
//!
//! ```text
//! cargo run -p hybrimoe-examples --release --bin custom_policy
//! ```

use std::collections::HashMap;

use hybrimoe::report::Table;
use hybrimoe_cache::{CachePolicy, ExpertCache, Lru, Mrs};
use hybrimoe_model::{ExpertKey, LayerRouting, ModelConfig};
use hybrimoe_trace::{ActivationTrace, TraceGenerator};

/// LRU whose timestamps are advanced further for experts with high recent
/// router scores, making them look "fresher" than raw recency.
#[derive(Debug, Default)]
struct ScoreWeightedLru {
    last_access: HashMap<ExpertKey, f64>,
    clock: f64,
}

impl CachePolicy for ScoreWeightedLru {
    fn name(&self) -> &str {
        "score-weighted-lru"
    }

    fn on_routing(&mut self, routing: &LayerRouting, _activated_k: u16) {
        // Scores push an expert's effective timestamp forward in time.
        for (i, s) in routing.mean_scores().iter().enumerate() {
            let key = ExpertKey::new(routing.layer(), hybrimoe_model::ExpertId(i as u16));
            if let Some(t) = self.last_access.get_mut(&key) {
                *t += 64.0 * *s as f64;
            }
        }
    }

    fn on_access(&mut self, key: ExpertKey, _now: u64) {
        self.clock += 1.0;
        self.last_access.insert(key, self.clock);
    }

    fn on_insert(&mut self, key: ExpertKey, _now: u64) {
        self.clock += 1.0;
        self.last_access.insert(key, self.clock);
    }

    fn on_evict(&mut self, key: ExpertKey) {
        self.last_access.remove(&key);
    }

    fn choose_victim(&mut self, candidates: &[ExpertKey]) -> Option<ExpertKey> {
        candidates.iter().copied().min_by(|a, b| {
            let ta = self.last_access.get(a).copied().unwrap_or(0.0);
            let tb = self.last_access.get(b).copied().unwrap_or(0.0);
            ta.partial_cmp(&tb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(b))
        })
    }
}

/// Replays a decode trace through a cache and reports its hit rate.
fn measure(trace: &ActivationTrace, model: &ModelConfig, policy: Box<dyn CachePolicy>) -> f64 {
    let mut cache = ExpertCache::new(model.cache_capacity_for_ratio(0.3), policy);
    let warmup = trace.steps.len() / 4;
    for (i, step) in trace.steps.iter().enumerate() {
        if i == warmup {
            cache.reset_stats();
        }
        for rec in &step.layers {
            cache.note_routing(&rec.routing, model.activated_experts);
            for (expert, _) in rec.routing.activated() {
                let key = ExpertKey::new(rec.routing.layer(), expert);
                if !cache.lookup(key) {
                    cache.insert(key);
                }
            }
        }
    }
    cache.stats().hit_rate()
}

fn main() {
    let model = ModelConfig::deepseek();
    let trace = TraceGenerator::new(model.clone(), 11).decode_trace(192);
    println!(
        "Cache policy comparison on {} (30% capacity, 192 decode steps)\n",
        model.name
    );
    let mut table = Table::new(vec!["policy".into(), "hit rate".into()]);
    let policies: Vec<Box<dyn CachePolicy>> = vec![
        Box::new(Lru::new()),
        Box::new(Mrs::new(0.3)),
        Box::new(ScoreWeightedLru::default()),
    ];
    for policy in policies {
        let name = policy.name().to_owned();
        let rate = measure(&trace, &model, policy);
        table.push_row(vec![name, format!("{:.1}%", rate * 100.0)]);
    }
    println!("{table}");
    println!("Any policy implementing `CachePolicy` plugs into the same cache and");
    println!("engine — see hybrimoe_cache::CachePolicy for the contract.");
}
