//! Distributed expert workers end to end: spawn real `hybrimoe_worker`
//! processes, run an engine on the `RemoteWorkers` backend so every
//! expert batch travels over the framed wire protocol, verify the
//! decoded outputs are bit-identical to fully-local execution, then kill
//! a worker mid-run and watch the engine fail over to local kernels
//! without dropping a step.
//!
//! ```text
//! cargo run -p hybrimoe --release --example distributed_workers
//! ```
//!
//! The worker binary is located next to this example under the cargo
//! target directory; if it has not been built (`cargo build -p
//! hybrimoe_worker`), the example falls back to in-thread workers behind
//! the same codec.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use hybrimoe::realexec::RealExecOptions;
use hybrimoe::remote::RemoteWorkerOptions;
use hybrimoe::{Engine, EngineConfig, Framework};
use hybrimoe_kernels::KernelBackendKind;
use hybrimoe_model::ModelConfig;
use hybrimoe_trace::TraceGenerator;
use hybrimoe_worker::{Endpoint, WorkerHandle, WorkerServer, WorkerServerOptions};

/// A worker that is either a real child process or an in-thread server
/// (when the worker binary is not built).
enum Worker {
    Process(Child),
    Thread(Option<WorkerHandle>),
}

impl Worker {
    fn kill(&mut self) {
        match self {
            Worker::Process(child) => {
                let _ = child.kill();
                let _ = child.wait();
            }
            Worker::Thread(handle) => {
                if let Some(handle) = handle.take() {
                    handle.shutdown();
                }
            }
        }
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        self.kill();
    }
}

/// `target/<profile>/hybrimoe_worker`, resolved relative to this example
/// (`target/<profile>/examples/distributed_workers`).
fn worker_binary() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let bin = exe.parent()?.parent()?.join("hybrimoe_worker");
    bin.is_file().then_some(bin)
}

/// Spawns one worker and returns it with its resolved endpoint.
fn spawn_worker(binary: Option<&PathBuf>) -> (Worker, String) {
    if let Some(binary) = binary {
        let mut child = Command::new(binary)
            .args(["--listen", "127.0.0.1:0", "--threads", "1"])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn hybrimoe_worker");
        // The worker prints `listening on <endpoint>` once bound.
        let stdout = child.stdout.take().expect("worker stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read worker banner");
        let endpoint = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected worker banner: {line:?}"))
            .to_owned();
        (Worker::Process(child), endpoint)
    } else {
        let handle = WorkerServer::bind(
            &Endpoint::parse("127.0.0.1:0"),
            WorkerServerOptions::default(),
        )
        .expect("bind in-thread worker")
        .spawn();
        let endpoint = handle.endpoint().to_string();
        (Worker::Thread(Some(handle)), endpoint)
    }
}

fn main() {
    let model = ModelConfig::tiny_test();
    let steps = 8;
    let binary = worker_binary();
    match &binary {
        Some(bin) => println!("worker binary: {}", bin.display()),
        None => println!("worker binary not built; using in-thread workers"),
    }

    let mut workers = Vec::new();
    let mut endpoints = Vec::new();
    for _ in 0..2 {
        let (worker, endpoint) = spawn_worker(binary.as_ref());
        println!("worker up at {endpoint}");
        workers.push(worker);
        endpoints.push(endpoint);
    }

    // Pin the scalar kernels on both sides so remote and local results
    // are comparable bit for bit.
    let exec = RealExecOptions {
        max_threads: 1,
        kernel_backend: KernelBackendKind::Scalar,
        ..Default::default()
    };
    let base = EngineConfig::preset(Framework::KTransformers, model.clone(), 0.25)
        .with_real_exec(exec)
        .with_max_inflight(0);
    let remote_config = base.clone().with_remote_workers(RemoteWorkerOptions {
        endpoints,
        ..Default::default()
    });
    let local_config = base.with_remote_workers(RemoteWorkerOptions::default());

    let trace = TraceGenerator::new(model, 42)
        .with_token_states()
        .decode_trace(steps);

    // Reference: the same backend with no workers runs everything on the
    // local fallback path.
    let mut local = Engine::new(local_config);
    let mut reference = Vec::new();
    for step in &trace.steps {
        local.step(step);
        reference.push(local.take_real_outputs());
    }

    let mut engine = Engine::new(remote_config);
    println!("\nstep | remote requests | failovers | workers up | identical");
    let mut all_identical = true;
    for (i, step) in trace.steps.iter().enumerate() {
        // Kill worker 0 halfway through: its experts fail over to local
        // execution and the stream keeps going.
        if i == steps / 2 {
            workers[0].kill();
            println!("    -- killed worker 0 --");
        }
        engine.step(step);
        let outputs = engine.take_real_outputs();
        let identical = outputs
            .iter()
            .zip(reference[i].iter())
            .all(|(a, b)| a.output == b.output);
        all_identical &= identical;
        let health = engine.worker_health().expect("remote backend has health");
        println!(
            "{i:>4} | {:>15} | {:>9} | {:>10} | {}",
            health.requests, health.failovers, health.up, identical
        );
    }

    let health = engine.worker_health().expect("remote backend has health");
    assert!(all_identical, "remote outputs diverged from local");
    assert!(health.requests > 0, "no batch ever ran remotely");
    assert!(health.failovers > 0, "killing a worker should fail over");
    println!(
        "\nall {} steps bit-identical to local execution; \
         {} remote batches, {} failovers after the kill",
        steps, health.requests, health.failovers
    );
}
