//! Prefill latency sweep: how TTFT scales with prompt length for all four
//! frameworks on Mixtral — a minimal version of the paper's Fig. 7 that a
//! user can adapt to their own model and platform.
//!
//! ```text
//! cargo run -p hybrimoe-examples --release --bin prefill_sweep
//! ```

use hybrimoe::report::Table;
use hybrimoe::{Engine, EngineConfig, Framework};
use hybrimoe_hw::Platform;
use hybrimoe_model::ModelConfig;
use hybrimoe_trace::TraceGenerator;

fn main() {
    let model = ModelConfig::mixtral();
    let cache_ratio = 0.5;
    let lengths = [16u32, 64, 256, 768];

    for platform in [Platform::a6000_xeon10(), Platform::rtx4060_laptop()] {
        println!(
            "prefill TTFT (s) on {} — {} @ {:.0}% cache",
            platform.name,
            model.name,
            cache_ratio * 100.0
        );
        let mut table = Table::new(
            std::iter::once("framework".to_owned())
                .chain(lengths.iter().map(|l| format!("{l} tok")))
                .collect(),
        );
        for framework in Framework::ALL {
            let mut row = vec![framework.to_string()];
            for len in lengths {
                let trace = TraceGenerator::new(model.clone(), 99).prefill_trace(len);
                let config = EngineConfig::preset(framework, model.clone(), cache_ratio)
                    .with_platform(platform.clone());
                let metrics = Engine::new(config).run(&trace);
                row.push(format!("{:.3}", metrics.ttft().as_secs_f64()));
            }
            table.push_row(row);
        }
        println!("{table}");
    }
    println!("note: the weaker laptop PCIe link widens HybriMoE's advantage — CPU");
    println!("compute substitutes for the scarcer transfer bandwidth.");
}
