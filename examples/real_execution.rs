//! Real execution end to end: run a tiny model on the `RealCpuBackend`,
//! where every scheduled expert partition is actually computed with the
//! quantized CPU kernels, then close the calibration loop — the measured
//! wall-clock grounds the simulator's CPU constants, and the re-grounded
//! simulator predicts the same workload's CPU time.
//!
//! ```text
//! cargo run -p hybrimoe --release --example real_execution
//! ```

use hybrimoe::realexec::RealExecOptions;
use hybrimoe::{BackendKind, Engine, EngineConfig, Framework};
use hybrimoe_hw::Device;
use hybrimoe_model::ModelConfig;
use hybrimoe_trace::TraceGenerator;

fn main() {
    let model = ModelConfig::tiny_test();
    let steps = 8;
    // Fixed expert mapping (uncached -> CPU) guarantees CPU kernel work on
    // a model this small, and keeps the schedule independent of the cost
    // model so the before/after-calibration comparison is apples to apples.
    let config = EngineConfig::preset(Framework::KTransformers, model.clone(), 0.25)
        .with_backend(BackendKind::RealCpu)
        .with_real_exec(RealExecOptions {
            max_threads: 1,
            ..Default::default()
        })
        .with_max_inflight(0);

    println!(
        "Real CPU execution — {} | {} decode steps, backend `{}`\n",
        model.name,
        steps,
        config.backend.build(&config).name()
    );

    // The trace must carry per-token hidden states for real execution.
    let trace = TraceGenerator::new(model.clone(), 42)
        .with_token_states()
        .decode_trace(steps);

    let mut engine = Engine::new(config.clone());
    let mut checksum = 0.0f64;
    println!("step |  cpu wall |  gpu wall | cpu experts | gpu experts");
    for (i, step) in trace.steps.iter().enumerate() {
        let metrics = engine.step(step);
        let outputs = engine.take_real_outputs();
        for layer in &outputs {
            checksum += layer.output.iter().map(|v| *v as f64).sum::<f64>();
        }
        println!(
            "{i:>4} | {:>7.1}µs | {:>7.1}µs | {:>11} | {:>11}",
            metrics.busy(Device::Cpu).as_micros_f64(),
            metrics.busy(Device::gpu(0)).as_micros_f64(),
            metrics.cpu_experts,
            metrics.gpu_experts,
        );
    }
    println!("\noutput checksum over all layers: {checksum:+.6}");

    // Close the loop: measured kernels -> calibration -> simulator.
    let calibration = engine
        .backend_calibration()
        .expect("the run executed CPU experts");
    println!(
        "\nmeasured calibration: {:.2} GFLOP/s, {:.2} GB/s over {} CPU tasks",
        calibration.cpu_gflops, calibration.cpu_mem_bw_gbps, calibration.samples
    );

    let calibrated = config
        .clone()
        .with_platform(config.platform.with_calibration(&calibration));
    let cpu_secs = |m: &hybrimoe::StageMetrics| -> f64 {
        m.steps
            .iter()
            .map(|s| s.busy(Device::Cpu).as_secs_f64())
            .sum()
    };
    let predicted = Engine::new(calibrated.clone().with_backend(BackendKind::Sim)).run(&trace);
    let sim_s = cpu_secs(&predicted);

    // Wall-clock on microsecond-scale kernels can be perturbed by a noisy
    // host, so a transient miss gets one fresh re-measurement before the
    // smoke check fails.
    let mut ratio = f64::NAN;
    for attempt in 0..2 {
        let measured = Engine::new(calibrated.clone()).run(&trace);
        let real_s = cpu_secs(&measured);
        ratio = sim_s / real_s;
        println!(
            "calibrated simulator: predicted CPU {:.3} ms vs measured {:.3} ms (ratio {:.2})",
            sim_s * 1e3,
            real_s * 1e3,
            ratio
        );
        if (0.5..=2.0).contains(&ratio) {
            break;
        }
        if attempt == 0 {
            println!("ratio outside bounds, re-measuring once...");
        }
    }
    assert!(
        (0.5..=2.0).contains(&ratio),
        "calibrated prediction drifted from measurement (ratio {ratio:.2})"
    );
    println!("done: real execution and calibration feedback agree.");
}
