//! Serving reports: per-request detail plus aggregate percentiles.

use hybrimoe_hw::SimDuration;
use serde::{Deserialize, Serialize};

use crate::serve::{RequestMetrics, ServeConfig, StepStat};

/// The full outcome of one serving experiment: experiment identity,
/// per-request metrics, and the per-step batch trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Model name.
    pub model: String,
    /// Cache ratio of the engine under test.
    pub cache_ratio: f64,
    /// GPU shards of the engine under test.
    pub num_gpus: usize,
    /// Continuous-batch bound.
    pub max_batch: usize,
    /// Arrival process name (`"deterministic"` or `"poisson"`).
    pub arrivals: String,
    /// Mean inter-arrival gap (quantized to whole nanoseconds).
    pub mean_interarrival: SimDuration,
    /// The *requested* arrival rate in requests per second — carried from
    /// the [`ArrivalProcess`](crate::serve::ArrivalProcess) rather than
    /// recomputed from the quantized gap, so rates that do not divide 1e9
    /// (e.g. 3.0) round-trip exactly into gate keys.
    pub arrival_rate_per_sec: f64,
    /// Experiment seed.
    pub seed: u64,
    /// Per-request metrics, ascending by request id.
    pub requests: Vec<RequestMetrics>,
    /// Per-engine-step batch statistics, in execution order.
    pub steps: Vec<StepStat>,
    /// Time from the clock origin to the last completion. Includes any
    /// idle gap before the first arrival (Poisson draws a random first
    /// gap), so throughputs derived from it measure the whole experiment
    /// wall clock; comparisons across frameworks stay fair because the
    /// arrival schedule is shared.
    pub makespan: SimDuration,
}

impl ServeReport {
    /// Assembles a report (requests must already be sorted by id).
    pub(crate) fn new(
        config: &ServeConfig,
        requests: Vec<RequestMetrics>,
        steps: Vec<StepStat>,
        makespan: SimDuration,
    ) -> ServeReport {
        ServeReport {
            model: config.engine.model.name.clone(),
            cache_ratio: config.engine.cache_ratio,
            num_gpus: config.engine.num_gpus.max(1),
            max_batch: config.max_batch,
            arrivals: config.arrivals.name().to_owned(),
            mean_interarrival: config.arrivals.mean_interval(),
            arrival_rate_per_sec: config.arrivals.rate_per_sec(),
            seed: config.seed,
            requests,
            steps,
            makespan,
        }
    }

    /// Aggregates the per-request metrics into a summary.
    pub fn summary(&self) -> ServeSummary {
        let makespan_s = self.makespan.as_secs_f64();
        let output_tokens: u64 = self.requests.iter().map(|r| r.decode_tokens as u64).sum();
        let prompt_tokens: u64 = self.requests.iter().map(|r| r.prompt_tokens as u64).sum();
        let batch_steps: u64 = self.steps.iter().map(|s| s.batch as u64).sum();
        ServeSummary {
            model: self.model.clone(),
            cache_ratio: self.cache_ratio,
            num_gpus: self.num_gpus,
            max_batch: self.max_batch,
            arrivals: self.arrivals.clone(),
            arrival_rate_per_sec: self.arrival_rate_per_sec,
            requests: self.requests.len() as u64,
            engine_steps: self.steps.len() as u64,
            makespan_ms: self.makespan.as_millis_f64(),
            prompt_tokens,
            output_tokens,
            output_tokens_per_sec: per_second(output_tokens, makespan_s),
            requests_per_sec: per_second(self.requests.len() as u64, makespan_s),
            mean_batch: if self.steps.is_empty() {
                0.0
            } else {
                batch_steps as f64 / self.steps.len() as f64
            },
            queue_wait_p50_ms: self.percentile_ms(RequestMetrics::queue_wait, 50.0),
            queue_wait_p99_ms: self.percentile_ms(RequestMetrics::queue_wait, 99.0),
            ttft_p50_ms: self.percentile_ms(RequestMetrics::ttft, 50.0),
            ttft_p99_ms: self.percentile_ms(RequestMetrics::ttft, 99.0),
            tpot_p50_ms: self.percentile_ms(RequestMetrics::tpot, 50.0),
            tpot_p99_ms: self.percentile_ms(RequestMetrics::tpot, 99.0),
            latency_p50_ms: self.percentile_ms(RequestMetrics::latency, 50.0),
            latency_p99_ms: self.percentile_ms(RequestMetrics::latency, 99.0),
        }
    }

    /// A percentile over a per-request duration, in milliseconds.
    fn percentile_ms(&self, metric: impl Fn(&RequestMetrics) -> SimDuration, p: f64) -> f64 {
        let mut values: Vec<SimDuration> = self.requests.iter().map(metric).collect();
        values.sort_unstable();
        percentile(&values, p).as_millis_f64()
    }
}

/// Aggregate serving metrics, flat and JSON-friendly: one row per
/// experiment in a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeSummary {
    /// Model name.
    pub model: String,
    /// Cache ratio.
    pub cache_ratio: f64,
    /// GPU shards.
    pub num_gpus: usize,
    /// Continuous-batch bound.
    pub max_batch: usize,
    /// Arrival process name.
    pub arrivals: String,
    /// Mean arrival rate in requests per second.
    pub arrival_rate_per_sec: f64,
    /// Requests served.
    pub requests: u64,
    /// Engine steps taken.
    pub engine_steps: u64,
    /// Wall time of the experiment on the simulated clock, in ms.
    pub makespan_ms: f64,
    /// Total prompt tokens prefilled.
    pub prompt_tokens: u64,
    /// Total output tokens decoded.
    pub output_tokens: u64,
    /// Aggregate decode throughput (output tokens per second).
    pub output_tokens_per_sec: f64,
    /// Aggregate request throughput (requests per second).
    pub requests_per_sec: f64,
    /// Mean batch size across engine steps.
    pub mean_batch: f64,
    /// Median time spent waiting for a batch slot, ms.
    pub queue_wait_p50_ms: f64,
    /// 99th-percentile queue wait, ms.
    pub queue_wait_p99_ms: f64,
    /// Median time to first token, ms.
    pub ttft_p50_ms: f64,
    /// 99th-percentile time to first token, ms.
    pub ttft_p99_ms: f64,
    /// Median time per output token, ms.
    pub tpot_p50_ms: f64,
    /// 99th-percentile time per output token, ms.
    pub tpot_p99_ms: f64,
    /// Median end-to-end request latency, ms.
    pub latency_p50_ms: f64,
    /// 99th-percentile end-to-end request latency, ms.
    pub latency_p99_ms: f64,
}

/// Nearest-rank percentile of an ascending-sorted slice; zero for empty
/// input.
pub fn percentile(sorted: &[SimDuration], p: f64) -> SimDuration {
    if sorted.is_empty() {
        return SimDuration::ZERO;
    }
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn per_second(count: u64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        0.0
    } else {
        count as f64 / seconds
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<SimDuration> = (1..=10).map(us).collect();
        assert_eq!(percentile(&v, 50.0), us(5));
        assert_eq!(percentile(&v, 99.0), us(10));
        assert_eq!(percentile(&v, 100.0), us(10));
        assert_eq!(percentile(&v, 0.0), us(1));
        assert_eq!(percentile(&[], 50.0), SimDuration::ZERO);
        assert_eq!(percentile(&[us(3)], 99.0), us(3));
    }

    #[test]
    fn summary_of_a_small_run_is_consistent() {
        use crate::serve::{ArrivalProcess, ServeConfig, ServeSim};
        use crate::{EngineConfig, Framework};
        use hybrimoe_model::ModelConfig;

        let report = ServeSim::new(ServeConfig {
            engine: EngineConfig::preset(Framework::HybriMoe, ModelConfig::tiny_test(), 0.5),
            arrivals: ArrivalProcess::deterministic(SimDuration::from_millis(2)),
            requests: 4,
            prompt_tokens: 8,
            decode_tokens: 3,
            max_batch: 2,
            seed: 11,
        })
        .run();
        let s = report.summary();
        assert_eq!(s.requests, 4);
        assert_eq!(s.num_gpus, 1);
        assert_eq!(s.output_tokens, 12);
        assert_eq!(s.prompt_tokens, 32);
        assert!(s.output_tokens_per_sec > 0.0);
        assert!(s.ttft_p99_ms >= s.ttft_p50_ms);
        assert!(s.latency_p99_ms >= s.latency_p50_ms);
        assert!(s.queue_wait_p99_ms >= s.queue_wait_p50_ms);
        assert_eq!(s.arrival_rate_per_sec, 500.0);
        assert!(s.mean_batch >= 1.0 && s.mean_batch <= 2.0);
        // The summary serializes to JSON for sweep output.
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("output_tokens_per_sec"));
    }
}
