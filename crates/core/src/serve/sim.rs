//! The continuous-batching simulation loop.

use std::collections::VecDeque;

use hybrimoe_hw::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::serve::request::DEFAULT_PRIORITY;
use crate::serve::{ArrivalProcess, ContinuousBatcher, RequestMetrics, RequestSpec, ServeReport};
use crate::{EngineConfig, PrefetchCounters};

/// Configuration of one serving experiment.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The engine (framework preset, model, cache ratio) under test.
    pub engine: EngineConfig,
    /// The request arrival process.
    pub arrivals: ArrivalProcess,
    /// Number of requests to serve.
    pub requests: usize,
    /// Prompt length of every request, in tokens.
    pub prompt_tokens: u32,
    /// Output length of every request, in tokens.
    pub decode_tokens: u32,
    /// Maximum concurrently running requests (the continuous batch bound).
    pub max_batch: usize,
    /// Seed driving arrivals and per-request traces.
    pub seed: u64,
}

/// What one engine step of the serving loop looked like.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepStat {
    /// When the step started.
    pub start: SimTime,
    /// Requests in the batch (decoding plus newly admitted).
    pub batch: u32,
    /// Newly admitted requests whose prefill merged into this step.
    pub prefills: u32,
    /// Tokens in the merged forward pass.
    pub tokens: u32,
    /// Step latency.
    pub latency: SimDuration,
}

/// Engine-side observability captured when a serve run completes: the
/// cache and prefetch view the aggregate [`ServeReport`] cannot express.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeEngineStats {
    /// Expert-cache hit ratio aggregated over every shard, post-warmup.
    pub cache_hit_ratio: f64,
    /// Per-shard cache hit ratios, indexed by GPU shard.
    pub shard_hit_ratios: Vec<f64>,
    /// Background-transfer counters (issued / landed / wasted prefetches).
    pub prefetch: PrefetchCounters,
    /// Rolling top-k accuracy of the learned expert predictor, if the
    /// engine runs one ([`PrefetcherKind::Predictive`](crate::PrefetcherKind)).
    pub predictor_accuracy: Option<f64>,
}

/// A deterministic continuous-batching server simulation.
///
/// The simulation drives the same [`ContinuousBatcher`] core as the live
/// [`serve::server`](crate::serve::server), but closed-loop: arrivals come
/// from a seeded [`ArrivalProcess`] and the clock advances by each step's
/// modeled latency. Requests whose arrival time has passed enter the
/// waiting queue, the batcher admits them as slots free up, and requests
/// leave as soon as their output length is reached — no request waits for
/// an epoch boundary.
///
/// See the [module docs](crate::serve) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct ServeSim {
    config: ServeConfig,
}

impl ServeSim {
    /// Creates a simulation.
    ///
    /// # Panics
    ///
    /// Panics if `requests` is zero, or if `max_batch` is invalid (zero or
    /// large enough to misclassify pure-decode batches as prefill — see
    /// [`ContinuousBatcher::new`]).
    pub fn new(config: ServeConfig) -> ServeSim {
        assert!(config.max_batch > 0, "max_batch must be at least 1");
        assert!(
            (config.max_batch as u32) < hybrimoe_sched::baselines::PREFILL_BATCH_THRESHOLD,
            "max_batch {} would make pure-decode batches look like prefill (threshold {})",
            config.max_batch,
            hybrimoe_sched::baselines::PREFILL_BATCH_THRESHOLD
        );
        assert!(config.requests > 0, "must serve at least one request");
        ServeSim { config }
    }

    /// The simulation configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Runs the simulation to completion and returns the report.
    pub fn run(&self) -> ServeReport {
        self.run_instrumented().0
    }

    /// Runs the simulation and additionally returns the engine-side cache
    /// and prefetch snapshot taken at completion — the instrumentation the
    /// prefetch benchmark sweeps read.
    pub fn run_instrumented(&self) -> (ServeReport, ServeEngineStats) {
        let cfg = &self.config;
        let mut batcher = ContinuousBatcher::new(cfg.engine.clone(), cfg.max_batch, cfg.seed);

        let mut pending: VecDeque<RequestSpec> = cfg
            .arrivals
            .schedule(cfg.requests, cfg.seed)
            .into_iter()
            .enumerate()
            .map(|(i, arrival)| RequestSpec {
                id: i as u32,
                arrival,
                prompt_tokens: cfg.prompt_tokens,
                decode_tokens: cfg.decode_tokens,
                priority: DEFAULT_PRIORITY,
                deadline: None,
            })
            .collect();
        let mut completed: Vec<RequestMetrics> = Vec::new();
        let mut steps: Vec<StepStat> = Vec::new();
        let mut now = SimTime::ZERO;

        while completed.len() < cfg.requests {
            // Join: arrivals up to the current clock enter the queue.
            while pending.front().is_some_and(|s| s.arrival <= now) {
                batcher.enqueue(pending.pop_front().expect("front checked"));
            }
            if batcher.is_idle() {
                // Idle: jump to the next arrival.
                now = pending.front().expect("requests remain").arrival;
                continue;
            }

            let outcome = batcher.step(now, |latency| now + latency);
            now = outcome.end;
            steps.push(outcome.stat);
            completed.extend(outcome.completed);
        }

        completed.sort_by_key(|m| m.id);
        let engine = batcher.engine();
        let stats = ServeEngineStats {
            cache_hit_ratio: engine.cache().stats().hit_rate(),
            shard_hit_ratios: engine.shard_hit_ratios(),
            prefetch: engine.prefetch_counters(),
            predictor_accuracy: engine.predictor_accuracy(),
        };
        let report = ServeReport::new(cfg, completed, steps, now.elapsed_since(SimTime::ZERO));
        (report, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Framework;
    use hybrimoe_model::ModelConfig;

    fn tiny_sim(max_batch: usize, requests: usize) -> ServeSim {
        ServeSim::new(ServeConfig {
            engine: EngineConfig::preset(Framework::HybriMoe, ModelConfig::tiny_test(), 0.5),
            arrivals: ArrivalProcess::deterministic(SimDuration::from_millis(1)),
            requests,
            prompt_tokens: 8,
            decode_tokens: 4,
            max_batch,
            seed: 7,
        })
    }

    #[test]
    fn every_request_completes_with_ordered_timestamps() {
        let report = tiny_sim(3, 6).run();
        assert_eq!(report.requests.len(), 6);
        for m in &report.requests {
            assert!(m.admitted >= m.arrival);
            assert!(m.first_token >= m.admitted);
            assert!(m.completion >= m.first_token);
            assert_eq!(m.decode_tokens, 4);
        }
        // Requests are reported in id order.
        let ids: Vec<u32> = report.requests.iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn batch_bound_is_respected() {
        let report = tiny_sim(2, 8).run();
        assert!(report.steps.iter().all(|s| s.batch <= 2));
        // With arrivals faster than decoding, the batch should actually
        // fill up at some point.
        assert!(report.steps.iter().any(|s| s.batch == 2));
    }

    #[test]
    fn serial_server_matches_sequential_sessions_shape() {
        // max_batch = 1 degenerates into one request at a time.
        let report = tiny_sim(1, 3).run();
        assert!(report.steps.iter().all(|s| s.batch == 1));
        // Each request needs 1 prefill + 4 decode steps.
        assert_eq!(report.steps.len(), 3 * 5);
    }

    #[test]
    fn zero_decode_requests_finish_at_prefill() {
        let mut sim = tiny_sim(2, 2);
        sim.config.decode_tokens = 0;
        let report = ServeSim::new(sim.config().clone()).run();
        for m in &report.requests {
            assert_eq!(m.completion, m.first_token);
            assert_eq!(m.tpot(), SimDuration::ZERO);
        }
    }

    #[test]
    fn same_seed_same_report() {
        let a = tiny_sim(3, 5).run();
        let b = tiny_sim(3, 5).run();
        assert_eq!(a, b);
    }

    #[test]
    fn queue_wait_is_charged_to_ttft() {
        // One slot, back-to-back arrivals: later requests wait in the
        // queue, and that wait must show up in both queue_wait and TTFT.
        let report = tiny_sim(1, 3).run();
        let last = &report.requests[2];
        assert!(last.queue_wait() > SimDuration::ZERO);
        assert!(last.ttft() >= last.queue_wait());
        assert_eq!(
            last.ttft(),
            last.queue_wait() + last.first_token.elapsed_since(last.admitted)
        );
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_batch_rejected() {
        let mut cfg = tiny_sim(1, 1).config().clone();
        cfg.max_batch = 0;
        let _ = ServeSim::new(cfg);
    }
}
