//! The continuous-batching simulation loop.

use std::collections::VecDeque;

use hybrimoe_hw::{SimDuration, SimTime};
use hybrimoe_trace::{TraceGenerator, TraceStep};
use serde::{Deserialize, Serialize};

use crate::serve::request::ActiveRequest;
use crate::serve::{ArrivalProcess, RequestMetrics, RequestSpec, ServeReport};
use crate::{Engine, EngineConfig};

/// Configuration of one serving experiment.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The engine (framework preset, model, cache ratio) under test.
    pub engine: EngineConfig,
    /// The request arrival process.
    pub arrivals: ArrivalProcess,
    /// Number of requests to serve.
    pub requests: usize,
    /// Prompt length of every request, in tokens.
    pub prompt_tokens: u32,
    /// Output length of every request, in tokens.
    pub decode_tokens: u32,
    /// Maximum concurrently running requests (the continuous batch bound).
    pub max_batch: usize,
    /// Seed driving arrivals and per-request traces.
    pub seed: u64,
}

/// What one engine step of the serving loop looked like.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepStat {
    /// When the step started.
    pub start: SimTime,
    /// Requests in the batch (decoding plus newly admitted).
    pub batch: u32,
    /// Newly admitted requests whose prefill merged into this step.
    pub prefills: u32,
    /// Tokens in the merged forward pass.
    pub tokens: u32,
    /// Step latency.
    pub latency: SimDuration,
}

/// A deterministic continuous-batching server simulation.
///
/// Each iteration of the loop is one engine step: requests whose arrival
/// time has passed join the batch (their prefill pass merges in), every
/// running request contributes its next decode token, the merged pass runs
/// through [`Engine::step`], and the clock advances by the step latency.
/// Requests leave as soon as their output length is reached, freeing batch
/// slots for the next arrivals — no request waits for an epoch boundary.
///
/// See the [module docs](crate::serve) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct ServeSim {
    config: ServeConfig,
}

impl ServeSim {
    /// Creates a simulation.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` or `requests` is zero, or if `max_batch`
    /// reaches [`PREFILL_BATCH_THRESHOLD`]: the engine and the schedulers
    /// classify the prefill/decode regime of a forward pass by its token
    /// count, so a pure-decode batch that large would be misclassified as
    /// prefill and silently disable decode-time cache adaptation.
    ///
    /// [`PREFILL_BATCH_THRESHOLD`]: hybrimoe_sched::baselines::PREFILL_BATCH_THRESHOLD
    pub fn new(config: ServeConfig) -> ServeSim {
        assert!(config.max_batch > 0, "max_batch must be at least 1");
        assert!(
            (config.max_batch as u32) < hybrimoe_sched::baselines::PREFILL_BATCH_THRESHOLD,
            "max_batch {} would make pure-decode batches look like prefill (threshold {})",
            config.max_batch,
            hybrimoe_sched::baselines::PREFILL_BATCH_THRESHOLD
        );
        assert!(config.requests > 0, "must serve at least one request");
        ServeSim { config }
    }

    /// The simulation configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Runs the simulation to completion and returns the report.
    pub fn run(&self) -> ServeReport {
        let cfg = &self.config;
        let mut engine = Engine::new(cfg.engine.clone());

        let mut pending: VecDeque<RequestSpec> = cfg
            .arrivals
            .schedule(cfg.requests, cfg.seed)
            .into_iter()
            .enumerate()
            .map(|(i, arrival)| RequestSpec {
                id: i as u32,
                arrival,
                prompt_tokens: cfg.prompt_tokens,
                decode_tokens: cfg.decode_tokens,
            })
            .collect();
        let mut waiting: VecDeque<RequestSpec> = VecDeque::new();
        let mut running: Vec<ActiveRequest> = Vec::new();
        let mut completed: Vec<RequestMetrics> = Vec::new();
        let mut steps: Vec<StepStat> = Vec::new();
        let mut now = SimTime::ZERO;

        while completed.len() < cfg.requests {
            // Join: arrivals up to the current clock enter the queue.
            while pending.front().is_some_and(|s| s.arrival <= now) {
                waiting.push_back(pending.pop_front().expect("front checked"));
            }
            if running.is_empty() && waiting.is_empty() {
                // Idle: jump to the next arrival.
                now = pending.front().expect("requests remain").arrival;
                continue;
            }

            // Admit waiting requests into free batch slots (FIFO); their
            // prefill passes merge into this step.
            let slots = cfg.max_batch.saturating_sub(running.len());
            let mut admitted: Vec<ActiveRequest> = Vec::new();
            let mut prefill_steps: Vec<TraceStep> = Vec::new();
            for _ in 0..slots {
                let Some(spec) = waiting.pop_front() else {
                    break;
                };
                let mut generator =
                    TraceGenerator::new(cfg.engine.model.clone(), request_seed(cfg.seed, spec.id));
                if cfg.engine.backend.needs_token_states() {
                    // A real-execution backend computes actual layer
                    // outputs, so every request's trace must carry its
                    // hidden states.
                    generator = generator.with_token_states();
                }
                // One router-parameter bundle serves both the prompt and
                // the decode stream of the request.
                let (prefill, stream) = generator.request(spec.prompt_tokens);
                prefill_steps.push(prefill);
                admitted.push(ActiveRequest {
                    spec,
                    stream,
                    first_token: SimTime::ZERO, // set when the step lands
                    decoded: 0,
                });
            }

            // Every running request contributes its next decode token.
            let decode_steps: Vec<TraceStep> =
                running.iter_mut().map(|r| r.stream.next_step()).collect();

            let parts: Vec<&TraceStep> = prefill_steps.iter().chain(decode_steps.iter()).collect();
            let start = now;
            // A single-member batch needs no merge (and no deep clone).
            let (metrics, step_tokens) = if let [single] = parts.as_slice() {
                (engine.step(single), single.tokens)
            } else {
                let merged = TraceStep::merge(&parts);
                (engine.step(&merged), merged.tokens)
            };
            now += metrics.latency;
            steps.push(StepStat {
                start,
                batch: (running.len() + admitted.len()) as u32,
                prefills: admitted.len() as u32,
                tokens: step_tokens,
                latency: metrics.latency,
            });

            // Leave: decoding requests earned one token; admitted requests
            // earned their first. Finished requests exit the batch.
            for r in running.iter_mut() {
                r.decoded += 1;
            }
            for mut r in admitted {
                r.first_token = now;
                if r.spec.decode_tokens == 0 {
                    completed.push(r.finish(now));
                } else {
                    running.push(r);
                }
            }
            let mut i = 0;
            while i < running.len() {
                if running[i].decoded >= running[i].spec.decode_tokens {
                    let done = running.remove(i);
                    completed.push(done.finish(now));
                } else {
                    i += 1;
                }
            }
        }

        completed.sort_by_key(|m| m.id);
        ServeReport::new(cfg, completed, steps, now.elapsed_since(SimTime::ZERO))
    }
}

/// The trace seed of one request: decorrelated from its neighbours but a
/// pure function of the experiment seed and the request id.
fn request_seed(seed: u64, id: u32) -> u64 {
    seed ^ (id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Framework;
    use hybrimoe_model::ModelConfig;

    fn tiny_sim(max_batch: usize, requests: usize) -> ServeSim {
        ServeSim::new(ServeConfig {
            engine: EngineConfig::preset(Framework::HybriMoe, ModelConfig::tiny_test(), 0.5),
            arrivals: ArrivalProcess::Deterministic {
                interval: SimDuration::from_millis(1),
            },
            requests,
            prompt_tokens: 8,
            decode_tokens: 4,
            max_batch,
            seed: 7,
        })
    }

    #[test]
    fn every_request_completes_with_ordered_timestamps() {
        let report = tiny_sim(3, 6).run();
        assert_eq!(report.requests.len(), 6);
        for m in &report.requests {
            assert!(m.first_token >= m.arrival);
            assert!(m.completion >= m.first_token);
            assert_eq!(m.decode_tokens, 4);
        }
        // Requests are reported in id order.
        let ids: Vec<u32> = report.requests.iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn batch_bound_is_respected() {
        let report = tiny_sim(2, 8).run();
        assert!(report.steps.iter().all(|s| s.batch <= 2));
        // With arrivals faster than decoding, the batch should actually
        // fill up at some point.
        assert!(report.steps.iter().any(|s| s.batch == 2));
    }

    #[test]
    fn serial_server_matches_sequential_sessions_shape() {
        // max_batch = 1 degenerates into one request at a time.
        let report = tiny_sim(1, 3).run();
        assert!(report.steps.iter().all(|s| s.batch == 1));
        // Each request needs 1 prefill + 4 decode steps.
        assert_eq!(report.steps.len(), 3 * 5);
    }

    #[test]
    fn zero_decode_requests_finish_at_prefill() {
        let mut sim = tiny_sim(2, 2);
        sim.config.decode_tokens = 0;
        let report = ServeSim::new(sim.config().clone()).run();
        for m in &report.requests {
            assert_eq!(m.completion, m.first_token);
            assert_eq!(m.tpot(), SimDuration::ZERO);
        }
    }

    #[test]
    fn same_seed_same_report() {
        let a = tiny_sim(3, 5).run();
        let b = tiny_sim(3, 5).run();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_batch_rejected() {
        let mut cfg = tiny_sim(1, 1).config().clone();
        cfg.max_batch = 0;
        let _ = ServeSim::new(cfg);
    }
}
