//! The continuous-batching core shared by the simulator and the live
//! server.
//!
//! [`ContinuousBatcher`] owns the engine, the waiting queue and the running
//! batch, and exposes exactly one operation: [`ContinuousBatcher::step`],
//! which admits waiting requests into free batch slots, merges their
//! prefill passes with one decode token from every running request, runs
//! the merged pass through [`Engine::step`](crate::Engine::step), and
//! reports what happened as a [`StepOutcome`].
//!
//! The caller owns the *clock*. [`ServeSim`](crate::serve::ServeSim)
//! advances a simulated clock by each step's modeled latency;
//! [`serve::server`](crate::serve::server) stamps steps with real
//! wall-clock time while the engine loop thread free-runs. Both drive the
//! identical admission/merge/leave logic, so the simulator remains a
//! bit-exact model of the served system.

use std::collections::VecDeque;

use hybrimoe_hw::{SimDuration, SimTime};
use hybrimoe_model::ModelConfig;
use hybrimoe_trace::{TraceGenerator, TraceStep};

use crate::serve::request::ActiveRequest;
use crate::serve::sim::StepStat;
use crate::serve::{RequestMetrics, RequestSpec};
use crate::{Engine, EngineConfig};

/// Everything one engine step of the continuous batch produced.
#[derive(Debug)]
pub struct StepOutcome {
    /// Aggregate step statistics (batch size, merged tokens, latency).
    pub stat: StepStat,
    /// When the step finished: its start plus the engine-reported latency.
    /// Newly admitted requests landed their first token here; running
    /// requests each earned one more.
    pub end: SimTime,
    /// Ids of requests admitted from the waiting queue into this step
    /// (their first prefill chunk merged in).
    pub admitted: Vec<u32>,
    /// Ids of requests whose first token landed at [`StepOutcome::end`] —
    /// the admitting step when prefill is unchunked, or the step that
    /// carried the request's final prefill chunk.
    pub first_tokens: Vec<u32>,
    /// `(id, tokens decoded so far)` for every request that contributed a
    /// decode token to this step — including requests finishing with it.
    pub decoded: Vec<(u32, u32)>,
    /// Requests that completed with this step, in batch order.
    pub completed: Vec<RequestMetrics>,
    /// Ids of waiting requests dropped before admission because their
    /// [`RequestSpec::deadline`] had passed at the step's start.
    pub expired_waiting: Vec<u32>,
    /// Ids of running requests terminated at the step's start because
    /// their deadline had passed — their batch slots freed before
    /// admission, so an expired request never consumes another step.
    pub expired_running: Vec<u32>,
}

/// The join/admit/step/leave core of continuous batching.
///
/// Each [`step`](ContinuousBatcher::step) is one forward pass: requests
/// enqueued via [`enqueue`](ContinuousBatcher::enqueue) join the batch as
/// slots free up (their prefill merges into the pass), every running
/// request contributes its next decode token, and requests leave as soon
/// as their output length is reached — no request waits for an epoch
/// boundary. Admission is FIFO within a priority class; lower
/// [`RequestSpec::priority`] values are admitted first.
///
/// # Example
///
/// ```
/// use hybrimoe::serve::{ContinuousBatcher, RequestSpec, DEFAULT_PRIORITY};
/// use hybrimoe::{EngineConfig, Framework};
/// use hybrimoe_hw::SimTime;
/// use hybrimoe_model::ModelConfig;
///
/// let config = EngineConfig::preset(Framework::HybriMoe, ModelConfig::deepseek(), 0.25);
/// let mut batcher = ContinuousBatcher::new(config, 4, 7);
/// batcher.enqueue(RequestSpec {
///     id: 0,
///     arrival: SimTime::ZERO,
///     prompt_tokens: 16,
///     decode_tokens: 4,
///     priority: DEFAULT_PRIORITY,
///     deadline: None,
/// });
///
/// // The caller owns the clock: here each step lands at its modeled
/// // latency, which is what `ServeSim` does.
/// let mut now = SimTime::ZERO;
/// let mut completed = Vec::new();
/// while !batcher.is_idle() {
///     let outcome = batcher.step(now, |latency| now + latency);
///     now = outcome.end;
///     completed.extend(outcome.completed);
/// }
/// assert_eq!(completed.len(), 1);
/// assert_eq!(completed[0].id, 0);
/// ```
#[derive(Debug)]
pub struct ContinuousBatcher {
    engine: Engine,
    model: ModelConfig,
    needs_token_states: bool,
    seed: u64,
    max_batch: usize,
    waiting: VecDeque<RequestSpec>,
    running: Vec<ActiveRequest>,
}

impl ContinuousBatcher {
    /// Creates a batcher around a fresh (warmed-up) engine.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero, or if it reaches
    /// [`PREFILL_BATCH_THRESHOLD`]: the engine and the schedulers classify
    /// the prefill/decode regime of a forward pass by its token count, so a
    /// pure-decode batch that large would be misclassified as prefill and
    /// silently disable decode-time cache adaptation.
    ///
    /// [`PREFILL_BATCH_THRESHOLD`]: hybrimoe_sched::baselines::PREFILL_BATCH_THRESHOLD
    pub fn new(engine: EngineConfig, max_batch: usize, seed: u64) -> ContinuousBatcher {
        assert!(max_batch > 0, "max_batch must be at least 1");
        assert!(
            (max_batch as u32) < hybrimoe_sched::baselines::PREFILL_BATCH_THRESHOLD,
            "max_batch {} would make pure-decode batches look like prefill (threshold {})",
            max_batch,
            hybrimoe_sched::baselines::PREFILL_BATCH_THRESHOLD
        );
        let model = engine.model.clone();
        let needs_token_states = engine.backend.needs_token_states();
        ContinuousBatcher {
            engine: Engine::new(engine),
            model,
            needs_token_states,
            seed,
            max_batch,
            waiting: VecDeque::new(),
            running: Vec::new(),
        }
    }

    /// Adds a request to the waiting queue. Placement is FIFO within its
    /// priority class: the request goes after every queued request of the
    /// same or a more urgent (lower) class, and before less urgent ones.
    pub fn enqueue(&mut self, spec: RequestSpec) {
        let at = self
            .waiting
            .iter()
            .rposition(|q| q.priority <= spec.priority)
            .map_or(0, |i| i + 1);
        self.waiting.insert(at, spec);
    }

    /// Requests waiting for a batch slot.
    pub fn waiting_len(&self) -> usize {
        self.waiting.len()
    }

    /// Requests currently decoding in the batch.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Whether the batcher has nothing to do (no waiting or running
    /// requests). [`step`](ContinuousBatcher::step) panics in this state.
    pub fn is_idle(&self) -> bool {
        self.running.is_empty() && self.waiting.is_empty()
    }

    /// The earliest arrival time among waiting requests, if any — the
    /// queue-delay signal the server's load-shed watermark reads.
    pub fn oldest_waiting_arrival(&self) -> Option<SimTime> {
        self.waiting.iter().map(|s| s.arrival).min()
    }

    /// The continuous-batch bound.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// The engine driving the batch — read-only, for observability
    /// surfaces (cache statistics, prefetch counters, predictor accuracy).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Evicts a request wherever it is — the waiting queue or the running
    /// batch — freeing its slot for the next admission. Returns whether the
    /// request was found (false if it already completed or was never
    /// enqueued). The server calls this at a step boundary when a client
    /// hangs up mid-stream, so an abandoned request stops consuming batch
    /// slots within one step.
    pub fn cancel(&mut self, id: u32) -> bool {
        if let Some(i) = self.waiting.iter().position(|s| s.id == id) {
            self.waiting.remove(i);
            return true;
        }
        if let Some(i) = self.running.iter().position(|r| r.spec.id == id) {
            self.running.remove(i);
            return true;
        }
        false
    }

    /// Runs one engine step starting at `now`: admits waiting requests into
    /// free batch slots, merges their prefills with one decode token from
    /// every running request, and advances every request's lifecycle.
    ///
    /// `land` maps the engine-reported step latency to the time the step's
    /// tokens *land* — the stamp on first tokens and completions. The
    /// simulator passes `|latency| now + latency` (the modeled clock); the
    /// live server reads its wall clock instead, so SLO metrics reflect
    /// real elapsed time.
    ///
    /// # Panics
    ///
    /// Panics if the batcher [`is_idle`](ContinuousBatcher::is_idle), or if
    /// `land` returns a time before `now` (the clock ran backwards).
    pub fn step(&mut self, now: SimTime, land: impl FnOnce(SimDuration) -> SimTime) -> StepOutcome {
        assert!(!self.is_idle(), "step on an idle batcher");

        // Expire deadlined requests first: waiting ones drop before they
        // can take a slot, running ones free their slot for this step's
        // admissions. An expired request is terminal — it never runs
        // another token.
        let mut expired_waiting = Vec::new();
        self.waiting.retain(|s| match s.deadline {
            Some(d) if d <= now => {
                expired_waiting.push(s.id);
                false
            }
            _ => true,
        });
        let mut expired_running = Vec::new();
        self.running.retain(|r| match r.spec.deadline {
            Some(d) if d <= now => {
                expired_running.push(r.spec.id);
                false
            }
            _ => true,
        });
        // Expiry may have emptied the batcher: report it without running
        // a zero-part engine step.
        if self.is_idle() {
            return StepOutcome {
                stat: StepStat {
                    start: now,
                    batch: 0,
                    prefills: 0,
                    tokens: 0,
                    latency: SimDuration::ZERO,
                },
                end: now,
                admitted: Vec::new(),
                first_tokens: Vec::new(),
                decoded: Vec::new(),
                completed: Vec::new(),
                expired_waiting,
                expired_running,
            };
        }

        // Admit waiting requests into free batch slots (FIFO within each
        // priority class); their first prefill chunk merges into this step
        // and any remaining chunks queue on the request.
        let chunk_size = self.engine.config().chunked_prefill_size;
        let slots = self.max_batch.saturating_sub(self.running.len());
        let mut admitted: Vec<ActiveRequest> = Vec::new();
        let mut prefill_steps: Vec<TraceStep> = Vec::new();
        for _ in 0..slots {
            let Some(spec) = self.waiting.pop_front() else {
                break;
            };
            let mut generator =
                TraceGenerator::new(self.model.clone(), request_seed(self.seed, spec.id));
            if self.needs_token_states {
                // A real-execution backend computes actual layer outputs,
                // so every request's trace must carry its hidden states.
                generator = generator.with_token_states();
            }
            // One router-parameter bundle serves both the prompt and the
            // decode stream of the request.
            let (mut chunks, stream) = match chunk_size {
                Some(size) if spec.prompt_tokens >= size => {
                    let (chunks, stream) = generator.request_chunked(spec.prompt_tokens, size);
                    (VecDeque::from(chunks), stream)
                }
                _ => {
                    let (prefill, stream) = generator.request(spec.prompt_tokens);
                    (VecDeque::from([prefill]), stream)
                }
            };
            prefill_steps.push(chunks.pop_front().expect("a prompt has at least one chunk"));
            admitted.push(ActiveRequest {
                spec,
                stream,
                admitted: now,
                first_token: None, // set when the final chunk lands
                decoded: 0,
                pending_chunks: chunks,
            });
        }

        // Every running request contributes its next prefill chunk if it
        // still has one, otherwise its next decode token.
        let mut decode_steps: Vec<TraceStep> = Vec::with_capacity(self.running.len());
        let mut contributed_chunk: Vec<bool> = Vec::with_capacity(self.running.len());
        for r in self.running.iter_mut() {
            if let Some(chunk) = r.pending_chunks.pop_front() {
                decode_steps.push(chunk);
                contributed_chunk.push(true);
            } else {
                decode_steps.push(r.stream.next_step());
                contributed_chunk.push(false);
            }
        }

        let parts: Vec<&TraceStep> = prefill_steps.iter().chain(decode_steps.iter()).collect();
        // A single-member batch needs no merge (and no deep clone).
        let (metrics, step_tokens) = if let [single] = parts.as_slice() {
            (self.engine.step(single), single.tokens)
        } else {
            let merged = TraceStep::merge(&parts);
            (self.engine.step(&merged), merged.tokens)
        };
        let end = land(metrics.latency);
        assert!(end >= now, "step landed before it started");
        let stat = StepStat {
            start: now,
            batch: (self.running.len() + admitted.len()) as u32,
            prefills: admitted.len() as u32,
            tokens: step_tokens,
            latency: metrics.latency,
        };

        // Leave: decoding requests earned one token; requests landing
        // their last prefill chunk earned their first. Finished requests
        // exit the batch.
        let mut decoded = Vec::with_capacity(self.running.len());
        let mut first_tokens = Vec::new();
        for (r, chunked) in self.running.iter_mut().zip(&contributed_chunk) {
            if *chunked {
                if r.pending_chunks.is_empty() {
                    r.first_token = Some(end);
                    first_tokens.push(r.spec.id);
                }
            } else {
                r.decoded += 1;
                decoded.push((r.spec.id, r.decoded));
            }
        }
        let mut admitted_ids = Vec::with_capacity(admitted.len());
        let mut completed = Vec::new();
        for mut r in admitted {
            admitted_ids.push(r.spec.id);
            if r.pending_chunks.is_empty() {
                r.first_token = Some(end);
                first_tokens.push(r.spec.id);
                if r.spec.decode_tokens == 0 {
                    completed.push(r.finish(end));
                    continue;
                }
            }
            self.running.push(r);
        }
        let mut i = 0;
        while i < self.running.len() {
            let r = &self.running[i];
            if r.pending_chunks.is_empty() && r.decoded >= r.spec.decode_tokens {
                let done = self.running.remove(i);
                completed.push(done.finish(end));
            } else {
                i += 1;
            }
        }

        StepOutcome {
            stat,
            end,
            admitted: admitted_ids,
            first_tokens,
            decoded,
            completed,
            expired_waiting,
            expired_running,
        }
    }
}

/// The trace seed of one request: decorrelated from its neighbours but a
/// pure function of the experiment seed and the request id.
fn request_seed(seed: u64, id: u32) -> u64 {
    seed ^ (id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::serve::DEFAULT_PRIORITY;
    use crate::Framework;
    use hybrimoe_model::ModelConfig;

    fn spec(id: u32, priority: u8) -> RequestSpec {
        RequestSpec {
            id,
            arrival: SimTime::ZERO,
            prompt_tokens: 8,
            decode_tokens: 2,
            priority,
            deadline: None,
        }
    }

    fn batcher(max_batch: usize) -> ContinuousBatcher {
        ContinuousBatcher::new(
            EngineConfig::preset(Framework::HybriMoe, ModelConfig::tiny_test(), 0.5),
            max_batch,
            7,
        )
    }

    #[test]
    fn priority_classes_jump_the_queue_fifo_within_class() {
        let mut b = batcher(1);
        b.enqueue(spec(0, 1));
        b.enqueue(spec(1, 1));
        b.enqueue(spec(2, DEFAULT_PRIORITY)); // urgent: goes first
        b.enqueue(spec(3, 1));
        let order: Vec<u32> = b.waiting.iter().map(|s| s.id).collect();
        assert_eq!(order, vec![2, 0, 1, 3]);
    }

    #[test]
    fn uniform_priorities_stay_fifo() {
        let mut b = batcher(1);
        for id in 0..4 {
            b.enqueue(spec(id, DEFAULT_PRIORITY));
        }
        let order: Vec<u32> = b.waiting.iter().map(|s| s.id).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn step_lifecycle_admits_decodes_and_completes() {
        let mut b = batcher(2);
        b.enqueue(spec(0, 0));
        b.enqueue(spec(1, 0));
        // Step 1: both admitted, first tokens land at step end.
        let out = b.step(SimTime::ZERO, |lat| SimTime::ZERO + lat);
        assert_eq!(out.admitted, vec![0, 1]);
        assert!(out.decoded.is_empty());
        assert!(out.completed.is_empty());
        assert_eq!(out.stat.prefills, 2);
        assert_eq!(b.running_len(), 2);
        // Steps 2-3: two decode tokens each, then both complete.
        let now = out.end;
        let out = b.step(now, |lat| now + lat);
        assert_eq!(out.decoded, vec![(0, 1), (1, 1)]);
        let now = out.end;
        let out = b.step(now, |lat| now + lat);
        assert_eq!(out.decoded, vec![(0, 2), (1, 2)]);
        assert_eq!(out.completed.len(), 2);
        assert!(b.is_idle());
        for m in &out.completed {
            assert!(m.first_token >= m.arrival);
            assert!(m.completion >= m.first_token);
            assert_eq!(m.queue_wait(), hybrimoe_hw::SimDuration::ZERO);
        }
    }

    #[test]
    fn unchunked_first_tokens_match_admissions() {
        let mut b = batcher(2);
        b.enqueue(spec(0, 0));
        b.enqueue(spec(1, 0));
        let out = b.step(SimTime::ZERO, |lat| SimTime::ZERO + lat);
        assert_eq!(out.first_tokens, out.admitted);
    }

    #[test]
    fn chunked_prefill_interleaves_with_decode() {
        // Chunk size 32, prompt 80 → chunks [32, 48]: the first token only
        // lands when the second chunk completes, and a decoding neighbour
        // keeps earning tokens in between.
        let config = EngineConfig::preset(Framework::HybriMoe, ModelConfig::tiny_test(), 0.5)
            .with_chunked_prefill(32);
        let mut b = ContinuousBatcher::new(config, 2, 7);
        let mut req = spec(0, DEFAULT_PRIORITY);
        req.decode_tokens = 4;
        b.enqueue(req);
        let out = b.step(SimTime::ZERO, |lat| SimTime::ZERO + lat);
        assert_eq!(out.admitted, vec![0]);
        assert_eq!(out.first_tokens, vec![0]); // short prompt: admitted whole

        let mut long = spec(1, DEFAULT_PRIORITY);
        long.prompt_tokens = 80;
        long.decode_tokens = 1;
        b.enqueue(long);
        let now = out.end;
        let out = b.step(now, |lat| now + lat);
        assert_eq!(out.admitted, vec![1]);
        assert!(out.first_tokens.is_empty()); // chunk 1 of 2 in flight
        assert_eq!(out.decoded, vec![(0, 1)]); // neighbour still decodes

        let now = out.end;
        let out = b.step(now, |lat| now + lat);
        assert!(out.admitted.is_empty());
        assert_eq!(out.first_tokens, vec![1]); // final chunk landed
        assert_eq!(out.decoded, vec![(0, 2)]);

        // From here the long request decodes like any other and finishes.
        let now = out.end;
        let out = b.step(now, |lat| now + lat);
        assert_eq!(out.decoded, vec![(0, 3), (1, 1)]);
        assert_eq!(out.completed.len(), 1);
        assert_eq!(out.completed[0].id, 1);
        assert!(out.completed[0].tpot() > hybrimoe_hw::SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "idle")]
    fn stepping_an_idle_batcher_panics() {
        let mut b = batcher(2);
        let _ = b.step(SimTime::ZERO, |lat| SimTime::ZERO + lat);
    }

    #[test]
    fn deadlines_expire_waiting_and_running_requests() {
        use hybrimoe_hw::SimDuration;

        let mut b = batcher(1);
        let mut doomed = spec(0, 0);
        doomed.deadline = Some(SimTime::ZERO + SimDuration::from_millis(1));
        b.enqueue(doomed);
        b.enqueue(spec(1, 0));
        // The deadlined request expires before admission; the other takes
        // the freed slot in the same step.
        let now = SimTime::ZERO + SimDuration::from_millis(2);
        let out = b.step(now, |lat| now + lat);
        assert_eq!(out.expired_waiting, vec![0]);
        assert!(out.expired_running.is_empty());
        assert_eq!(out.admitted, vec![1]);
        assert_eq!(b.running_len(), 1);

        // A running request past its deadline is terminated at the next
        // step boundary; with nothing else to run, the outcome is empty
        // (no engine step) and the batcher goes idle.
        let mut slow = spec(2, 0);
        slow.decode_tokens = 100;
        slow.deadline = Some(out.end); // expires as soon as it would decode
        b.cancel(1);
        b.enqueue(slow);
        let now = out.end;
        let out = b.step(now, |lat| now + lat); // admitted: deadline == now drops it first
        assert_eq!(out.expired_waiting, vec![2]);
        assert_eq!(out.stat.batch, 0);
        assert_eq!(out.stat.latency, SimDuration::ZERO);
        assert_eq!(out.end, now);
        assert!(b.is_idle());

        // And a request that makes it into the batch expires mid-decode.
        let mut mid = spec(3, 0);
        mid.decode_tokens = 100;
        mid.deadline = Some(now + SimDuration::from_nanos(1));
        b.enqueue(mid);
        let out = b.step(now, |lat| now + lat); // admits: deadline still ahead
        assert_eq!(out.admitted, vec![3]);
        let later = out.end.max(mid.deadline.unwrap());
        let out = b.step(later, |lat| later + lat);
        assert_eq!(out.expired_running, vec![3]);
        assert!(b.is_idle());
    }

    #[test]
    fn cancel_evicts_waiting_and_running_requests() {
        let mut b = batcher(1);
        b.enqueue(spec(0, 0));
        b.enqueue(spec(1, 0));
        // Step 1: request 0 takes the only slot, request 1 queues.
        let out = b.step(SimTime::ZERO, |lat| SimTime::ZERO + lat);
        assert_eq!(out.admitted, vec![0]);
        assert_eq!((b.running_len(), b.waiting_len()), (1, 1));

        // Cancel the running request: its slot frees and the queued
        // request is admitted on the very next step.
        assert!(b.cancel(0));
        assert_eq!((b.running_len(), b.waiting_len()), (0, 1));
        let now = out.end;
        let out = b.step(now, |lat| now + lat);
        assert_eq!(out.admitted, vec![1]);

        // Cancel from the waiting queue, and cancel of an unknown or
        // already-evicted id reports not-found.
        b.enqueue(spec(2, 0));
        assert!(b.cancel(2));
        assert!(!b.cancel(2));
        assert!(!b.cancel(99));
        assert!(b.cancel(1));
        assert!(b.is_idle());
    }
}
