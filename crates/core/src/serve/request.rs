//! Requests and their per-request latency metrics.

use hybrimoe_hw::{SimDuration, SimTime};
use hybrimoe_trace::DecodeStream;
use serde::{Deserialize, Serialize};

/// One request as submitted to the server: a prompt to prefill and a fixed
/// number of tokens to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestSpec {
    /// Request id (also its arrival order).
    pub id: u32,
    /// Arrival time on the simulated clock.
    pub arrival: SimTime,
    /// Prompt length in tokens.
    pub prompt_tokens: u32,
    /// Output length in tokens (decode steps after prefill).
    pub decode_tokens: u32,
}

/// The realized latency profile of one completed request.
///
/// # Example
///
/// ```
/// use hybrimoe::serve::RequestMetrics;
/// use hybrimoe_hw::{SimDuration, SimTime};
///
/// let m = RequestMetrics {
///     id: 0,
///     arrival: SimTime::ZERO,
///     first_token: SimTime::ZERO + SimDuration::from_millis(3),
///     completion: SimTime::ZERO + SimDuration::from_millis(11),
///     prompt_tokens: 16,
///     decode_tokens: 4,
/// };
/// assert_eq!(m.ttft(), SimDuration::from_millis(3));
/// assert_eq!(m.tpot(), SimDuration::from_millis(2));
/// assert_eq!(m.latency(), SimDuration::from_millis(11));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestMetrics {
    /// Request id.
    pub id: u32,
    /// Arrival time.
    pub arrival: SimTime,
    /// When the prefill pass finished (the first output token).
    pub first_token: SimTime,
    /// When the last output token finished.
    pub completion: SimTime,
    /// Prompt length in tokens.
    pub prompt_tokens: u32,
    /// Output length in tokens.
    pub decode_tokens: u32,
}

impl RequestMetrics {
    /// Time to first token: queueing delay plus prefill.
    pub fn ttft(&self) -> SimDuration {
        self.first_token.elapsed_since(self.arrival)
    }

    /// Mean time per output token after the first (zero for requests that
    /// decode nothing).
    pub fn tpot(&self) -> SimDuration {
        if self.decode_tokens == 0 {
            return SimDuration::ZERO;
        }
        self.completion.elapsed_since(self.first_token) / self.decode_tokens as u64
    }

    /// End-to-end request latency (arrival to completion).
    pub fn latency(&self) -> SimDuration {
        self.completion.elapsed_since(self.arrival)
    }
}

/// A request currently decoding in the continuous batch.
#[derive(Debug)]
pub(crate) struct ActiveRequest {
    pub spec: RequestSpec,
    pub stream: DecodeStream,
    pub first_token: SimTime,
    pub decoded: u32,
}

impl ActiveRequest {
    /// Metrics for a request completing at `completion`.
    pub fn finish(&self, completion: SimTime) -> RequestMetrics {
        RequestMetrics {
            id: self.spec.id,
            arrival: self.spec.arrival,
            first_token: self.first_token,
            completion,
            prompt_tokens: self.spec.prompt_tokens,
            decode_tokens: self.spec.decode_tokens,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_decode_request_has_zero_tpot() {
        let m = RequestMetrics {
            id: 1,
            arrival: SimTime::ZERO,
            first_token: SimTime::ZERO + SimDuration::from_millis(2),
            completion: SimTime::ZERO + SimDuration::from_millis(2),
            prompt_tokens: 8,
            decode_tokens: 0,
        };
        assert_eq!(m.tpot(), SimDuration::ZERO);
        assert_eq!(m.latency(), m.ttft());
    }
}
