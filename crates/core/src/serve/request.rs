//! Requests and their per-request latency metrics.

use std::collections::VecDeque;

use hybrimoe_hw::{SimDuration, SimTime};
use hybrimoe_trace::{DecodeStream, TraceStep};
use serde::{Deserialize, Serialize};

/// The default scheduling class of a request (see [`RequestSpec::priority`]).
pub const DEFAULT_PRIORITY: u8 = 0;

/// One request as submitted to the server: a prompt to prefill and a fixed
/// number of tokens to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestSpec {
    /// Request id (also its arrival order).
    pub id: u32,
    /// Arrival time on the simulated clock.
    pub arrival: SimTime,
    /// Prompt length in tokens.
    pub prompt_tokens: u32,
    /// Output length in tokens (decode steps after prefill).
    pub decode_tokens: u32,
    /// Scheduling class: lower is more urgent. The continuous batcher
    /// admits lower classes first (FIFO within a class), and the serving
    /// front-end's load-shed watermark only sheds classes above
    /// [`DEFAULT_PRIORITY`].
    pub priority: u8,
    /// Absolute completion deadline on the simulated clock, or `None` for
    /// no deadline. The batcher expires deadlined requests at every step
    /// boundary — waiting requests are dropped before admission, running
    /// ones are terminated and their batch slot freed — and the serving
    /// front-end rejects requests whose deadline already passed at
    /// admission with a 504.
    pub deadline: Option<SimTime>,
}

/// The realized latency profile of one completed request.
///
/// # Example
///
/// ```
/// use hybrimoe::serve::RequestMetrics;
/// use hybrimoe_hw::{SimDuration, SimTime};
///
/// let m = RequestMetrics {
///     id: 0,
///     arrival: SimTime::ZERO,
///     admitted: SimTime::ZERO + SimDuration::from_millis(1),
///     first_token: SimTime::ZERO + SimDuration::from_millis(3),
///     completion: SimTime::ZERO + SimDuration::from_millis(11),
///     prompt_tokens: 16,
///     decode_tokens: 4,
/// };
/// assert_eq!(m.queue_wait(), SimDuration::from_millis(1));
/// assert_eq!(m.ttft(), SimDuration::from_millis(3));
/// assert_eq!(m.tpot(), SimDuration::from_millis(2));
/// assert_eq!(m.latency(), SimDuration::from_millis(11));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestMetrics {
    /// Request id.
    pub id: u32,
    /// Arrival time.
    pub arrival: SimTime,
    /// When the request left the waiting queue and joined the batch.
    pub admitted: SimTime,
    /// When the prefill pass finished (the first output token).
    pub first_token: SimTime,
    /// When the last output token finished.
    pub completion: SimTime,
    /// Prompt length in tokens.
    pub prompt_tokens: u32,
    /// Output length in tokens.
    pub decode_tokens: u32,
}

impl RequestMetrics {
    /// Time spent in the waiting queue before joining the batch.
    pub fn queue_wait(&self) -> SimDuration {
        self.admitted.elapsed_since(self.arrival)
    }

    /// Time to first token: queueing delay plus prefill. Always measured
    /// from *arrival*, so queue wait under overload is charged to TTFT.
    pub fn ttft(&self) -> SimDuration {
        self.first_token.elapsed_since(self.arrival)
    }

    /// Mean time per output token after the first (zero for requests that
    /// decode nothing).
    pub fn tpot(&self) -> SimDuration {
        if self.decode_tokens == 0 {
            return SimDuration::ZERO;
        }
        self.completion.elapsed_since(self.first_token) / self.decode_tokens as u64
    }

    /// End-to-end request latency (arrival to completion).
    pub fn latency(&self) -> SimDuration {
        self.completion.elapsed_since(self.arrival)
    }
}

/// A request currently decoding in the continuous batch.
#[derive(Debug)]
pub(crate) struct ActiveRequest {
    pub spec: RequestSpec,
    pub stream: DecodeStream,
    /// When the request joined the batch (its prefill merged into a step).
    pub admitted: SimTime,
    /// When the prefill landed. `None` until the step carrying the last
    /// prefill chunk completes, so a half-admitted (or half-prefilled)
    /// request can never report a zero TTFT.
    pub first_token: Option<SimTime>,
    pub decoded: u32,
    /// Prefill chunks still to run, oldest first. Empty unless the request
    /// was admitted under chunked prefill; while non-empty the request
    /// contributes its next chunk to each step instead of a decode token.
    pub pending_chunks: VecDeque<TraceStep>,
}

impl ActiveRequest {
    /// Metrics for a request completing at `completion`.
    ///
    /// # Panics
    ///
    /// Panics if the request never landed its first token, or if the
    /// recorded timestamps run backwards (`first_token` before arrival).
    pub fn finish(&self, completion: SimTime) -> RequestMetrics {
        let first_token = self
            .first_token
            .expect("finished request never landed its first token");
        assert!(
            first_token >= self.spec.arrival,
            "request {}: first token at {first_token} precedes arrival at {}",
            self.spec.id,
            self.spec.arrival
        );
        RequestMetrics {
            id: self.spec.id,
            arrival: self.spec.arrival,
            admitted: self.admitted,
            first_token,
            completion,
            prompt_tokens: self.spec.prompt_tokens,
            decode_tokens: self.spec.decode_tokens,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_decode_request_has_zero_tpot() {
        let m = RequestMetrics {
            id: 1,
            arrival: SimTime::ZERO,
            admitted: SimTime::ZERO + SimDuration::from_millis(1),
            first_token: SimTime::ZERO + SimDuration::from_millis(2),
            completion: SimTime::ZERO + SimDuration::from_millis(2),
            prompt_tokens: 8,
            decode_tokens: 0,
        };
        assert_eq!(m.tpot(), SimDuration::ZERO);
        assert_eq!(m.latency(), m.ttft());
        assert_eq!(m.queue_wait(), SimDuration::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "never landed")]
    fn finishing_without_a_first_token_panics() {
        use hybrimoe_model::ModelConfig;
        use hybrimoe_trace::TraceGenerator;

        let (_, stream) = TraceGenerator::new(ModelConfig::tiny_test(), 1).request(4);
        let r = ActiveRequest {
            spec: RequestSpec {
                id: 0,
                arrival: SimTime::ZERO,
                prompt_tokens: 4,
                decode_tokens: 1,
                priority: DEFAULT_PRIORITY,
                deadline: None,
            },
            stream,
            admitted: SimTime::ZERO,
            first_token: None,
            decoded: 0,
            pending_chunks: VecDeque::new(),
        };
        let _ = r.finish(SimTime::ZERO + SimDuration::from_millis(1));
    }
}
