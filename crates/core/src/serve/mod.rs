//! Continuous-batching serving on top of the incremental engine step API.
//!
//! [`Engine::run`](crate::Engine::run) replays one pre-generated trace end
//! to end — a single-user measurement. Real serving is different: requests
//! arrive over time, overlap, and each one cares about *its own* latency.
//! This module models that regime the way vLLM-style systems do, at the
//! granularity the engine exposes — one forward pass per engine step:
//!
//! * an [`ArrivalProcess`] draws seeded request arrival times
//!   (deterministic spacing or a Poisson process);
//! * each request decodes through its own incremental
//!   [`DecodeStream`](hybrimoe_trace::DecodeStream);
//! * every engine step, the **continuous batcher** re-forms the batch:
//!   waiting requests join (their prefill pass merges into the batch),
//!   finished requests leave, and at most
//!   [`ServeConfig::max_batch`] requests run concurrently;
//! * the merged [`TraceStep`](hybrimoe_trace::TraceStep) goes through
//!   [`Engine::step`](crate::Engine::step), and the simulated clock
//!   advances by the step latency;
//! * per-request TTFT/TPOT/latency and aggregate throughput come out as a
//!   [`ServeReport`].
//!
//! One modeling consequence of merging prefills into the running batch:
//! the engine and the schedulers classify a forward pass as prefill or
//! decode by its token count (the batch-aware baseline semantics of the
//! paper's Table I), so a step that absorbs a prompt is handled with
//! prefill policies — conservative cache insertion included — for that
//! step. [`ServeSim::new`] rejects `max_batch` values large enough for a
//! *pure-decode* batch to cross the threshold.
//!
//! The admission/merge/leave core lives in [`ContinuousBatcher`], which
//! both the deterministic [`ServeSim`] and the live TCP front-end in
//! [`server`] drive — the simulator with its modeled clock, the server
//! with wall-clock stamps — so simulated and served behavior cannot
//! diverge structurally.
//!
//! # Example
//!
//! ```
//! use hybrimoe::serve::{ArrivalProcess, ServeConfig, ServeSim};
//! use hybrimoe::{EngineConfig, Framework};
//! use hybrimoe_hw::SimDuration;
//! use hybrimoe_model::ModelConfig;
//!
//! let config = ServeConfig {
//!     engine: EngineConfig::preset(Framework::HybriMoe, ModelConfig::tiny_test(), 0.5),
//!     arrivals: ArrivalProcess::deterministic(SimDuration::from_millis(5)),
//!     requests: 4,
//!     prompt_tokens: 16,
//!     decode_tokens: 8,
//!     max_batch: 2,
//!     seed: 42,
//! };
//! let report = ServeSim::new(config).run();
//! assert_eq!(report.requests.len(), 4);
//! assert!(report.summary().output_tokens_per_sec > 0.0);
//! ```

mod arrivals;
mod batcher;
mod request;
pub mod server;
mod sim;
mod summary;

pub use arrivals::{ArrivalKind, ArrivalProcess};
pub use batcher::{ContinuousBatcher, StepOutcome};
pub use request::{RequestMetrics, RequestSpec, DEFAULT_PRIORITY};
pub use sim::{ServeConfig, ServeEngineStats, ServeSim, StepStat};
pub use summary::{ServeReport, ServeSummary};
