//! Per-request SLO accounting for the serving front-end.

use std::sync::Mutex;

use hybrimoe_hw::SimDuration;
use serde::{Deserialize, Serialize};

use crate::serve::summary::percentile;
use crate::serve::RequestMetrics;

/// A point-in-time snapshot of the server's SLO accounting, served as JSON
/// at `GET /metrics`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerMetrics {
    /// Requests admitted into the waiting queue since startup.
    pub admitted: u64,
    /// Requests that completed their full token stream.
    pub completed: u64,
    /// Requests cancelled because the client hung up mid-stream (their
    /// batch slot was reclaimed at the next step boundary).
    pub cancelled: u64,
    /// Admitted requests expired past their deadline (waiting or
    /// mid-decode); each got a terminal `timed_out` chunk and freed its
    /// slot at the next step boundary.
    pub timed_out: u64,
    /// Admitted requests failed by an engine panic; each got a terminal
    /// `failed` chunk while the engine was rebuilt.
    pub failed: u64,
    /// Requests rejected because the waiting queue was full.
    pub rejected_queue_full: u64,
    /// Requests shed because queue delay exceeded the watermark.
    pub rejected_shed: u64,
    /// Requests rejected because the server was draining.
    pub rejected_draining: u64,
    /// Requests rejected at admission because their deadline had already
    /// passed (or was zero) — answered 504 without queueing.
    pub rejected_deadline: u64,
    /// Requests currently waiting for a batch slot.
    pub queued: u64,
    /// Requests currently decoding in the batch.
    pub running: u64,
    /// Engine steps taken.
    pub engine_steps: u64,
    /// Output tokens streamed (first tokens plus decode tokens).
    pub output_tokens: u64,
    /// Whether the server is draining (admission closed).
    pub draining: bool,
    /// Median queue wait across completed requests, ms.
    pub queue_wait_p50_ms: f64,
    /// 99th-percentile queue wait, ms.
    pub queue_wait_p99_ms: f64,
    /// Median time to first token (measured from arrival), ms.
    pub ttft_p50_ms: f64,
    /// 99th-percentile time to first token, ms.
    pub ttft_p99_ms: f64,
    /// Median time per output token, ms.
    pub tpot_p50_ms: f64,
    /// 99th-percentile time per output token, ms.
    pub tpot_p99_ms: f64,
    /// Background expert transfers issued by the prefetcher since startup.
    pub prefetch_issued: u64,
    /// Prefetched experts that actually entered the cache.
    pub prefetch_landed: u64,
    /// Prefetched experts that arrived useless (already resident, or no
    /// free slot when the transfer completed).
    pub prefetch_wasted: u64,
    /// Rolling top-k accuracy of the learned expert predictor; `None`
    /// when the engine runs no predictor.
    pub predictor_topk_accuracy: Option<f64>,
    /// Expert-cache hit ratio per GPU shard, refreshed every engine step.
    pub shard_hit_ratio: Vec<f64>,
    /// Remote expert workers configured (zero unless the engine runs the
    /// remote-worker backend).
    pub workers_configured: u64,
    /// Remote workers currently connected.
    pub workers_up: u64,
    /// Expert batches dispatched to remote workers since startup.
    pub worker_requests: u64,
    /// Expert batches that fell back to local execution after a worker
    /// failure or while a worker was down.
    pub worker_failovers: u64,
    /// Successful worker reconnects after a failure.
    pub worker_reconnects: u64,
    /// Remote workers whose circuit breaker is currently open (their
    /// experts route local until a half-open probe succeeds).
    pub worker_breaker_open: u64,
    /// Cumulative circuit-breaker trips across the worker fleet.
    pub worker_breaker_trips: u64,
    /// Times the engine was rebuilt after a step panic. The listener and
    /// every connection survive a restart; only the requests in flight at
    /// the panic fail.
    pub engine_restarts: u64,
}

/// Accumulates per-request SLO samples behind a mutex. The engine loop
/// pushes one sample per completion; `/metrics` handlers snapshot.
#[derive(Debug, Default)]
pub struct SloRecorder {
    inner: Mutex<Samples>,
}

#[derive(Debug, Default)]
struct Samples {
    queue_wait: Vec<SimDuration>,
    ttft: Vec<SimDuration>,
    tpot: Vec<SimDuration>,
}

impl SloRecorder {
    /// Records one completed request.
    ///
    /// Poison-tolerant: the recorder only ever pushes complete samples, so
    /// if another thread panicked mid-`record` the worst case is one
    /// partially-pushed sample — recovering the guard keeps `/metrics` and
    /// the drain path alive for everyone else.
    pub fn record(&self, m: &RequestMetrics) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.queue_wait.push(m.queue_wait());
        inner.ttft.push(m.ttft());
        inner.tpot.push(m.tpot());
    }

    /// Percentiles over everything recorded so far, in milliseconds:
    /// `(queue_wait p50/p99, ttft p50/p99, tpot p50/p99)`.
    /// Poison-tolerant like [`SloRecorder::record`].
    pub fn percentiles_ms(&self) -> [f64; 6] {
        let mut guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let Samples {
            queue_wait,
            ttft,
            tpot,
        } = &mut *guard;
        let mut out = [0.0; 6];
        for (i, series) in [queue_wait, ttft, tpot].into_iter().enumerate() {
            series.sort_unstable();
            out[2 * i] = percentile(series, 50.0).as_millis_f64();
            out[2 * i + 1] = percentile(series, 99.0).as_millis_f64();
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use hybrimoe_hw::SimTime;

    fn metrics(id: u32, wait_ms: u64, ttft_ms: u64) -> RequestMetrics {
        RequestMetrics {
            id,
            arrival: SimTime::ZERO,
            admitted: SimTime::ZERO + SimDuration::from_millis(wait_ms),
            first_token: SimTime::ZERO + SimDuration::from_millis(ttft_ms),
            completion: SimTime::ZERO + SimDuration::from_millis(ttft_ms + 10),
            prompt_tokens: 8,
            decode_tokens: 5,
        }
    }

    #[test]
    fn recorder_reports_percentiles() {
        let rec = SloRecorder::default();
        for i in 0..10 {
            rec.record(&metrics(i, i as u64 + 1, 2 * (i as u64 + 1)));
        }
        let [qw50, qw99, ttft50, ttft99, tpot50, tpot99] = rec.percentiles_ms();
        assert_eq!(qw50, 5.0);
        assert_eq!(qw99, 10.0);
        assert_eq!(ttft50, 10.0);
        assert_eq!(ttft99, 20.0);
        assert_eq!(tpot50, 2.0);
        assert!(tpot99 >= tpot50);
    }

    #[test]
    fn recorder_survives_a_poisoned_lock() {
        let rec = std::sync::Arc::new(SloRecorder::default());
        rec.record(&metrics(0, 4, 8));
        // Panic while holding the lock, poisoning the mutex the way a
        // crashed handler thread would.
        let poisoner = std::sync::Arc::clone(&rec);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.inner.lock().unwrap();
            panic!("die holding the slo lock");
        })
        .join();
        assert!(rec.inner.lock().is_err(), "lock should be poisoned");

        // Both paths must keep working on the recovered state.
        rec.record(&metrics(1, 6, 12));
        let [qw50, ..] = rec.percentiles_ms();
        assert_eq!(qw50, 4.0);
    }
}
