//! The engine loop thread: the single owner of the [`ContinuousBatcher`].
//!
//! Connection handlers never touch the engine. They submit accepted
//! requests over a bounded channel and receive [`StreamEvent`]s back on a
//! per-request channel; the loop free-runs — pull submissions, step the
//! batch, deliver tokens — stamping every step with real wall-clock time.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hybrimoe_hw::SimTime;

use crate::serve::server::Shared;
use crate::serve::{ContinuousBatcher, RequestMetrics, RequestSpec, StepOutcome};

/// How long an idle loop blocks on the submission channel before
/// re-checking the drain flag.
const IDLE_POLL: Duration = Duration::from_millis(5);

/// One grace window after drain starts: a handler that passed the
/// admission checks just before the flag flipped still gets its request
/// served rather than silently dropped.
const DRAIN_GRACE: Duration = Duration::from_millis(50);

/// An accepted request on its way from a connection handler to the
/// engine loop.
pub(crate) struct Submission {
    /// Arrival stamp taken by the handler (server clock).
    pub arrival: SimTime,
    pub prompt_tokens: u32,
    pub decode_tokens: u32,
    pub priority: u8,
    /// Absolute completion deadline on the server clock, if any; the
    /// batcher expires the request at the first step boundary past it.
    pub deadline: Option<SimTime>,
    /// Where the handler listens for this request's tokens.
    pub events: Sender<StreamEvent>,
}

/// What the engine loop tells a connection handler about its request.
pub(crate) enum StreamEvent {
    /// One output token landed; `index` counts from zero (the first
    /// token) up to `decode_tokens`.
    Token { index: u32 },
    /// The request finished; the stream is complete.
    Done { metrics: RequestMetrics },
    /// The request expired past its deadline; the stream ends with a
    /// terminal `timed_out` chunk.
    TimedOut,
    /// An engine panic killed the request in flight; the stream ends
    /// with a terminal `failed` chunk while the engine is rebuilt.
    Failed,
}

/// Runs the engine loop until shutdown: all submitters gone, or a drain
/// was requested and every accepted request has completed.
///
/// `make_batcher` rebuilds the batcher (and its engine) after a step
/// panic: an injected (or real) engine panic is contained with
/// `catch_unwind`, the requests in flight fail with a terminal event,
/// and a fresh engine replaces the poisoned one — the listener and every
/// other connection never notice.
pub(crate) fn run(
    mut batcher: ContinuousBatcher,
    make_batcher: impl Fn() -> ContinuousBatcher,
    submissions: Receiver<Submission>,
    shared: Arc<Shared>,
    min_step: Option<Duration>,
) {
    let mut clients: HashMap<u32, Sender<StreamEvent>> = HashMap::new();
    let mut next_id: u32 = 0;

    loop {
        // Pull everything already submitted into the waiting queue.
        while let Ok(sub) = submissions.try_recv() {
            admit(sub, &mut batcher, &mut clients, &mut next_id, &shared);
        }

        if batcher.is_idle() {
            if shared.draining.load(Ordering::Acquire) {
                // A submission may have passed the admission checks just
                // before the drain flag flipped; give it one grace window.
                match submissions.recv_timeout(DRAIN_GRACE) {
                    Ok(sub) => {
                        admit(sub, &mut batcher, &mut clients, &mut next_id, &shared);
                        continue;
                    }
                    Err(_) => break,
                }
            }
            match submissions.recv_timeout(IDLE_POLL) {
                Ok(sub) => admit(sub, &mut batcher, &mut clients, &mut next_id, &shared),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            continue; // sweep the channel again before stepping
        }

        let started = Instant::now();
        let now = shared.now();
        let stepped = catch_unwind(AssertUnwindSafe(|| {
            batcher.step(now, |_latency| {
                // Tokens land when the step *actually* finished, plus any
                // configured pacing floor — not when the model says it
                // should have. SLOs measure the real server.
                if let Some(floor) = min_step {
                    let elapsed = started.elapsed();
                    if elapsed < floor {
                        std::thread::sleep(floor - elapsed);
                    }
                }
                shared.now()
            })
        }));
        let outcome = match stepped {
            Ok(outcome) => outcome,
            Err(_) => {
                // The engine panicked mid-step. Fail every request in
                // flight with a terminal event, forget the poisoned
                // batcher, and re-arm with a fresh engine — the listener
                // and the submission channel live on.
                shared
                    .queued
                    .fetch_sub(batcher.waiting_len(), Ordering::AcqRel);
                shared
                    .failed
                    .fetch_add(clients.len() as u64, Ordering::Relaxed);
                for (_, events) in clients.drain() {
                    let _ = events.send(StreamEvent::Failed);
                }
                shared.engine_restarts.fetch_add(1, Ordering::Relaxed);
                batcher = make_batcher();
                shared.running.store(0, Ordering::Relaxed);
                shared.store_oldest_wait(None);
                continue;
            }
        };
        // Publish the admission bookkeeping BEFORE delivering tokens: a
        // client acts the moment its first chunk lands, and the shed
        // gate must not still see the stamp of a request that already
        // left the waiting queue.
        shared.steps.fetch_add(1, Ordering::Relaxed);
        shared.queued.fetch_sub(
            outcome.admitted.len() + outcome.expired_waiting.len(),
            Ordering::AcqRel,
        );
        // Deadline expiries are terminal: close their streams with a
        // typed event and drop their handlers before token delivery.
        for id in outcome
            .expired_waiting
            .iter()
            .chain(&outcome.expired_running)
        {
            shared.timed_out.fetch_add(1, Ordering::Relaxed);
            if let Some(events) = clients.remove(id) {
                let _ = events.send(StreamEvent::TimedOut);
            }
        }
        shared
            .running
            .store(batcher.running_len(), Ordering::Relaxed);
        shared.store_oldest_wait(batcher.oldest_waiting_arrival());
        {
            let engine = batcher.engine();
            shared.store_engine_stats(
                engine.prefetch_counters(),
                engine.predictor_accuracy(),
                engine.shard_hit_ratios(),
                engine.worker_health(),
            );
        }
        let hung_up = deliver(&outcome, &mut clients, &shared);
        if !hung_up.is_empty() {
            // The client is gone: evict its request at this step boundary
            // so the slot is free for the next admission instead of
            // decoding to completion for nobody.
            for id in hung_up {
                if batcher.cancel(id) {
                    shared.cancelled.fetch_add(1, Ordering::Relaxed);
                }
                clients.remove(&id);
            }
            shared
                .running
                .store(batcher.running_len(), Ordering::Relaxed);
        }
    }

    shared.running.store(0, Ordering::Relaxed);
    shared.store_oldest_wait(None);
}

fn admit(
    sub: Submission,
    batcher: &mut ContinuousBatcher,
    clients: &mut HashMap<u32, Sender<StreamEvent>>,
    next_id: &mut u32,
    shared: &Shared,
) {
    let id = *next_id;
    *next_id = next_id.wrapping_add(1);
    clients.insert(id, sub.events);
    batcher.enqueue(RequestSpec {
        id,
        arrival: sub.arrival,
        prompt_tokens: sub.prompt_tokens,
        decode_tokens: sub.decode_tokens,
        priority: sub.priority,
        deadline: sub.deadline,
    });
    shared.admitted.fetch_add(1, Ordering::Relaxed);
    shared.store_oldest_wait(batcher.oldest_waiting_arrival());
}

/// Streams this step's tokens to the waiting handlers and returns the ids
/// whose *token* send failed — the handler dropped its receiver, meaning
/// the client hung up mid-stream. (A failed `Done` send is not a hangup:
/// the request already finished, there is no slot left to reclaim.)
fn deliver(
    outcome: &StepOutcome,
    clients: &mut HashMap<u32, Sender<StreamEvent>>,
    shared: &Shared,
) -> Vec<u32> {
    let mut tokens: u64 = 0;
    let mut hung_up: Vec<u32> = Vec::new();
    // First tokens for requests whose prefill completed this step (the
    // admitting step, or the one carrying the last prefill chunk), then
    // one decode token per running request.
    for id in &outcome.first_tokens {
        tokens += 1;
        if let Some(events) = clients.get(id) {
            if events.send(StreamEvent::Token { index: 0 }).is_err() {
                hung_up.push(*id);
            }
        }
    }
    for (id, decoded) in &outcome.decoded {
        tokens += 1;
        if let Some(events) = clients.get(id) {
            if events.send(StreamEvent::Token { index: *decoded }).is_err() {
                hung_up.push(*id);
            }
        }
    }
    for metrics in &outcome.completed {
        shared.slo.record(metrics);
        shared.completed.fetch_add(1, Ordering::Relaxed);
        if let Some(events) = clients.remove(&metrics.id) {
            let _ = events.send(StreamEvent::Done { metrics: *metrics });
        }
        // A request that completed with this very step has no slot to
        // reclaim; don't report it as hung up even if its sends failed.
        hung_up.retain(|id| *id != metrics.id);
    }
    shared.output_tokens.fetch_add(tokens, Ordering::Relaxed);
    hung_up
}
