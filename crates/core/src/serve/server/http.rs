//! A deliberately small HTTP/1.1 implementation over std TCP.
//!
//! Covers exactly what the serving front-end needs — request-line +
//! header + fixed-length-body parsing, plain JSON responses, and chunked
//! streaming responses — with hard caps on header and body sizes so a
//! misbehaving client cannot balloon memory. No external dependencies, in
//! keeping with the `third_party/` stub policy.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line plus all headers).
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Upper bound on a request body.
const MAX_BODY_BYTES: usize = 64 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// Request path, query string included.
    pub path: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Per-request deadline from the `X-Deadline-Ms` header, if sent:
    /// milliseconds from arrival to required completion. Overrides the
    /// server's configured default; an unparseable value is a 400.
    pub deadline_ms: Option<u64>,
}

/// Reads one head line as raw bytes, bounded by the remaining head
/// budget. Unlike `read_line`, this never buffers more than the budget
/// (a client streaming an endless line cannot balloon memory) and never
/// fails on non-UTF-8 garbage — the caller converts lossily. Returns the
/// bytes read (0 on EOF); a line that exhausts the budget is an error.
fn read_head_line<R: BufRead>(
    reader: &mut R,
    line: &mut Vec<u8>,
    budget: &mut usize,
) -> io::Result<usize> {
    line.clear();
    // One byte past the budget distinguishes "exactly at the cap" from
    // "over it" without unbounded buffering.
    let n = reader
        .by_ref()
        .take(*budget as u64 + 1)
        .read_until(b'\n', line)?;
    if n > *budget {
        return Err(bad("request head too large"));
    }
    *budget -= n;
    Ok(n)
}

/// Reads one HTTP/1.1 request from the stream.
///
/// Returns `Ok(None)` on a clean EOF before any bytes (client connected
/// and left), and an error naming the malformation otherwise: truncated
/// request or header lines, a head over [`MAX_HEAD_BYTES`] (request line
/// included), and an unparseable or over-budget `Content-Length` all
/// surface as errors the handler answers with 400 — never a panic and
/// never an unbounded read.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Option<Request>> {
    let mut reader = BufReader::new(stream);
    let mut budget = MAX_HEAD_BYTES;
    let mut line: Vec<u8> = Vec::new();

    // Request line.
    if read_head_line(&mut reader, &mut line, &mut budget)? == 0 {
        return Ok(None);
    }
    if line.last() != Some(&b'\n') {
        return Err(bad("truncated request line"));
    }
    let text = String::from_utf8_lossy(&line);
    let mut parts = text.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("empty request line"))?
        .to_owned();
    let path = parts
        .next()
        .ok_or_else(|| bad("request line missing path"))?
        .to_owned();

    // Headers until the blank line.
    let mut content_length = 0u64;
    let mut deadline_ms = None;
    loop {
        if read_head_line(&mut reader, &mut line, &mut budget)? == 0 {
            return Err(bad("connection closed mid-headers"));
        }
        if line.last() != Some(&b'\n') {
            return Err(bad("truncated header line"));
        }
        let text = String::from_utf8_lossy(&line);
        let trimmed = text.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                // Strict u64 parse: negative, non-numeric and
                // overflowing values are all malformed, not huge.
                content_length = value
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| bad("unparseable Content-Length"))?;
            }
            if name.eq_ignore_ascii_case("x-deadline-ms") {
                deadline_ms = Some(
                    value
                        .trim()
                        .parse::<u64>()
                        .map_err(|_| bad("unparseable X-Deadline-Ms"))?,
                );
            }
        }
    }

    if content_length > MAX_BODY_BYTES as u64 {
        return Err(bad("request body too large"));
    }
    let mut body = vec![0u8; content_length as usize];
    reader.read_exact(&mut body)?;
    Ok(Some(Request {
        method,
        path,
        body,
        deadline_ms,
    }))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("bad request: {msg}"))
}

/// The reason phrase of the status codes this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    }
}

/// Writes a complete JSON response with `Content-Length` and closes the
/// logical exchange (`Connection: close` — one request per connection).
pub fn respond_json(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    respond_json_with(stream, status, body, &[])
}

/// [`respond_json`] with extra response headers (name, value) — the
/// retryable 503s attach `Retry-After` this way.
pub fn respond_json_with(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    extra_headers: &[(&str, &str)],
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        reason(status),
        body.len(),
    )?;
    for (name, value) in extra_headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    write!(stream, "Connection: close\r\n\r\n{body}")?;
    stream.flush()
}

/// Starts a chunked streaming response. Follow with [`write_chunk`] per
/// token and [`end_chunks`] to terminate.
pub fn begin_stream(stream: &mut TcpStream) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()
}

/// Writes one HTTP chunk and flushes it so the client sees the token now.
pub fn write_chunk(stream: &mut TcpStream, payload: &str) -> io::Result<()> {
    write!(stream, "{:x}\r\n{payload}\r\n", payload.len())?;
    stream.flush()
}

/// Terminates a chunked response.
pub fn end_chunks(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// Client-side helper: reads the next chunk of a chunked-encoded body.
/// Returns `Ok(None)` at the terminal zero-size chunk. Lets a client
/// timestamp each token as it arrives (the load generator's TTFT).
pub fn read_one_chunk<R: BufRead>(reader: &mut R) -> io::Result<Option<String>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(bad("connection closed mid-chunk-stream"));
    }
    let size = usize::from_str_radix(line.trim(), 16).map_err(|_| bad("unparseable chunk size"))?;
    let mut payload = vec![0u8; size + 2]; // payload + CRLF
    reader.read_exact(&mut payload)?;
    if size == 0 {
        return Ok(None);
    }
    payload.truncate(size);
    Ok(Some(String::from_utf8_lossy(&payload).into_owned()))
}

/// Client-side helper: reads one whole chunked-encoded response body from
/// a buffered reader positioned after the response head, yielding each
/// chunk payload. Shared by the integration tests and `load_gen`.
pub fn read_chunks<R: BufRead>(reader: &mut R) -> io::Result<Vec<String>> {
    let mut chunks = Vec::new();
    while let Some(chunk) = read_one_chunk(reader)? {
        chunks.push(chunk);
    }
    Ok(chunks)
}

/// A parsed client-side view of a response head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseHead {
    /// HTTP status code.
    pub status: u16,
    /// Whether the body is chunked-encoded.
    pub chunked: bool,
    /// The declared `Content-Length` (0 when absent or chunked).
    pub content_length: usize,
    /// Seconds from the `Retry-After` header, when the server sent one
    /// (the retryable 503s do; clients should back off that long).
    pub retry_after: Option<u64>,
}

/// Client-side helper: reads an HTTP response head, returning the status
/// code and whether the body is chunked; leaves the reader at the body.
/// Thin wrapper over [`read_response_head_full`] for callers that don't
/// care about `Retry-After`.
pub fn read_response_head<R: BufRead>(reader: &mut R) -> io::Result<(u16, bool, usize)> {
    let head = read_response_head_full(reader)?;
    Ok((head.status, head.chunked, head.content_length))
}

/// Client-side helper: reads and fully parses an HTTP response head;
/// leaves the reader at the body.
pub fn read_response_head_full<R: BufRead>(reader: &mut R) -> io::Result<ResponseHead> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(bad("connection closed before status line"));
    }
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("unparseable status line"))?;
    let mut head = ResponseHead {
        status,
        chunked: false,
        content_length: 0,
        retry_after: None,
    };
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad("connection closed mid-response-headers"));
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            return Ok(head);
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("transfer-encoding")
                && value.trim().eq_ignore_ascii_case("chunked")
            {
                head.chunked = true;
            }
            if name.eq_ignore_ascii_case("content-length") {
                head.content_length = value.trim().parse().unwrap_or(0);
            }
            if name.eq_ignore_ascii_case("retry-after") {
                head.retry_after = value.trim().parse().ok();
            }
        }
    }
}
