//! A real TCP serving front-end over the continuous batcher.
//!
//! [`Server::start`] binds a std-TCP listener and serves a minimal
//! HTTP/1.1 API (hand-rolled, no external dependencies):
//!
//! * `POST /v1/generate` with a JSON body
//!   `{"prompt_tokens": N, "decode_tokens": M, "priority": P}` streams one
//!   chunk per output token (`{"token": i}` lines), ending with a
//!   terminal chunk: `{"done": true, ...}` with the request's realized
//!   SLO numbers, `{"timed_out": true}` when the request expired past its
//!   deadline, or `{"failed": true, ...}` when an engine panic killed it.
//!   `priority` is optional; see [`Server`] for its semantics. An
//!   `X-Deadline-Ms` header (or [`ServerConfig::default_deadline`]) sets
//!   a completion deadline; a request whose deadline already passed is
//!   answered `504` without queueing.
//! * `GET /metrics` returns a [`ServerMetrics`] JSON snapshot: counters
//!   plus queue-wait/TTFT/TPOT percentiles over completed requests.
//! * `GET /healthz` answers liveness probes: `{"ok":true,"status":"ok"}`
//!   normally, `"status":"degraded"` (with reasons, still HTTP 200) once
//!   the engine has been restarted after a panic or a worker circuit
//!   breaker is open.
//! * `POST /admin/drain` starts a graceful drain (admission closes,
//!   accepted requests run to completion).
//!
//! The engine runs in its own loop thread, the single owner of the
//! [`ContinuousBatcher`] — the same admission/merge/leave core the
//! [`ServeSim`](crate::serve::ServeSim) drives, stepped with wall-clock
//! stamps instead of the modeled clock. Connection handlers talk to it
//! over a bounded channel, so a slow client never blocks the batch.
//!
//! # Admission control
//!
//! Three gates, in order, each answering `503` with a JSON error naming
//! the gate:
//!
//! 1. **Drain**: a draining server admits nothing new.
//! 2. **Load shed**: when the oldest waiting request has queued longer
//!    than [`ServerConfig::shed_watermark`], best-effort requests
//!    (priority above [`DEFAULT_PRIORITY`]) are shed. Priority-0 traffic
//!    rides through overload at the cost of deeper queues.
//! 3. **Queue depth**: at most [`ServerConfig::queue_depth`] requests may
//!    wait for a batch slot; beyond that the queue is full.
//!
//! Load-shed and queue-full rejections are retryable and carry a
//! `Retry-After` header; draining and expired-deadline rejections are
//! not retryable on this server and don't.

mod engine_loop;
mod http;
mod metrics;

pub use http::{
    read_chunks, read_one_chunk, read_response_head, read_response_head_full, ResponseHead,
};
pub use metrics::ServerMetrics;

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use hybrimoe_hw::{SimDuration, SimTime};
use serde::Value;

use crate::serve::server::engine_loop::{StreamEvent, Submission};
use crate::serve::server::metrics::SloRecorder;
use crate::serve::{ContinuousBatcher, DEFAULT_PRIORITY};
use crate::{EngineConfig, PrefetchCounters};

/// Stack size for connection-handler threads. Handlers only parse one
/// small request and relay channel events, so a sliver of stack keeps a
/// thousand concurrent streams cheap.
const HANDLER_STACK: usize = 128 * 1024;

/// Per-connection socket read timeout: a client that stops sending
/// mid-request releases its handler thread.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// The priority assigned to `POST /v1/generate` requests that omit the
/// field: best-effort, one class above the shed-exempt
/// [`DEFAULT_PRIORITY`].
pub const DEFAULT_HTTP_PRIORITY: u8 = 1;

/// Configuration of a serving front-end.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The engine (framework preset, model, cache ratio) to serve.
    pub engine: EngineConfig,
    /// Bind address. Port 0 picks a free port; read the real one from
    /// [`ServerHandle::addr`].
    pub addr: String,
    /// Continuous-batch bound (see [`ContinuousBatcher::new`] for the
    /// validity constraints).
    pub max_batch: usize,
    /// Admission bound: requests allowed to wait for a batch slot before
    /// new arrivals get `503 queue full`.
    pub queue_depth: usize,
    /// Load-shed watermark: when the oldest waiting request has queued
    /// longer than this, best-effort arrivals are shed with `503`.
    /// `None` disables shedding.
    pub shed_watermark: Option<Duration>,
    /// Upper bound a request may ask to decode.
    pub max_decode_tokens: u32,
    /// Upper bound on a request's prompt length.
    pub max_prompt_tokens: u32,
    /// Pacing floor: every engine step takes at least this long of wall
    /// time. `None` free-runs. Useful to make overload reproducible in
    /// tests and to emulate slower hardware.
    pub min_step: Option<Duration>,
    /// Default end-to-end deadline for requests that send no
    /// `X-Deadline-Ms` header. A request past its deadline is expired at
    /// the next step boundary (terminal `timed_out` chunk, slot freed);
    /// one whose deadline has already passed at admission is rejected
    /// with `504`. `None` means no deadline.
    pub default_deadline: Option<Duration>,
    /// Seed for per-request synthetic traces.
    pub seed: u64,
}

impl ServerConfig {
    /// A config with serving defaults on an OS-assigned port.
    pub fn new(engine: EngineConfig) -> ServerConfig {
        ServerConfig {
            engine,
            addr: "127.0.0.1:0".to_owned(),
            max_batch: 16,
            queue_depth: 1024,
            shed_watermark: None,
            max_decode_tokens: 512,
            max_prompt_tokens: 4096,
            min_step: None,
            default_deadline: None,
            seed: 0,
        }
    }
}

/// State shared between the acceptor, connection handlers, and the
/// engine loop.
pub(crate) struct Shared {
    /// Admission is closed; accepted requests are running out.
    pub draining: AtomicBool,
    /// The acceptor should exit.
    closed: AtomicBool,
    /// Requests holding a waiting-queue slot (submitted or queued in the
    /// batcher, not yet admitted into the batch).
    pub queued: AtomicUsize,
    /// Requests currently decoding in the batch.
    pub running: AtomicUsize,
    pub admitted: AtomicU64,
    pub completed: AtomicU64,
    /// Requests evicted because their client hung up mid-stream.
    pub cancelled: AtomicU64,
    /// Admitted requests expired past their deadline.
    pub timed_out: AtomicU64,
    /// Admitted requests failed by an engine panic.
    pub failed: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_shed: AtomicU64,
    rejected_draining: AtomicU64,
    rejected_deadline: AtomicU64,
    /// Times the engine loop rebuilt its engine after a step panic.
    pub engine_restarts: AtomicU64,
    pub steps: AtomicU64,
    pub output_tokens: AtomicU64,
    /// Arrival stamp (nanos on the server clock) of the oldest request in
    /// the batcher's waiting queue; `u64::MAX` when the queue is empty.
    oldest_wait_nanos: AtomicU64,
    /// Background expert transfers issued / landed / wasted, mirrored
    /// from the engine's [`PrefetchCounters`] after every step.
    prefetch_issued: AtomicU64,
    prefetch_landed: AtomicU64,
    prefetch_wasted: AtomicU64,
    /// `f64::to_bits` of the learned predictor's rolling top-k accuracy;
    /// `u64::MAX` (a NaN pattern no real accuracy produces) when the
    /// engine runs no predictor.
    predictor_accuracy_bits: AtomicU64,
    /// Worker fleet health, mirrored from the engine's backend after
    /// every step; all-zero unless the remote-worker backend runs.
    workers_configured: AtomicU64,
    workers_up: AtomicU64,
    worker_requests: AtomicU64,
    worker_failovers: AtomicU64,
    worker_reconnects: AtomicU64,
    workers_breaker_open: AtomicU64,
    workers_breaker_trips: AtomicU64,
    /// Expert-cache hit ratio per GPU shard, refreshed every engine step.
    shard_hit_ratios: Mutex<Vec<f64>>,
    pub slo: SloRecorder,
    /// The server clock's origin; all `SimTime` stamps count from here.
    origin: Instant,
}

impl Shared {
    fn new() -> Shared {
        Shared {
            draining: AtomicBool::new(false),
            closed: AtomicBool::new(false),
            queued: AtomicUsize::new(0),
            running: AtomicUsize::new(0),
            admitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            rejected_shed: AtomicU64::new(0),
            rejected_draining: AtomicU64::new(0),
            rejected_deadline: AtomicU64::new(0),
            engine_restarts: AtomicU64::new(0),
            steps: AtomicU64::new(0),
            output_tokens: AtomicU64::new(0),
            oldest_wait_nanos: AtomicU64::new(u64::MAX),
            prefetch_issued: AtomicU64::new(0),
            prefetch_landed: AtomicU64::new(0),
            prefetch_wasted: AtomicU64::new(0),
            predictor_accuracy_bits: AtomicU64::new(u64::MAX),
            workers_configured: AtomicU64::new(0),
            workers_up: AtomicU64::new(0),
            worker_requests: AtomicU64::new(0),
            worker_failovers: AtomicU64::new(0),
            worker_reconnects: AtomicU64::new(0),
            workers_breaker_open: AtomicU64::new(0),
            workers_breaker_trips: AtomicU64::new(0),
            shard_hit_ratios: Mutex::new(Vec::new()),
            slo: SloRecorder::default(),
            origin: Instant::now(),
        }
    }

    /// Now, on the server clock (nanoseconds since startup).
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }

    /// Publishes the oldest waiting arrival for the shed watermark.
    pub fn store_oldest_wait(&self, arrival: Option<SimTime>) {
        let nanos = arrival.map_or(u64::MAX, SimTime::as_nanos);
        self.oldest_wait_nanos.store(nanos, Ordering::Release);
    }

    /// Publishes the engine-side prefetch/cache view. Called only by the
    /// engine loop after each step; `/metrics` handlers read the snapshot.
    pub fn store_engine_stats(
        &self,
        counters: PrefetchCounters,
        accuracy: Option<f64>,
        shards: Vec<f64>,
        workers: Option<hybrimoe_worker::WorkerHealthSnapshot>,
    ) {
        self.prefetch_issued
            .store(counters.issued, Ordering::Relaxed);
        self.prefetch_landed
            .store(counters.landed, Ordering::Relaxed);
        self.prefetch_wasted
            .store(counters.wasted, Ordering::Relaxed);
        let bits = accuracy.map_or(u64::MAX, f64::to_bits);
        self.predictor_accuracy_bits.store(bits, Ordering::Relaxed);
        let health = workers.unwrap_or_default();
        self.workers_configured
            .store(health.configured, Ordering::Relaxed);
        self.workers_up.store(health.up, Ordering::Relaxed);
        self.worker_requests
            .store(health.requests, Ordering::Relaxed);
        self.worker_failovers
            .store(health.failovers, Ordering::Relaxed);
        self.worker_reconnects
            .store(health.reconnects, Ordering::Relaxed);
        self.workers_breaker_open
            .store(health.breaker_open, Ordering::Relaxed);
        self.workers_breaker_trips
            .store(health.breaker_trips, Ordering::Relaxed);
        *self
            .shard_hit_ratios
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = shards;
    }

    /// How long the oldest waiting request has been queued.
    fn queue_delay(&self) -> SimDuration {
        let nanos = self.oldest_wait_nanos.load(Ordering::Acquire);
        if nanos == u64::MAX {
            return SimDuration::ZERO;
        }
        self.now().elapsed_since(SimTime::from_nanos(nanos))
    }

    /// A point-in-time metrics snapshot.
    fn metrics(&self) -> ServerMetrics {
        let [qw50, qw99, ttft50, ttft99, tpot50, tpot99] = self.slo.percentiles_ms();
        ServerMetrics {
            admitted: self.admitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_shed: self.rejected_shed.load(Ordering::Relaxed),
            rejected_draining: self.rejected_draining.load(Ordering::Relaxed),
            rejected_deadline: self.rejected_deadline.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed) as u64,
            running: self.running.load(Ordering::Relaxed) as u64,
            engine_steps: self.steps.load(Ordering::Relaxed),
            output_tokens: self.output_tokens.load(Ordering::Relaxed),
            draining: self.draining.load(Ordering::Relaxed),
            queue_wait_p50_ms: qw50,
            queue_wait_p99_ms: qw99,
            ttft_p50_ms: ttft50,
            ttft_p99_ms: ttft99,
            tpot_p50_ms: tpot50,
            tpot_p99_ms: tpot99,
            prefetch_issued: self.prefetch_issued.load(Ordering::Relaxed),
            prefetch_landed: self.prefetch_landed.load(Ordering::Relaxed),
            prefetch_wasted: self.prefetch_wasted.load(Ordering::Relaxed),
            predictor_topk_accuracy: {
                let bits = self.predictor_accuracy_bits.load(Ordering::Relaxed);
                (bits != u64::MAX).then(|| f64::from_bits(bits))
            },
            shard_hit_ratio: self
                .shard_hit_ratios
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone(),
            workers_configured: self.workers_configured.load(Ordering::Relaxed),
            workers_up: self.workers_up.load(Ordering::Relaxed),
            worker_requests: self.worker_requests.load(Ordering::Relaxed),
            worker_failovers: self.worker_failovers.load(Ordering::Relaxed),
            worker_reconnects: self.worker_reconnects.load(Ordering::Relaxed),
            worker_breaker_open: self.workers_breaker_open.load(Ordering::Relaxed),
            worker_breaker_trips: self.workers_breaker_trips.load(Ordering::Relaxed),
            engine_restarts: self.engine_restarts.load(Ordering::Relaxed),
        }
    }
}

/// Admission limits the connection handlers enforce.
struct Limits {
    queue_depth: usize,
    shed_watermark: Option<SimDuration>,
    max_decode_tokens: u32,
    max_prompt_tokens: u32,
    /// Deadline applied to requests without an `X-Deadline-Ms` header.
    default_deadline: Option<Duration>,
}

/// The serving front-end. See the [module docs](self) for the API and
/// the admission-control design; [`Server::start`] is the entry point.
pub struct Server;

impl Server {
    /// Binds the listener, warms up the engine, and spawns the engine
    /// loop and acceptor threads. Returns once the server is accepting.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_batch` is invalid (see
    /// [`ContinuousBatcher::new`]) or `config.queue_depth` is zero.
    pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
        assert!(config.queue_depth > 0, "queue_depth must be at least 1");
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;

        let batcher = ContinuousBatcher::new(config.engine.clone(), config.max_batch, config.seed);
        let shared = Arc::new(Shared::new());
        // Capacity matches the queue depth: handlers reserve a slot
        // before sending, so the channel can never fill past it.
        let (submit, submissions) = mpsc::sync_channel::<Submission>(config.queue_depth);

        let engine = {
            let shared = Arc::clone(&shared);
            let min_step = config.min_step;
            let engine_cfg = config.engine.clone();
            let max_batch = config.max_batch;
            let seed = config.seed;
            thread::Builder::new()
                .name("hybrimoe-engine".to_owned())
                .spawn(move || {
                    // The factory re-arms the loop with a fresh engine
                    // after a contained step panic.
                    let make_batcher =
                        move || ContinuousBatcher::new(engine_cfg.clone(), max_batch, seed);
                    engine_loop::run(batcher, make_batcher, submissions, shared, min_step)
                })?
        };

        let limits = Arc::new(Limits {
            queue_depth: config.queue_depth,
            shed_watermark: config
                .shed_watermark
                .map(|d| SimDuration::from_nanos(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))),
            max_decode_tokens: config.max_decode_tokens,
            max_prompt_tokens: config.max_prompt_tokens,
            default_deadline: config.default_deadline,
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            let submit = submit.clone();
            thread::Builder::new()
                .name("hybrimoe-accept".to_owned())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if shared.closed.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        let shared = Arc::clone(&shared);
                        let submit = submit.clone();
                        let limits = Arc::clone(&limits);
                        // Spawn consumes the stream even on failure, so
                        // keep a duplicate handle: out of threads, the
                        // client gets an honest 503 instead of a reset.
                        let fallback = stream.try_clone().ok();
                        let spawned = thread::Builder::new()
                            .name("hybrimoe-conn".to_owned())
                            .stack_size(HANDLER_STACK)
                            .spawn(move || handle_connection(stream, &shared, &submit, &limits));
                        if spawned.is_err() {
                            if let Some(mut stream) = fallback {
                                let _ = http::respond_json(
                                    &mut stream,
                                    503,
                                    &error_body("out of handler threads"),
                                );
                            }
                        }
                    }
                })?
        };

        Ok(ServerHandle {
            addr,
            shared,
            _submit: submit,
            engine: Some(engine),
            acceptor: Some(acceptor),
        })
    }
}

/// A running server. Dropping the handle shuts the server down without
/// waiting; call [`ServerHandle::shutdown`] for an orderly drain-and-join.
///
/// # Example
///
/// ```
/// use hybrimoe::serve::server::{Server, ServerConfig};
/// use hybrimoe::{EngineConfig, Framework};
/// use hybrimoe_model::ModelConfig;
///
/// let engine = EngineConfig::preset(Framework::HybriMoe, ModelConfig::tiny_test(), 0.5);
/// let handle = Server::start(ServerConfig::new(engine)).unwrap();
/// println!("listening on http://{}", handle.addr()); // OS-assigned port
/// let metrics = handle.shutdown(); // graceful drain-and-join
/// assert_eq!(metrics.completed, 0);
/// ```
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    /// Held so the engine loop only sees a disconnected submission
    /// channel once the handle (and the acceptor) are gone.
    _submit: SyncSender<Submission>,
    engine: Option<JoinHandle<()>>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the OS-assigned port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time metrics snapshot (same data as `GET /metrics`).
    pub fn metrics(&self) -> ServerMetrics {
        self.shared.metrics()
    }

    /// Closes admission. Accepted requests keep running; new ones get
    /// `503 draining`.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::Release);
    }

    /// Gracefully shuts down: drains, waits for every accepted request
    /// to complete, stops accepting, and returns the final metrics.
    pub fn shutdown(mut self) -> ServerMetrics {
        self.drain();
        if let Some(engine) = self.engine.take() {
            let _ = engine.join();
        }
        self.close_acceptor();
        self.shared.metrics()
    }

    fn close_acceptor(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
        // The acceptor blocks in accept(); a throwaway connection wakes
        // it to observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.drain();
        if self.acceptor.is_some() {
            self.close_acceptor();
        }
        if let Some(engine) = self.engine.take() {
            let _ = engine.join();
        }
    }
}

/// One accepted connection: parse a request, route it, answer, close.
fn handle_connection(
    mut stream: TcpStream,
    shared: &Shared,
    submit: &SyncSender<Submission>,
    limits: &Limits,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let request = match http::read_request(&mut stream) {
        Ok(Some(request)) => request,
        Ok(None) => return,
        Err(err) => {
            let _ = http::respond_json(&mut stream, 400, &error_body(&err.to_string()));
            return;
        }
    };
    let path = request.path.split('?').next().unwrap_or("");
    let result = match (request.method.as_str(), path) {
        ("POST", "/v1/generate") => handle_generate(&mut stream, &request, shared, submit, limits),
        ("GET", "/metrics") => {
            let body = serde_json::to_string(&shared.metrics())
                .unwrap_or_else(|_| error_body("metrics serialization failed"));
            http::respond_json(&mut stream, 200, &body)
        }
        ("GET", "/healthz") => http::respond_json(&mut stream, 200, &healthz_body(shared)),
        ("POST", "/admin/drain") => {
            shared.draining.store(true, Ordering::Release);
            http::respond_json(&mut stream, 200, "{\"draining\":true}")
        }
        (_, "/v1/generate" | "/metrics" | "/healthz" | "/admin/drain") => {
            http::respond_json(&mut stream, 405, &error_body("method not allowed"))
        }
        _ => http::respond_json(&mut stream, 404, &error_body("no such endpoint")),
    };
    // A client that hung up mid-stream is not a server error.
    drop(result);
}

/// The `/healthz` body: `ok` until the server has visibly degraded —
/// the engine was restarted after a panic, or a worker circuit breaker
/// is open. Degraded stays HTTP 200 (the server is alive and serving);
/// orchestration that wants to act on degradation reads `status`.
fn healthz_body(shared: &Shared) -> String {
    let restarts = shared.engine_restarts.load(Ordering::Relaxed);
    let breakers = shared.workers_breaker_open.load(Ordering::Relaxed);
    if restarts == 0 && breakers == 0 {
        return "{\"ok\":true,\"status\":\"ok\"}".to_owned();
    }
    let mut reasons = Vec::new();
    if restarts > 0 {
        reasons.push(format!("\"engine restarted {restarts} time(s)\""));
    }
    if breakers > 0 {
        reasons.push(format!("\"{breakers} worker circuit breaker(s) open\""));
    }
    format!(
        "{{\"ok\":true,\"status\":\"degraded\",\"reasons\":[{}]}}",
        reasons.join(",")
    )
}

/// `POST /v1/generate`: admission control, then stream tokens until the
/// request completes.
fn handle_generate(
    stream: &mut TcpStream,
    request: &http::Request,
    shared: &Shared,
    submit: &SyncSender<Submission>,
    limits: &Limits,
) -> io::Result<()> {
    let generate = match parse_generate(&request.body, limits) {
        Ok(generate) => generate,
        Err(msg) => return http::respond_json(stream, 400, &error_body(&msg)),
    };
    // The per-request header wins over the configured default.
    let deadline_budget = request
        .deadline_ms
        .map(Duration::from_millis)
        .or(limits.default_deadline);

    // Gate 0: a deadline of zero has already passed — don't queue work
    // that must miss.
    if deadline_budget == Some(Duration::ZERO) {
        shared.rejected_deadline.fetch_add(1, Ordering::Relaxed);
        return http::respond_json(stream, 504, &error_body("deadline already expired"));
    }
    // Gate 1: a draining server admits nothing.
    if shared.draining.load(Ordering::Acquire) {
        shared.rejected_draining.fetch_add(1, Ordering::Relaxed);
        return http::respond_json(stream, 503, &error_body("draining"));
    }
    // Gate 2: overload sheds best-effort traffic by queue delay. Shed is
    // transient, so the 503 invites a retry.
    if generate.priority > DEFAULT_PRIORITY {
        if let Some(watermark) = limits.shed_watermark {
            if shared.queue_delay() > watermark {
                shared.rejected_shed.fetch_add(1, Ordering::Relaxed);
                return http::respond_json_with(
                    stream,
                    503,
                    &error_body("shed: queue delay over watermark"),
                    &[("Retry-After", "1")],
                );
            }
        }
    }
    // Gate 3: reserve a waiting-queue slot or reject (also retryable).
    let reserved = shared
        .queued
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |q| {
            (q < limits.queue_depth).then_some(q + 1)
        });
    if reserved.is_err() {
        shared.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
        return http::respond_json_with(
            stream,
            503,
            &error_body("queue full"),
            &[("Retry-After", "1")],
        );
    }

    let (events_tx, events_rx) = mpsc::channel::<StreamEvent>();
    let arrival = shared.now();
    let submission = Submission {
        arrival,
        prompt_tokens: generate.prompt_tokens,
        decode_tokens: generate.decode_tokens,
        priority: generate.priority,
        deadline: deadline_budget.map(|d| {
            arrival + SimDuration::from_nanos(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
        }),
        events: events_tx,
    };
    if let Err(err) = submit.try_send(submission) {
        shared.queued.fetch_sub(1, Ordering::AcqRel);
        let (counter, msg, retryable) = match err {
            // Unreachable by construction (reservation bounds the channel),
            // but never silently drop an accepted request.
            TrySendError::Full(_) => (&shared.rejected_queue_full, "queue full", true),
            TrySendError::Disconnected(_) => (&shared.rejected_draining, "shutting down", false),
        };
        counter.fetch_add(1, Ordering::Relaxed);
        let headers: &[(&str, &str)] = if retryable {
            &[("Retry-After", "1")]
        } else {
            &[]
        };
        return http::respond_json_with(stream, 503, &error_body(msg), headers);
    }

    stream_events(stream, &events_rx)
}

/// Streams engine events for one admitted request as HTTP chunks.
fn stream_events(stream: &mut TcpStream, events: &mpsc::Receiver<StreamEvent>) -> io::Result<()> {
    http::begin_stream(stream)?;
    loop {
        match events.recv() {
            Ok(StreamEvent::Token { index }) => {
                http::write_chunk(stream, &format!("{{\"token\":{index}}}\n"))?;
            }
            Ok(StreamEvent::Done { metrics }) => {
                http::write_chunk(
                    stream,
                    &format!(
                        "{{\"done\":true,\"id\":{},\"queue_wait_ms\":{:.6},\"ttft_ms\":{:.6},\"tpot_ms\":{:.6},\"latency_ms\":{:.6}}}\n",
                        metrics.id,
                        metrics.queue_wait().as_millis_f64(),
                        metrics.ttft().as_millis_f64(),
                        metrics.tpot().as_millis_f64(),
                        metrics.latency().as_millis_f64(),
                    ),
                )?;
                return http::end_chunks(stream);
            }
            Ok(StreamEvent::TimedOut) => {
                http::write_chunk(stream, "{\"timed_out\":true}\n")?;
                return http::end_chunks(stream);
            }
            Ok(StreamEvent::Failed) => {
                http::write_chunk(stream, "{\"failed\":true,\"error\":\"engine restarted\"}\n")?;
                return http::end_chunks(stream);
            }
            // The engine loop is gone mid-request: terminate the stream
            // so the client sees a well-formed (if short) response.
            Err(_) => return http::end_chunks(stream),
        }
    }
}

/// A validated `POST /v1/generate` body.
struct Generate {
    prompt_tokens: u32,
    decode_tokens: u32,
    priority: u8,
}

/// Parses and validates a generate request. Unknown fields are ignored;
/// `priority` defaults to [`DEFAULT_HTTP_PRIORITY`].
fn parse_generate(body: &[u8], limits: &Limits) -> Result<Generate, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    let value: Value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let Value::Map(map) = &value else {
        return Err("body must be a JSON object".to_owned());
    };
    let field_u64 = |name: &str| -> Result<Option<u64>, String> {
        match map.iter().find(|(k, _)| k == name) {
            None => Ok(None),
            Some((_, v)) => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| format!("`{name}` must be a non-negative integer")),
        }
    };

    let prompt_tokens = field_u64("prompt_tokens")?.ok_or("missing `prompt_tokens`")?;
    if prompt_tokens == 0 || prompt_tokens > limits.max_prompt_tokens as u64 {
        return Err(format!(
            "`prompt_tokens` must be in 1..={}",
            limits.max_prompt_tokens
        ));
    }
    let decode_tokens = field_u64("decode_tokens")?.ok_or("missing `decode_tokens`")?;
    if decode_tokens > limits.max_decode_tokens as u64 {
        return Err(format!(
            "`decode_tokens` must be at most {}",
            limits.max_decode_tokens
        ));
    }
    let priority = match field_u64("priority")? {
        None => DEFAULT_HTTP_PRIORITY,
        Some(p) => u8::try_from(p).map_err(|_| "`priority` must fit in 0..=255".to_owned())?,
    };
    Ok(Generate {
        prompt_tokens: prompt_tokens as u32,
        decode_tokens: decode_tokens as u32,
        priority,
    })
}

fn error_body(msg: &str) -> String {
    // The messages are server-authored ASCII; escape just in case.
    let escaped: String = msg
        .chars()
        .flat_map(|c| {
            if c == '"' || c == '\\' {
                vec!['\\', c]
            } else {
                vec![c]
            }
        })
        .collect();
    format!("{{\"error\":\"{escaped}\"}}")
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn limits() -> Limits {
        Limits {
            queue_depth: 4,
            shed_watermark: None,
            max_decode_tokens: 64,
            max_prompt_tokens: 128,
            default_deadline: None,
        }
    }

    #[test]
    fn generate_body_parses_with_default_priority() {
        let g = parse_generate(br#"{"prompt_tokens": 8, "decode_tokens": 4}"#, &limits()).unwrap();
        assert_eq!(g.prompt_tokens, 8);
        assert_eq!(g.decode_tokens, 4);
        assert_eq!(g.priority, DEFAULT_HTTP_PRIORITY);
    }

    #[test]
    fn generate_body_validates_ranges() {
        let l = limits();
        assert!(parse_generate(br#"{"prompt_tokens": 0, "decode_tokens": 4}"#, &l).is_err());
        assert!(parse_generate(br#"{"prompt_tokens": 9999, "decode_tokens": 4}"#, &l).is_err());
        assert!(parse_generate(br#"{"prompt_tokens": 8, "decode_tokens": 65}"#, &l).is_err());
        assert!(parse_generate(br#"{"prompt_tokens": 8}"#, &l).is_err());
        assert!(parse_generate(b"not json", &l).is_err());
        assert!(parse_generate(br#"[1, 2]"#, &l).is_err());
        let g = parse_generate(
            br#"{"prompt_tokens": 8, "decode_tokens": 0, "priority": 0}"#,
            &l,
        )
        .unwrap();
        assert_eq!(g.decode_tokens, 0);
        assert_eq!(g.priority, 0);
    }

    #[test]
    fn error_bodies_escape_quotes() {
        assert_eq!(error_body(r#"bad "field""#), r#"{"error":"bad \"field\""}"#);
    }
}
