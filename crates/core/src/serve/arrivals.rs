//! Seeded request arrival processes.

use hybrimoe_hw::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The distribution family of an [`ArrivalProcess`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Evenly spaced arrivals: request `i` arrives at `i * interval`.
    Deterministic,
    /// A Poisson process: i.i.d. exponential inter-arrival gaps with the
    /// given mean (rate `1 / mean_interval`), starting from the first gap.
    Poisson,
}

/// How request arrival times are drawn.
///
/// Both processes are pure functions of their parameters and the seed, so
/// serving experiments replay bit-for-bit. The process remembers the
/// *requested* arrival rate alongside the nanosecond-quantized
/// inter-arrival gap it draws from: a rate like 3.0 req/s does not divide
/// one second in nanoseconds, so recomputing the rate from the quantized
/// gap would round-trip to 3.000000003 — reports carry the exact request
/// instead (see [`ArrivalProcess::rate_per_sec`]).
///
/// # Example
///
/// ```
/// use hybrimoe::serve::ArrivalProcess;
/// use hybrimoe_hw::SimDuration;
///
/// let det = ArrivalProcess::deterministic(SimDuration::from_millis(10));
/// let times = det.schedule(3, 1);
/// assert_eq!(times[1] - times[0], SimDuration::from_millis(10));
///
/// let poisson = ArrivalProcess::poisson(SimDuration::from_millis(10));
/// assert_eq!(poisson.schedule(5, 7), poisson.schedule(5, 7)); // seeded
///
/// // The requested rate round-trips exactly even when the gap quantizes.
/// let p = ArrivalProcess::per_second(3.0, true);
/// assert_eq!(p.rate_per_sec(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalProcess {
    kind: ArrivalKind,
    mean_interval: SimDuration,
    rate_per_sec: f64,
}

impl ArrivalProcess {
    /// Evenly spaced arrivals with the given gap.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero-length (the rate would be infinite).
    pub fn deterministic(interval: SimDuration) -> ArrivalProcess {
        ArrivalProcess::with_kind(ArrivalKind::Deterministic, interval)
    }

    /// A Poisson process with the given mean inter-arrival gap.
    ///
    /// # Panics
    ///
    /// Panics if `mean_interval` is zero-length.
    pub fn poisson(mean_interval: SimDuration) -> ArrivalProcess {
        ArrivalProcess::with_kind(ArrivalKind::Poisson, mean_interval)
    }

    fn with_kind(kind: ArrivalKind, mean_interval: SimDuration) -> ArrivalProcess {
        assert!(
            mean_interval > SimDuration::ZERO,
            "inter-arrival gap must be positive"
        );
        ArrivalProcess {
            kind,
            mean_interval,
            rate_per_sec: 1.0 / mean_interval.as_secs_f64(),
        }
    }

    /// An arrival process of `rate` requests per second: deterministic if
    /// `poisson` is false, exponential gaps otherwise. The exact `rate` is
    /// carried through to reports even though the drawn gap quantizes to
    /// whole nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive.
    pub fn per_second(rate: f64, poisson: bool) -> ArrivalProcess {
        assert!(
            rate.is_finite() && rate > 0.0,
            "arrival rate must be positive, got {rate}"
        );
        let gap = SimDuration::from_secs_f64(1.0 / rate);
        let kind = if poisson {
            ArrivalKind::Poisson
        } else {
            ArrivalKind::Deterministic
        };
        let mut process = ArrivalProcess::with_kind(kind, gap);
        process.rate_per_sec = rate;
        process
    }

    /// The distribution family.
    pub fn kind(&self) -> ArrivalKind {
        self.kind
    }

    /// The mean inter-arrival gap (quantized to whole nanoseconds).
    pub fn mean_interval(&self) -> SimDuration {
        self.mean_interval
    }

    /// The arrival rate in requests per second. For processes built with
    /// [`ArrivalProcess::per_second`] this is the *requested* rate, exact
    /// even when `1 / rate` seconds does not quantize to nanoseconds.
    pub fn rate_per_sec(&self) -> f64 {
        self.rate_per_sec
    }

    /// A short stable name for reports.
    pub fn name(&self) -> &'static str {
        match self.kind {
            ArrivalKind::Deterministic => "deterministic",
            ArrivalKind::Poisson => "poisson",
        }
    }

    /// Draws `count` arrival times, non-decreasing from the clock origin.
    pub fn schedule(&self, count: usize, seed: u64) -> Vec<SimTime> {
        match self.kind {
            ArrivalKind::Deterministic => (0..count as u64)
                .map(|i| SimTime::ZERO + self.mean_interval * i)
                .collect(),
            ArrivalKind::Poisson => {
                let mut rng = StdRng::seed_from_u64(seed ^ 0xA881_11A7);
                let mut now = SimTime::ZERO;
                (0..count)
                    .map(|_| {
                        // Exponential gap via inverse transform; the draw is
                        // in (0, 1] so the log is finite.
                        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                        now += self.mean_interval.mul_f64(-u.ln());
                        now
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_spacing_is_exact() {
        let p = ArrivalProcess::deterministic(SimDuration::from_micros(250));
        let t = p.schedule(4, 99);
        assert_eq!(t[0], SimTime::ZERO);
        for w in t.windows(2) {
            assert_eq!(w[1] - w[0], SimDuration::from_micros(250));
        }
    }

    #[test]
    fn poisson_is_seeded_and_monotone() {
        let p = ArrivalProcess::poisson(SimDuration::from_millis(1));
        let a = p.schedule(32, 5);
        let b = p.schedule(32, 5);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        let c = p.schedule(32, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_mean_gap_is_roughly_right() {
        let mean = SimDuration::from_millis(2);
        let p = ArrivalProcess::poisson(mean);
        let t = p.schedule(2000, 11);
        let total = t.last().unwrap().elapsed_since(SimTime::ZERO);
        let avg_ns = total.as_nanos() as f64 / 2000.0;
        let rel = avg_ns / mean.as_nanos() as f64;
        assert!((0.9..1.1).contains(&rel), "mean gap off: {rel}");
    }

    #[test]
    fn per_second_builds_both_kinds() {
        let d = ArrivalProcess::per_second(100.0, false);
        assert_eq!(d.mean_interval(), SimDuration::from_millis(10));
        assert_eq!(d.name(), "deterministic");
        assert_eq!(d.kind(), ArrivalKind::Deterministic);
        let p = ArrivalProcess::per_second(100.0, true);
        assert_eq!(p.mean_interval(), SimDuration::from_millis(10));
        assert_eq!(p.name(), "poisson");
        assert_eq!(p.kind(), ArrivalKind::Poisson);
    }

    /// The motivating bug: 3.0 req/s quantizes to a 333_333_333 ns gap,
    /// whose reciprocal is 3.000000003 — the process must report the
    /// requested 3.0 exactly, not the round-tripped value.
    #[test]
    fn requested_rate_round_trips_exactly() {
        let p = ArrivalProcess::per_second(3.0, true);
        assert_eq!(p.rate_per_sec(), 3.0);
        // The naive recomputation really would drift (guards the premise).
        let naive = 1.0 / p.mean_interval().as_secs_f64();
        assert_ne!(naive, 3.0, "gap unexpectedly divides 1e9");
        // Constructors from an explicit gap derive the rate from the gap.
        let d = ArrivalProcess::deterministic(SimDuration::from_millis(10));
        assert_eq!(d.rate_per_sec(), 100.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = ArrivalProcess::per_second(0.0, false);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = ArrivalProcess::deterministic(SimDuration::ZERO);
    }
}
