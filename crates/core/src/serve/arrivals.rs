//! Seeded request arrival processes.

use hybrimoe_hw::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How request arrival times are drawn.
///
/// Both processes are pure functions of their parameters and the seed, so
/// serving experiments replay bit-for-bit.
///
/// # Example
///
/// ```
/// use hybrimoe::serve::ArrivalProcess;
/// use hybrimoe_hw::SimDuration;
///
/// let det = ArrivalProcess::Deterministic {
///     interval: SimDuration::from_millis(10),
/// };
/// let times = det.schedule(3, 1);
/// assert_eq!(times[1] - times[0], SimDuration::from_millis(10));
///
/// let poisson = ArrivalProcess::Poisson {
///     mean_interval: SimDuration::from_millis(10),
/// };
/// assert_eq!(poisson.schedule(5, 7), poisson.schedule(5, 7)); // seeded
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Evenly spaced arrivals: request `i` arrives at `i * interval`.
    Deterministic {
        /// Spacing between consecutive arrivals.
        interval: SimDuration,
    },
    /// A Poisson process: i.i.d. exponential inter-arrival gaps with the
    /// given mean (rate `1 / mean_interval`), starting from the first gap.
    Poisson {
        /// Mean inter-arrival gap.
        mean_interval: SimDuration,
    },
}

impl ArrivalProcess {
    /// An arrival process of `rate` requests per second: deterministic if
    /// `poisson` is false, exponential gaps otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive.
    pub fn per_second(rate: f64, poisson: bool) -> ArrivalProcess {
        assert!(
            rate.is_finite() && rate > 0.0,
            "arrival rate must be positive, got {rate}"
        );
        let gap = SimDuration::from_secs_f64(1.0 / rate);
        if poisson {
            ArrivalProcess::Poisson { mean_interval: gap }
        } else {
            ArrivalProcess::Deterministic { interval: gap }
        }
    }

    /// The mean inter-arrival gap.
    pub fn mean_interval(&self) -> SimDuration {
        match self {
            ArrivalProcess::Deterministic { interval } => *interval,
            ArrivalProcess::Poisson { mean_interval } => *mean_interval,
        }
    }

    /// A short stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalProcess::Deterministic { .. } => "deterministic",
            ArrivalProcess::Poisson { .. } => "poisson",
        }
    }

    /// Draws `count` arrival times, non-decreasing from the clock origin.
    pub fn schedule(&self, count: usize, seed: u64) -> Vec<SimTime> {
        match self {
            ArrivalProcess::Deterministic { interval } => (0..count as u64)
                .map(|i| SimTime::ZERO + *interval * i)
                .collect(),
            ArrivalProcess::Poisson { mean_interval } => {
                let mut rng = StdRng::seed_from_u64(seed ^ 0xA881_11A7);
                let mut now = SimTime::ZERO;
                (0..count)
                    .map(|_| {
                        // Exponential gap via inverse transform; the draw is
                        // in (0, 1] so the log is finite.
                        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                        now += mean_interval.mul_f64(-u.ln());
                        now
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_spacing_is_exact() {
        let p = ArrivalProcess::Deterministic {
            interval: SimDuration::from_micros(250),
        };
        let t = p.schedule(4, 99);
        assert_eq!(t[0], SimTime::ZERO);
        for w in t.windows(2) {
            assert_eq!(w[1] - w[0], SimDuration::from_micros(250));
        }
    }

    #[test]
    fn poisson_is_seeded_and_monotone() {
        let p = ArrivalProcess::Poisson {
            mean_interval: SimDuration::from_millis(1),
        };
        let a = p.schedule(32, 5);
        let b = p.schedule(32, 5);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        let c = p.schedule(32, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_mean_gap_is_roughly_right() {
        let mean = SimDuration::from_millis(2);
        let p = ArrivalProcess::Poisson {
            mean_interval: mean,
        };
        let t = p.schedule(2000, 11);
        let total = t.last().unwrap().elapsed_since(SimTime::ZERO);
        let avg_ns = total.as_nanos() as f64 / 2000.0;
        let rel = avg_ns / mean.as_nanos() as f64;
        assert!((0.9..1.1).contains(&rel), "mean gap off: {rel}");
    }

    #[test]
    fn per_second_builds_both_kinds() {
        let d = ArrivalProcess::per_second(100.0, false);
        assert_eq!(d.mean_interval(), SimDuration::from_millis(10));
        assert_eq!(d.name(), "deterministic");
        let p = ArrivalProcess::per_second(100.0, true);
        assert_eq!(p.mean_interval(), SimDuration::from_millis(10));
        assert_eq!(p.name(), "poisson");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = ArrivalProcess::per_second(0.0, false);
    }
}
