//! Plain-text report tables for experiment binaries and examples.

use std::fmt;

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use hybrimoe::report::Table;
///
/// let mut t = Table::new(vec!["model".into(), "latency".into()]);
/// t.push_row(vec!["DeepSeek".into(), "1.23s".into()]);
/// let s = t.to_string();
/// assert!(s.contains("DeepSeek"));
/// assert!(s.contains("model"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn push_row(&mut self, mut row: Vec<String>) {
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if cell.len() > w[i] {
                    w[i] = cell.len();
                }
            }
        }
        w
    }

    /// Renders as GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push('|');
        for h in &self.headers {
            out.push_str(&format!(" {h} |"));
        }
        out.push('\n');
        out.push('|');
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push('|');
            for cell in row {
                out.push_str(&format!(" {cell} |"));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let line = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            for w in &widths {
                write!(f, "+-{}-", "-".repeat(*w))?;
            }
            writeln!(f, "+")
        };
        line(f)?;
        for (h, w) in self.headers.iter().zip(widths.iter()) {
            write!(f, "| {h:w$} ")?;
        }
        writeln!(f, "|")?;
        line(f)?;
        for row in &self.rows {
            for (cell, w) in row.iter().zip(widths.iter()) {
                write!(f, "| {cell:w$} ")?;
            }
            writeln!(f, "|")?;
        }
        line(f)
    }
}

/// Renders serving summaries as an aligned comparison table, one row per
/// experiment — the human-readable companion of the JSON a sweep emits.
///
/// # Example
///
/// ```
/// use hybrimoe::report::serve_table;
/// use hybrimoe::serve::{ArrivalProcess, ServeConfig, ServeSim};
/// use hybrimoe::{EngineConfig, Framework};
/// use hybrimoe_hw::SimDuration;
/// use hybrimoe_model::ModelConfig;
///
/// let report = ServeSim::new(ServeConfig {
///     engine: EngineConfig::preset(Framework::HybriMoe, ModelConfig::tiny_test(), 0.5),
///     arrivals: ArrivalProcess::deterministic(SimDuration::from_millis(2)),
///     requests: 2,
///     prompt_tokens: 8,
///     decode_tokens: 2,
///     max_batch: 2,
///     seed: 1,
/// })
/// .run();
/// let table = serve_table(&[("HybriMoE".into(), report.summary())]);
/// assert!(table.to_string().contains("HybriMoE"));
/// ```
pub fn serve_table(rows: &[(String, crate::serve::ServeSummary)]) -> Table {
    let mut table = Table::new(vec![
        "framework".into(),
        "arrivals".into(),
        "rate/s".into(),
        "ratio".into(),
        "gpus".into(),
        "batch".into(),
        "tok/s".into(),
        "TTFT p50".into(),
        "TTFT p99".into(),
        "TPOT p50".into(),
        "latency p99".into(),
    ]);
    for (label, s) in rows {
        table.push_row(vec![
            label.clone(),
            s.arrivals.clone(),
            format!("{:.1}", s.arrival_rate_per_sec),
            format!("{:.2}", s.cache_ratio),
            format!("{}", s.num_gpus),
            format!("{:.1}", s.mean_batch),
            format!("{:.1}", s.output_tokens_per_sec),
            format!("{:.1}ms", s.ttft_p50_ms),
            format!("{:.1}ms", s.ttft_p99_ms),
            format!("{:.1}ms", s.tpot_p50_ms),
            format!("{:.1}ms", s.latency_p99_ms),
        ]);
    }
    table
}

/// Formats a speedup factor as e.g. `"1.33x"`.
pub fn speedup(baseline_ns: u64, ours_ns: u64) -> String {
    if ours_ns == 0 {
        return "inf".to_owned();
    }
    format!("{:.2}x", baseline_ns as f64 / ours_ns as f64)
}

/// Formats a fraction as a percentage, e.g. `"45.0%"`.
pub fn percent(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_padding() {
        let mut t = Table::new(vec!["a".into(), "bb".into()]);
        t.push_row(vec!["xxx".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let s = t.to_string();
        assert!(s.contains("xxx"));
        // Header separator lines exist.
        assert!(s.contains("+-"));
    }

    #[test]
    fn markdown_shape() {
        let mut t = Table::new(vec!["h1".into(), "h2".into()]);
        t.push_row(vec!["a".into(), "b".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("| h1 | h2 |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| a | b |"));
    }

    #[test]
    fn helpers() {
        assert_eq!(speedup(200, 100), "2.00x");
        assert_eq!(speedup(100, 0), "inf");
        assert_eq!(percent(0.4567), "45.7%");
    }
}
