//! # hybrimoe
//!
//! A reproduction of **HybriMoE: Hybrid CPU-GPU Scheduling and Cache
//! Management for Efficient MoE Inference** (Zhong et al., DAC 2025).
//!
//! Mixture-of-Experts models do not fit in GPU memory on edge platforms;
//! the practical question is what to do on an expert-cache miss: move the
//! weights over PCIe, or compute on the CPU where the weights already live.
//! HybriMoE answers it per expert, per layer, with three techniques:
//!
//! 1. **hybrid intra-layer scheduling** — a greedy timeline-filling
//!    simulation maps each activated expert to CPU, GPU, or
//!    transfer-then-GPU ([`hybrimoe_sched::HybridScheduler`]);
//! 2. **impact-driven prefetching** — idle PCIe time preloads the experts
//!    whose caching most reduces the *simulated* makespan of upcoming
//!    layers ([`hybrimoe_sched::ImpactDrivenPrefetcher`]);
//! 3. **score-aware caching (MRS)** — eviction by an exponentially
//!    averaged router-score estimate ([`hybrimoe_cache::Mrs`]).
//!
//! This crate ties the substrates together into an [`Engine`] that runs
//! prefill and decode over activation traces, plus [`Framework`] presets
//! reproducing the paper's baselines (llama.cpp, AdapMoE, kTransformers).
//!
//! ## Quickstart
//!
//! ```
//! use hybrimoe::{Engine, EngineConfig, Framework};
//! use hybrimoe_model::ModelConfig;
//! use hybrimoe_trace::TraceGenerator;
//!
//! let model = ModelConfig::deepseek();
//! let config = EngineConfig::preset(Framework::HybriMoe, model.clone(), 0.25);
//! let mut engine = Engine::new(config);
//!
//! let trace = TraceGenerator::new(model, 42).decode_trace(8);
//! let metrics = engine.run(&trace);
//! assert_eq!(metrics.steps.len(), 8);
//! assert!(metrics.total.as_nanos() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
mod config;
mod engine;
mod metrics;
pub mod realexec;
#[deny(clippy::unwrap_used)]
pub mod remote;
pub mod report;
#[deny(clippy::unwrap_used)]
pub mod serve;
mod session;

pub use backend::{
    CpuMeasurement, ExecutionBackend, LayerOutcome, LayerRequest, RealCpuBackend, SimBackend,
};
pub use config::{
    BackendKind, CachePolicyKind, EngineConfig, Framework, PlacementKind, PrefetcherKind,
    SchedulerKind, DEFAULT_MAX_INFLIGHT, DEFAULT_PREFETCH_LOOKAHEAD,
};
pub use engine::{Engine, PrefetchCounters};
pub use metrics::{StageMetrics, StepMetrics};
pub use realexec::RealExecOptions;
pub use remote::{RemoteBackend, RemoteLayerExecutor, RemoteWorkerOptions};
pub use session::Session;

// Re-export the substrate crates so downstream users need only one
// dependency.
pub use hybrimoe_cache as cache;
pub use hybrimoe_fault as fault;
pub use hybrimoe_hw as hw;
pub use hybrimoe_kernels as kernels;
pub use hybrimoe_model as model;
pub use hybrimoe_sched as sched;
pub use hybrimoe_trace as trace;
pub use hybrimoe_worker as worker;
