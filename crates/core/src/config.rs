//! Engine configuration and framework presets.

use hybrimoe_cache::{CachePolicy, Lfu, Lru, Mrs};
use hybrimoe_fault::FaultPlan;
use hybrimoe_hw::Platform;
use hybrimoe_model::ModelConfig;
use hybrimoe_sched::baselines::{FixedMappingScheduler, GpuOnlyScheduler, StaticSplitScheduler};
use hybrimoe_sched::{
    HybridScheduler, ImpactDrivenPrefetcher, NextLayerTopKPrefetcher, NoPrefetcher,
    PredictivePrefetcher, Prefetcher, Scheduler,
};
use serde::{Deserialize, Serialize};

use crate::backend::{ExecutionBackend, RealCpuBackend, SimBackend};
use crate::realexec::RealExecOptions;
use crate::remote::{RemoteBackend, RemoteWorkerOptions};

/// Which execution backend runs each layer's schedule (see
/// [`crate::backend`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackendKind {
    /// Analytic simulation on the platform cost model (the default; the
    /// only backend that scales to the paper's full-size models).
    Sim,
    /// Real CPU execution with the quantized kernels; needs traces carrying
    /// [`TokenStates`](hybrimoe_trace::TokenStates) and a model that fits
    /// the weight budget in [`EngineConfig::real_exec`].
    RealCpu,
    /// Real execution with expert batches dispatched to out-of-process
    /// workers ([`EngineConfig::remote_workers`]), falling back to local
    /// kernels per expert when a worker is down. Same trace requirements
    /// as [`BackendKind::RealCpu`].
    RemoteWorkers,
}

impl BackendKind {
    /// Instantiates the backend for an engine configuration.
    pub fn build(self, config: &EngineConfig) -> Box<dyn ExecutionBackend> {
        match self {
            BackendKind::Sim => Box::new(SimBackend::new()),
            BackendKind::RealCpu => Box::new(RealCpuBackend::new(
                config.model.clone(),
                config.seed,
                config.real_exec,
            )),
            BackendKind::RemoteWorkers => Box::new(RemoteBackend::new(
                config.model.clone(),
                config.seed,
                config.real_exec,
                &config.remote_workers,
            )),
        }
    }

    /// Whether this backend consumes per-token hidden states (so trace
    /// generation must capture them).
    pub fn needs_token_states(self) -> bool {
        matches!(self, BackendKind::RealCpu | BackendKind::RemoteWorkers)
    }
}

/// Which intra-layer scheduler the engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// HybriMoE's greedy timeline-filling scheduler (§IV-B).
    Hybrid,
    /// kTransformers-style fixed mapping (cached→GPU, uncached→CPU).
    FixedMapping,
    /// AdapMoE-style GPU-only with on-demand loading.
    GpuOnly,
    /// llama.cpp-style static whole-layer split.
    StaticSplit,
}

impl SchedulerKind {
    /// Instantiates the scheduler.
    pub fn build(self) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Hybrid => Box::new(HybridScheduler::new()),
            SchedulerKind::FixedMapping => Box::new(FixedMappingScheduler::new()),
            SchedulerKind::GpuOnly => Box::new(GpuOnlyScheduler::new()),
            SchedulerKind::StaticSplit => Box::new(StaticSplitScheduler::new()),
        }
    }
}

/// Which prefetcher the engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrefetcherKind {
    /// No prefetching.
    None,
    /// Probability-ranked prefetch of the next layer's top experts.
    NextLayerTopK,
    /// HybriMoE's impact-driven simulation-based prefetch (§IV-C).
    ImpactDriven,
    /// Impact-driven ranking fed by the learned cross-layer
    /// [`TransitionPredictor`](hybrimoe_sched::TransitionPredictor) instead
    /// of the oracle-decay lookahead: predicted layers come from EWMA
    /// expert-transition matrices and the distance discount is the
    /// predictor's self-measured confidence.
    Predictive,
}

impl PrefetcherKind {
    /// A stable lowercase label for reports and benchmark rows.
    pub fn name(self) -> &'static str {
        match self {
            PrefetcherKind::None => "none",
            PrefetcherKind::NextLayerTopK => "next-layer-topk",
            PrefetcherKind::ImpactDriven => "impact-driven",
            PrefetcherKind::Predictive => "predictive",
        }
    }

    /// Instantiates the prefetcher.
    pub fn build(self) -> Box<dyn Prefetcher> {
        match self {
            PrefetcherKind::None => Box::new(NoPrefetcher::new()),
            PrefetcherKind::NextLayerTopK => Box::new(NextLayerTopKPrefetcher::new()),
            PrefetcherKind::ImpactDriven => Box::new(ImpactDrivenPrefetcher::new()),
            PrefetcherKind::Predictive => Box::new(PredictivePrefetcher::new()),
        }
    }
}

/// Which cache replacement policy the engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CachePolicyKind {
    /// Least recently used.
    Lru,
    /// Least frequently used.
    Lfu,
    /// HybriMoE's Minus Recent Score (§IV-D).
    Mrs,
}

impl CachePolicyKind {
    /// Instantiates the policy. `alpha` is the MRS averaging coefficient
    /// (ignored by LRU/LFU).
    pub fn build(self, alpha: f64) -> Box<dyn CachePolicy> {
        match self {
            CachePolicyKind::Lru => Box::new(Lru::new()),
            CachePolicyKind::Lfu => Box::new(Lfu::new()),
            CachePolicyKind::Mrs => Box::new(Mrs::new(alpha)),
        }
    }
}

/// How the cache is filled before measurement starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlacementKind {
    /// Whole layers resident from layer 0 up (llama.cpp `-ngl` style).
    WholeLayers,
    /// Per-layer quotas filled with the highest-frequency experts of a
    /// warmup trace (kTransformers style; also the warm start of the
    /// dynamic frameworks).
    PerLayerFrequency,
}

/// The four systems the paper evaluates (§VI-A3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Framework {
    /// llama.cpp: static whole-layer CPU/GPU split, no expert-level
    /// decisions.
    LlamaCpp,
    /// AdapMoE: GPU-centric, adaptive prefetching and LRU caching.
    AdapMoe,
    /// kTransformers: fixed hot-expert mapping, CPU computes misses.
    KTransformers,
    /// This paper.
    HybriMoe,
}

impl Framework {
    /// All frameworks in the order the paper's figures list them.
    pub const ALL: [Framework; 4] = [
        Framework::LlamaCpp,
        Framework::AdapMoe,
        Framework::KTransformers,
        Framework::HybriMoe,
    ];

    /// A short stable name for reports.
    pub const fn name(self) -> &'static str {
        match self {
            Framework::LlamaCpp => "llama.cpp",
            Framework::AdapMoe => "AdapMoE",
            Framework::KTransformers => "KTransformers",
            Framework::HybriMoe => "HybriMoE",
        }
    }
}

impl std::fmt::Display for Framework {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full configuration of an [`Engine`](crate::Engine).
///
/// Use [`EngineConfig::preset`] for the paper's frameworks and the builder
/// methods for ablations.
///
/// # Example
///
/// ```
/// use hybrimoe::{EngineConfig, Framework, SchedulerKind};
/// use hybrimoe_model::ModelConfig;
///
/// // kTransformers baseline with only the hybrid scheduler enabled
/// // (the "Baseline+Scheduling" row of Table III):
/// let config = EngineConfig::preset(Framework::KTransformers, ModelConfig::qwen2(), 0.25)
///     .with_scheduler(SchedulerKind::Hybrid);
/// assert_eq!(config.scheduler, SchedulerKind::Hybrid);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// The model architecture.
    pub model: ModelConfig,
    /// The hardware platform.
    pub platform: Platform,
    /// Fraction of all routed experts the GPU cache holds (25/50/75 % in
    /// the paper).
    pub cache_ratio: f64,
    /// Intra-layer scheduler.
    pub scheduler: SchedulerKind,
    /// Inter-layer prefetcher.
    pub prefetcher: PrefetcherKind,
    /// Cache replacement policy.
    pub cache_policy: CachePolicyKind,
    /// Initial cache placement.
    pub placement: PlacementKind,
    /// Whether the initial placement is pinned (static mapping; kTrans and
    /// llama.cpp never change their placement).
    pub pinned: bool,
    /// Whether missed experts computed on the CPU are refilled into the
    /// cache over leftover idle PCIe time (part of the paper's cache
    /// management; static frameworks have it off).
    pub refill_on_miss: bool,
    /// Whether on-demand transfers enter the cache. kTransformers and
    /// llama.cpp keep their placements static and discard on-demand loads;
    /// AdapMoE and HybriMoE cache them.
    pub demand_inserts: bool,
    /// Whether cache insertions during a *prefill* batch may evict resident
    /// experts. HybriMoE restricts prefill insertions to free slots (each
    /// layer runs once per pass, so evicting a later layer's expert is
    /// strictly harmful); AdapMoE's LRU caches every on-demand load
    /// unconditionally, which is one reason its prefill trails.
    pub prefill_evict_inserts: bool,
    /// Whether attention runs on the CPU for CPU-mapped layers (llama.cpp
    /// semantics) instead of always on the GPU.
    pub attention_follows_layer: bool,
    /// MRS averaging coefficient α (Eq. 3).
    pub mrs_alpha: f64,
    /// Seed for the warmup trace that drives initial placement.
    pub seed: u64,
    /// Maximum queued background PCIe transfers (prefetches and refills).
    /// Bounding the queue keeps prefetches from going stale; `0` disables
    /// background transfers entirely (on-demand transfers still happen).
    pub max_inflight: usize,
    /// Number of GPU shards. Experts are distributed across the GPUs by the
    /// static affinity map ([`shard_of`](hybrimoe_model::shard_of)): each
    /// GPU owns a cache shard and a PCIe lane, and the scheduler fills all
    /// device timelines by minimum completion time. `1` reproduces the
    /// paper's single-GPU system exactly.
    pub num_gpus: usize,
    /// Which execution backend runs the schedules (analytic simulation by
    /// default).
    pub backend: BackendKind,
    /// Resource limits of the real-execution backend (ignored by
    /// [`BackendKind::Sim`]).
    pub real_exec: RealExecOptions,
    /// Worker endpoints and wire knobs of the remote-worker backend
    /// (only [`BackendKind::RemoteWorkers`] reads them; with no
    /// endpoints the backend degrades to fully-local execution).
    pub remote_workers: RemoteWorkerOptions,
    /// How many layers ahead the learned predictor projects when
    /// [`PrefetcherKind::Predictive`] is active (other prefetchers take
    /// their lookahead from the trace record). Depth 1 is next-layer only.
    pub prefetch_lookahead: usize,
    /// Whether prefetch planning for step N+1 overlaps execution of step N:
    /// background transfers land into a staging list and are committed to
    /// the cache at the next step boundary instead of mid-step, and the
    /// PCIe budget is tracked per GPU lane. Off by default (the paper's
    /// synchronous per-layer prefetch).
    pub pipelined_prefetch: bool,
    /// When set, prefill passes of at least this many tokens are split into
    /// decode-interleaved chunks of this size so a long prompt no longer
    /// blocks in-flight decode streams (ktransformers-style chunked
    /// prefill). Must be at least the prefill regime threshold (32) so every
    /// chunk still schedules as a prefill batch. `None` keeps monolithic
    /// prefill.
    pub chunked_prefill_size: Option<u32>,
    /// Per-token cap on background cache-promotion work during a prefill
    /// step (prefetch queue slots plus refill-on-miss inserts are budgeted
    /// at `cap × tokens` per step). Bounds the PCIe pressure a huge prompt
    /// can add on top of concurrent decodes; `u32::MAX` leaves the legacy
    /// unbounded behavior.
    pub max_deferred_experts_per_token: u32,
    /// Deterministic fault-injection plan. The engine reads the
    /// `spike_ppm`/`spike_ms` and `panic_ppm` knobs (per-step latency
    /// spikes and injected step panics, drawn from the seeded
    /// `engine.step` stream); the remaining knobs target the worker and
    /// client layers. [`FaultPlan::off`] (the default) injects nothing
    /// and costs one branch per step.
    pub fault_plan: FaultPlan,
}

/// Default bound on queued background transfers.
pub const DEFAULT_MAX_INFLIGHT: usize = 4;

/// Default learned-predictor lookahead depth (layers ahead).
pub const DEFAULT_PREFETCH_LOOKAHEAD: usize = 3;

impl EngineConfig {
    /// The configuration of one of the paper's frameworks.
    pub fn preset(framework: Framework, model: ModelConfig, cache_ratio: f64) -> EngineConfig {
        let platform = Platform::a6000_xeon10();
        let base = EngineConfig {
            model,
            platform,
            cache_ratio,
            scheduler: SchedulerKind::Hybrid,
            prefetcher: PrefetcherKind::ImpactDriven,
            cache_policy: CachePolicyKind::Mrs,
            placement: PlacementKind::PerLayerFrequency,
            pinned: false,
            refill_on_miss: true,
            demand_inserts: true,
            prefill_evict_inserts: false,
            attention_follows_layer: false,
            mrs_alpha: 0.3,
            seed: 0xB0B,
            max_inflight: DEFAULT_MAX_INFLIGHT,
            num_gpus: 1,
            backend: BackendKind::Sim,
            real_exec: RealExecOptions::default(),
            remote_workers: RemoteWorkerOptions::default(),
            prefetch_lookahead: DEFAULT_PREFETCH_LOOKAHEAD,
            pipelined_prefetch: false,
            chunked_prefill_size: None,
            max_deferred_experts_per_token: u32::MAX,
            fault_plan: FaultPlan::off(),
        };
        match framework {
            Framework::HybriMoe => base,
            Framework::KTransformers => EngineConfig {
                scheduler: SchedulerKind::FixedMapping,
                prefetcher: PrefetcherKind::None,
                cache_policy: CachePolicyKind::Lfu,
                pinned: true,
                refill_on_miss: false,
                demand_inserts: false,
                ..base
            },
            Framework::AdapMoe => EngineConfig {
                scheduler: SchedulerKind::GpuOnly,
                prefetcher: PrefetcherKind::NextLayerTopK,
                cache_policy: CachePolicyKind::Lru,
                pinned: false,
                refill_on_miss: false,
                prefill_evict_inserts: true,
                ..base
            },
            Framework::LlamaCpp => EngineConfig {
                scheduler: SchedulerKind::StaticSplit,
                prefetcher: PrefetcherKind::None,
                cache_policy: CachePolicyKind::Lfu,
                placement: PlacementKind::WholeLayers,
                pinned: true,
                refill_on_miss: false,
                demand_inserts: false,
                attention_follows_layer: true,
                ..base
            },
        }
    }

    /// Overrides the platform (default: the paper's A6000 + Xeon) and
    /// adopts its GPU count.
    pub fn with_platform(mut self, platform: Platform) -> Self {
        self.num_gpus = platform.num_gpus.max(1);
        self.platform = platform;
        self
    }

    /// Overrides the scheduler (ablations).
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        // A dynamic scheduler implies a dynamic cache: its transfers are
        // worth keeping.
        if scheduler == SchedulerKind::Hybrid || scheduler == SchedulerKind::GpuOnly {
            self.pinned = false;
            self.demand_inserts = true;
        }
        self
    }

    /// Overrides the prefetcher (ablations).
    pub fn with_prefetcher(mut self, prefetcher: PrefetcherKind) -> Self {
        self.prefetcher = prefetcher;
        if prefetcher != PrefetcherKind::None {
            self.pinned = false;
        }
        self
    }

    /// Overrides the cache policy (ablations). Enables dynamic cache
    /// management (unpinned, demand inserts, refill-on-miss).
    pub fn with_cache_policy(mut self, policy: CachePolicyKind) -> Self {
        self.cache_policy = policy;
        self.pinned = false;
        self.refill_on_miss = true;
        self.demand_inserts = true;
        self
    }

    /// Overrides the measurement seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the background-transfer queue bound (`0` disables
    /// background transfers).
    pub fn with_max_inflight(mut self, max_inflight: usize) -> Self {
        self.max_inflight = max_inflight;
        self
    }

    /// Overrides the GPU count (expert sharding across identical GPUs).
    /// Keeps the platform description in sync.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus` is zero or exceeds 64.
    pub fn with_num_gpus(mut self, num_gpus: usize) -> Self {
        self.platform = self.platform.with_gpus(num_gpus);
        self.num_gpus = num_gpus;
        self
    }

    /// Overrides the execution backend (default: analytic simulation).
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Overrides the real-execution resource limits (weight budget and
    /// thread cap; only [`BackendKind::RealCpu`] reads them).
    pub fn with_real_exec(mut self, options: RealExecOptions) -> Self {
        self.real_exec = options;
        self
    }

    /// Selects the remote-worker backend with the given worker fleet.
    pub fn with_remote_workers(mut self, options: RemoteWorkerOptions) -> Self {
        self.backend = BackendKind::RemoteWorkers;
        self.remote_workers = options;
        self
    }

    /// Overrides the learned-predictor lookahead depth (layers ahead; only
    /// [`PrefetcherKind::Predictive`] reads it).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn with_prefetch_lookahead(mut self, depth: usize) -> Self {
        assert!(depth > 0, "prefetch lookahead must be at least one layer");
        self.prefetch_lookahead = depth;
        self
    }

    /// Enables or disables pipelined prefetch (step-boundary commits and
    /// per-lane PCIe budgets).
    pub fn with_pipelined_prefetch(mut self, pipelined: bool) -> Self {
        self.pipelined_prefetch = pipelined;
        self
    }

    /// Enables chunked prefill with the given chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `size` is below the prefill regime threshold
    /// ([`PREFILL_BATCH_THRESHOLD`](hybrimoe_sched::baselines::PREFILL_BATCH_THRESHOLD)):
    /// smaller chunks would schedule as decode batches and change the
    /// regime-dependent cache policy mid-prompt.
    pub fn with_chunked_prefill(mut self, size: u32) -> Self {
        assert!(
            size >= hybrimoe_sched::baselines::PREFILL_BATCH_THRESHOLD,
            "chunked prefill size must be at least the prefill threshold ({})",
            hybrimoe_sched::baselines::PREFILL_BATCH_THRESHOLD
        );
        self.chunked_prefill_size = Some(size);
        self
    }

    /// Caps background cache-promotion work per prefill token (see
    /// [`EngineConfig::max_deferred_experts_per_token`]).
    pub fn with_max_deferred_experts(mut self, cap: u32) -> Self {
        self.max_deferred_experts_per_token = cap;
        self
    }

    /// Arms the deterministic fault injector (see
    /// [`EngineConfig::fault_plan`]).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// The cache capacity in experts implied by the ratio.
    pub fn cache_capacity(&self) -> usize {
        self.model.cache_capacity_for_ratio(self.cache_ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_along_the_table1_axes() {
        let m = ModelConfig::deepseek();
        let h = EngineConfig::preset(Framework::HybriMoe, m.clone(), 0.25);
        let k = EngineConfig::preset(Framework::KTransformers, m.clone(), 0.25);
        let a = EngineConfig::preset(Framework::AdapMoe, m.clone(), 0.25);
        let l = EngineConfig::preset(Framework::LlamaCpp, m, 0.25);

        assert_eq!(h.scheduler, SchedulerKind::Hybrid);
        assert_eq!(k.scheduler, SchedulerKind::FixedMapping);
        assert_eq!(a.scheduler, SchedulerKind::GpuOnly);
        assert_eq!(l.scheduler, SchedulerKind::StaticSplit);

        assert!(k.pinned && l.pinned);
        assert!(!h.pinned && !a.pinned);
        assert_eq!(h.cache_policy, CachePolicyKind::Mrs);
        assert_eq!(a.cache_policy, CachePolicyKind::Lru);
        assert!(l.attention_follows_layer);
    }

    #[test]
    fn ablation_builders_unpin() {
        let m = ModelConfig::qwen2();
        let c = EngineConfig::preset(Framework::KTransformers, m, 0.25)
            .with_scheduler(SchedulerKind::Hybrid);
        assert!(!c.pinned);
        assert_eq!(c.prefetcher, PrefetcherKind::None);
    }

    #[test]
    fn cache_capacity_follows_ratio() {
        let c = EngineConfig::preset(Framework::HybriMoe, ModelConfig::mixtral(), 0.5);
        assert_eq!(c.cache_capacity(), 128);
    }

    #[test]
    fn kinds_build_components() {
        for s in [
            SchedulerKind::Hybrid,
            SchedulerKind::FixedMapping,
            SchedulerKind::GpuOnly,
            SchedulerKind::StaticSplit,
        ] {
            assert!(!s.build().name().is_empty());
        }
        for p in [
            PrefetcherKind::None,
            PrefetcherKind::NextLayerTopK,
            PrefetcherKind::ImpactDriven,
            PrefetcherKind::Predictive,
        ] {
            assert!(!p.build().name().is_empty());
        }
        for c in [
            CachePolicyKind::Lru,
            CachePolicyKind::Lfu,
            CachePolicyKind::Mrs,
        ] {
            assert!(!c.build(0.3).name().is_empty());
        }
    }

    #[test]
    fn num_gpus_defaults_to_one_and_syncs_platform() {
        let c = EngineConfig::preset(Framework::HybriMoe, ModelConfig::tiny_test(), 0.5);
        assert_eq!(c.num_gpus, 1);
        assert_eq!(c.platform.num_gpus, 1);
        let multi = c.clone().with_num_gpus(4);
        assert_eq!(multi.num_gpus, 4);
        assert_eq!(multi.platform.num_gpus, 4);
        // with_platform adopts the platform's GPU count.
        let adopted = c.with_platform(Platform::test_round_numbers().with_gpus(2));
        assert_eq!(adopted.num_gpus, 2);
    }

    #[test]
    fn presets_use_default_inflight_bound() {
        for f in Framework::ALL {
            let c = EngineConfig::preset(f, ModelConfig::tiny_test(), 0.5);
            assert_eq!(c.max_inflight, DEFAULT_MAX_INFLIGHT);
        }
        let c = EngineConfig::preset(Framework::HybriMoe, ModelConfig::tiny_test(), 0.5)
            .with_max_inflight(0);
        assert_eq!(c.max_inflight, 0);
    }

    #[test]
    fn presets_default_to_sim_backend() {
        for f in Framework::ALL {
            let c = EngineConfig::preset(f, ModelConfig::tiny_test(), 0.5);
            assert_eq!(c.backend, BackendKind::Sim);
            assert!(!c.backend.needs_token_states());
            assert_eq!(c.real_exec, RealExecOptions::default());
        }
        let opts = RealExecOptions {
            weight_budget_bytes: 1 << 20,
            max_threads: 2,
            ..Default::default()
        };
        let c = EngineConfig::preset(Framework::HybriMoe, ModelConfig::tiny_test(), 0.5)
            .with_backend(BackendKind::RealCpu)
            .with_real_exec(opts);
        assert!(c.backend.needs_token_states());
        assert_eq!(c.real_exec, opts);
        assert_eq!(c.backend.build(&c).name(), "real-cpu");
        assert_eq!(BackendKind::Sim.build(&c).name(), "sim");
    }

    #[test]
    fn prefetch_pipeline_knobs_default_off() {
        for f in Framework::ALL {
            let c = EngineConfig::preset(f, ModelConfig::tiny_test(), 0.5);
            assert_eq!(c.prefetch_lookahead, DEFAULT_PREFETCH_LOOKAHEAD);
            assert!(!c.pipelined_prefetch);
            assert_eq!(c.chunked_prefill_size, None);
            assert_eq!(c.max_deferred_experts_per_token, u32::MAX);
        }
        let c = EngineConfig::preset(Framework::HybriMoe, ModelConfig::tiny_test(), 0.5)
            .with_prefetcher(PrefetcherKind::Predictive)
            .with_prefetch_lookahead(2)
            .with_pipelined_prefetch(true)
            .with_chunked_prefill(64)
            .with_max_deferred_experts(8);
        assert_eq!(c.prefetcher, PrefetcherKind::Predictive);
        assert_eq!(c.prefetch_lookahead, 2);
        assert!(c.pipelined_prefetch);
        assert_eq!(c.chunked_prefill_size, Some(64));
        assert_eq!(c.max_deferred_experts_per_token, 8);
    }

    #[test]
    #[should_panic(expected = "chunked prefill size")]
    fn sub_threshold_chunk_rejected() {
        let _ = EngineConfig::preset(Framework::HybriMoe, ModelConfig::tiny_test(), 0.5)
            .with_chunked_prefill(16);
    }

    #[test]
    fn framework_names_unique() {
        let names: std::collections::HashSet<_> = Framework::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), 4);
        assert_eq!(Framework::HybriMoe.to_string(), "HybriMoE");
    }
}
