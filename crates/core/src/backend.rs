//! Pluggable schedule-execution backends.
//!
//! [`Engine::step`](crate::Engine::step) separates schedule *construction*
//! (routing, cache lookup, scheduling — always analytic) from schedule
//! *execution*, which is delegated to an [`ExecutionBackend`]:
//!
//! * [`SimBackend`] replays the plan on the analytic device timelines via
//!   [`PlanExecutor`] — the paper-reproduction path, bit-identical to the
//!   pre-backend engine and fast enough for full-size models;
//! * [`RealCpuBackend`] actually executes each layer's CPU- and
//!   GPU-assigned expert partitions with the `hybrimoe-kernels` quantized
//!   FFNs (the GPU partition is CPU-executed too — no GPU in this
//!   environment — but timed separately), returning measured per-device
//!   wall-clock and accumulating the numerical layer outputs. PCIe stays
//!   analytic: there is no real link to measure.
//!
//! The real backend closes the loop on the paper's warmup calibration
//! (§IV-A): its accumulated [`CpuMeasurement`] distills into a
//! [`CalibrationProfile`] that
//! [`Platform::with_calibration`](hybrimoe_hw::Platform::with_calibration)
//! folds back into the simulator, grounding the analytic CPU constants in
//! real kernel runs.

use std::time::Duration;

use hybrimoe_hw::{device_count, CalibrationProfile, Device, PlanExecutor, SimDuration};
use hybrimoe_model::shard_of;
use hybrimoe_model::LayerId;
use hybrimoe_sched::{ScheduleContext, SchedulePlan};
use hybrimoe_trace::TokenStates;
use hybrimoe_worker::WorkerHealthSnapshot;

use crate::realexec::{RealExecOptions, RealLayerExecutor, RealLayerOutput};

/// Everything a backend needs to execute one scheduled MoE layer.
#[derive(Debug)]
pub struct LayerRequest<'a> {
    /// The layer being executed.
    pub layer: LayerId,
    /// The schedule to execute (validated by the engine).
    pub plan: &'a SchedulePlan,
    /// The scheduling context the plan was built from (profiles, token
    /// count, cost model).
    pub ctx: &'a ScheduleContext<'a>,
    /// Per-token hidden states and routes, when the trace carries them
    /// (required by [`RealCpuBackend`], ignored by [`SimBackend`]).
    pub states: Option<&'a TokenStates>,
}

/// What executing one layer cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerOutcome {
    /// End-to-end time of the layer's MoE portion: the maximum finish time
    /// over every device timeline.
    pub makespan: SimDuration,
    /// Busy time per device in canonical order (`CPU, GPU0.., PCIE0..`);
    /// length `1 + 2 * num_gpus` of the scheduling context.
    pub busy: Vec<SimDuration>,
}

/// Executes scheduled layers: analytically (simulation) or for real.
///
/// Implementations must be deterministic in their *outputs* for a given
/// request; measured wall-clock times naturally vary between runs.
/// Backends are `Send` so an engine can run inside the serving front-end's
/// dedicated engine-loop thread.
pub trait ExecutionBackend: std::fmt::Debug + Send {
    /// A short stable name for reports.
    fn name(&self) -> &'static str;

    /// Executes one layer's schedule and reports its device times.
    fn execute_layer(&mut self, request: &LayerRequest<'_>) -> LayerOutcome;

    /// Called at the start of every engine step so per-step state (e.g.
    /// accumulated layer outputs) does not leak across steps.
    fn begin_step(&mut self) {}

    /// Drains the numerical layer outputs of the most recent step, in
    /// layer order. Empty for analytic backends.
    fn take_step_outputs(&mut self) -> Vec<RealLayerOutput> {
        Vec::new()
    }

    /// The CPU calibration distilled from every layer executed so far,
    /// if this backend measures real kernels.
    fn calibration(&self) -> Option<CalibrationProfile> {
        None
    }

    /// Worker fleet health, if this backend dispatches expert batches to
    /// out-of-process workers (see [`RemoteBackend`](crate::remote::RemoteBackend)).
    /// `None` for purely local backends.
    fn worker_health(&self) -> Option<WorkerHealthSnapshot> {
        None
    }
}

/// The analytic backend: executes plans on the simulated device timelines.
#[derive(Debug, Default, Clone)]
pub struct SimBackend;

impl SimBackend {
    /// Creates the backend.
    pub fn new() -> Self {
        SimBackend
    }
}

impl ExecutionBackend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn execute_layer(&mut self, request: &LayerRequest<'_>) -> LayerOutcome {
        let executed = PlanExecutor::new()
            .with_gpus(request.ctx.num_gpus.max(1))
            .execute(request.plan.to_ops(request.ctx))
            .expect("plans lower to acyclic ops");
        LayerOutcome {
            makespan: executed.makespan,
            busy: executed.timelines.busy_times(),
        }
    }
}

/// Aggregate CPU-side measurements of a [`RealCpuBackend`].
///
/// `flops` counts the CPU-assigned experts' work (load × per-token FLOPs).
/// `bytes` counts each CPU task's weight bytes **once per task**, matching
/// the convention of the cost model that consumes the distilled profile:
/// [`AffineCostModel`](hybrimoe_hw::AffineCostModel)'s memory floor charges
/// `expert.bytes() / bw` once per task, so the effective bandwidth must be
/// distilled against the same denominator (the real kernel streams the
/// weights once per token forward, but folding that into the rate would
/// inflate the simulated bandwidth for batched loads).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuMeasurement {
    /// Wall-clock spent in CPU-assigned expert kernels.
    pub wall: Duration,
    /// FLOPs those kernels performed.
    pub flops: u64,
    /// Weight bytes charged once per task (the cost model's stream-once
    /// convention — see the struct docs).
    pub bytes: u64,
    /// CPU expert tasks executed.
    pub tasks: u32,
}

impl CpuMeasurement {
    /// Distills the measurement into a [`CalibrationProfile`] of effective
    /// achieved rates, or `None` if no CPU work has been measured yet
    /// (see [`CalibrationProfile::from_effective_rates`]).
    pub fn profile(&self) -> Option<CalibrationProfile> {
        CalibrationProfile::from_effective_rates(
            self.flops,
            self.bytes,
            self.wall.as_secs_f64(),
            self.tasks,
        )
    }
}

/// The real-execution backend: runs every expert partition with the
/// quantized CPU kernels.
///
/// Requires traces generated with
/// [`TraceGenerator::with_token_states`](hybrimoe_trace::TraceGenerator::with_token_states)
/// and a model small enough for the weight budget (use
/// [`ModelConfig::tiny_test`](hybrimoe_model::ModelConfig::tiny_test)-sized
/// configurations).
#[derive(Debug)]
pub struct RealCpuBackend {
    exec: RealLayerExecutor,
    outputs: Vec<RealLayerOutput>,
    measured: CpuMeasurement,
}

impl RealCpuBackend {
    /// Creates the backend for one model's synthetic weights.
    pub fn new(
        model: hybrimoe_model::ModelConfig,
        seed: u64,
        options: RealExecOptions,
    ) -> RealCpuBackend {
        RealCpuBackend {
            exec: RealLayerExecutor::with_options(model, seed, options),
            outputs: Vec::new(),
            measured: CpuMeasurement::default(),
        }
    }

    /// The accumulated CPU measurement.
    pub fn measurement(&self) -> CpuMeasurement {
        self.measured
    }
}

impl ExecutionBackend for RealCpuBackend {
    fn name(&self) -> &'static str {
        "real-cpu"
    }

    fn execute_layer(&mut self, request: &LayerRequest<'_>) -> LayerOutcome {
        let states = request.states.unwrap_or_else(|| {
            panic!(
                "RealCpuBackend needs per-token states at {}: generate the trace with \
                 TraceGenerator::with_token_states",
                request.layer
            )
        });
        let out = self
            .exec
            .execute_layer(request.layer, request.plan, &states.inputs, &states.routes)
            .unwrap_or_else(|e| panic!("real execution failed at {}: {e}", request.layer));

        // Account the CPU-assigned work so the measurement can be distilled
        // into effective rates for calibration. Bytes are charged once per
        // task — the cost model's stream-once convention (see
        // [`CpuMeasurement`]).
        let profile = request.ctx.routed_profile;
        for t in &request.plan.cpu_order {
            self.measured.flops += t.load as u64 * profile.flops_per_token();
            self.measured.bytes += profile.bytes();
            self.measured.tasks += 1;
        }
        self.measured.wall += out.cpu_wall;

        // PCIe stays analytic — this environment has no real link. Each
        // transfer rides the lane of its target shard.
        let n = request.ctx.num_gpus.max(1);
        let wire = request.plan.transfer_profile.unwrap_or(profile);
        let mut pcie = vec![SimDuration::ZERO; n];
        for x in &request.plan.pcie_order {
            pcie[shard_of(x.expert, n)] += request.ctx.cost.transfer(&wire);
        }

        // Busy vector in canonical order: CPU, each GPU shard's measured
        // wall (shards run concurrently on real hardware, so the makespan
        // takes the max shard), each PCIe lane's analytic time.
        let cpu = SimDuration::from_secs_f64(out.cpu_wall.as_secs_f64());
        let mut busy = vec![SimDuration::ZERO; device_count(n)];
        busy[Device::Cpu.ordinal(n)] = cpu;
        let mut makespan = cpu;
        for g in 0..n {
            let wall = out.gpu_walls.get(g).copied().unwrap_or_default();
            let gpu = SimDuration::from_secs_f64(wall.as_secs_f64());
            busy[Device::gpu(g as u8).ordinal(n)] = gpu;
            busy[Device::pcie(g as u8).ordinal(n)] = pcie[g];
            makespan = makespan.max(gpu).max(pcie[g]);
        }
        self.outputs.push(out);
        LayerOutcome { makespan, busy }
    }

    fn begin_step(&mut self) {
        self.outputs.clear();
    }

    fn take_step_outputs(&mut self) -> Vec<RealLayerOutput> {
        std::mem::take(&mut self.outputs)
    }

    fn calibration(&self) -> Option<CalibrationProfile> {
        self.measured.profile()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrimoe_hw::UnitCostModel;
    use hybrimoe_model::{ExpertId, LayerId, ModelConfig, RouterOutput};
    use hybrimoe_sched::{ExpertTask, HybridScheduler, Scheduler};

    fn layer_states(model: &ModelConfig, tokens: usize) -> TokenStates {
        let hidden = model.routed_shape.hidden() as usize;
        let experts = model.routed_experts as usize;
        let k = model.activated_experts as usize;
        let (inputs, routes) = (0..tokens)
            .map(|t| {
                let x: Vec<f32> = (0..hidden)
                    .map(|i| ((t * 31 + i * 7) % 100) as f32 / 500.0 - 0.1)
                    .collect();
                let logits: Vec<f32> = (0..experts)
                    .map(|e| ((t + e * 13) % 11) as f32 / 3.0)
                    .collect();
                (x, RouterOutput::route(&logits, k))
            })
            .unzip();
        TokenStates { inputs, routes }
    }

    fn tasks_from(states: &TokenStates, experts: u16) -> Vec<ExpertTask> {
        let routing =
            hybrimoe_model::LayerRouting::from_tokens(LayerId(0), experts, &states.routes);
        routing
            .activated()
            .into_iter()
            .map(|(e, load)| ExpertTask {
                expert: e,
                load,
                cached: e.0 % 2 == 0,
            })
            .collect()
    }

    #[test]
    fn sim_backend_matches_plan_executor() {
        let tasks = vec![
            ExpertTask::uncached(ExpertId(0), 1),
            ExpertTask::cached(ExpertId(1), 2),
        ];
        let cost = UnitCostModel::paper_fig5();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let plan = HybridScheduler::new().schedule(&ctx);
        let executed = PlanExecutor::new().execute(plan.to_ops(&ctx)).unwrap();

        let outcome = SimBackend::new().execute_layer(&LayerRequest {
            layer: LayerId(0),
            plan: &plan,
            ctx: &ctx,
            states: None,
        });
        assert_eq!(outcome.makespan, executed.makespan);
        assert_eq!(outcome.busy, executed.timelines.busy_times());
    }

    #[test]
    fn real_backend_executes_and_measures() {
        let model = ModelConfig::tiny_test();
        let states = layer_states(&model, 2);
        let tasks = tasks_from(&states, model.routed_experts);
        let cost = UnitCostModel::paper_fig5();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let plan = HybridScheduler::new().schedule(&ctx);

        let mut backend = RealCpuBackend::new(model, 7, RealExecOptions::default());
        backend.begin_step();
        let outcome = backend.execute_layer(&LayerRequest {
            layer: LayerId(0),
            plan: &plan,
            ctx: &ctx,
            states: Some(&states),
        });
        assert!(outcome.makespan > SimDuration::ZERO);
        let outputs = backend.take_step_outputs();
        assert_eq!(outputs.len(), 1);
        assert!(outputs[0].output.iter().any(|v| *v != 0.0));
        assert!(backend.take_step_outputs().is_empty());
        if !plan.cpu_order.is_empty() {
            let m = backend.measurement();
            assert!(m.tasks > 0 && m.flops > 0 && m.bytes > 0);
            let cal = backend.calibration().expect("cpu work measured");
            assert!(cal.is_plausible());
        }
    }

    #[test]
    #[should_panic(expected = "needs per-token states")]
    fn real_backend_rejects_stateless_traces() {
        let model = ModelConfig::tiny_test();
        let tasks = vec![ExpertTask::uncached(ExpertId(0), 1)];
        let cost = UnitCostModel::paper_fig5();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let plan = HybridScheduler::new().schedule(&ctx);
        let mut backend = RealCpuBackend::new(model, 7, RealExecOptions::default());
        let _ = backend.execute_layer(&LayerRequest {
            layer: LayerId(0),
            plan: &plan,
            ctx: &ctx,
            states: None,
        });
    }

    #[test]
    fn empty_measurement_has_no_profile() {
        assert_eq!(CpuMeasurement::default().profile(), None);
    }
}
