//! Inference metrics.

use hybrimoe_cache::CacheStats;
use hybrimoe_hw::{Device, SimDuration};
use serde::{Deserialize, Serialize};

/// Metrics of one forward pass (one decode token or one prefill batch).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepMetrics {
    /// Tokens in the step.
    pub tokens: u32,
    /// End-to-end latency of the step.
    pub latency: SimDuration,
    /// Busy time per device in canonical order (`CPU, GPU0.., PCIE0..`);
    /// length `1 + 2 * num_gpus`.
    pub device_busy: Vec<SimDuration>,
    /// Experts computed on the CPU.
    pub cpu_experts: u32,
    /// Experts computed on the GPUs.
    pub gpu_experts: u32,
    /// Experts transferred on demand within layers.
    pub demand_transfers: u32,
    /// Experts prefetched for later layers.
    pub prefetches: u32,
}

impl StepMetrics {
    /// The GPU count implied by the busy-vector layout.
    pub fn num_gpus(&self) -> usize {
        (self.device_busy.len().saturating_sub(1) / 2).max(1)
    }

    /// Busy time of one device during the step (zero for devices outside
    /// the platform).
    pub fn busy(&self, device: Device) -> SimDuration {
        let n = self.num_gpus();
        match device.gpu_id() {
            Some(g) if (g.0 as usize) >= n => SimDuration::ZERO,
            _ => self
                .device_busy
                .get(device.ordinal(n))
                .copied()
                .unwrap_or(SimDuration::ZERO),
        }
    }
}

/// Metrics of a whole stage (a prefill pass or a decode sequence).
///
/// # Example
///
/// ```
/// use hybrimoe::{Engine, EngineConfig, Framework};
/// use hybrimoe_model::ModelConfig;
/// use hybrimoe_trace::TraceGenerator;
///
/// let model = ModelConfig::tiny_test();
/// let mut engine = Engine::new(EngineConfig::preset(Framework::HybriMoe, model.clone(), 0.5));
/// let metrics = engine.run(&TraceGenerator::new(model, 1).decode_trace(4));
/// assert_eq!(metrics.steps.len(), 4);
/// assert!(metrics.mean_step_latency() > hybrimoe_hw::SimDuration::ZERO);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageMetrics {
    /// Per-step metrics, in order.
    pub steps: Vec<StepMetrics>,
    /// Sum of step latencies.
    pub total: SimDuration,
    /// Cache statistics accumulated over the stage.
    pub cache: CacheStats,
}

impl StageMetrics {
    /// Aggregates step metrics.
    pub fn from_steps(steps: Vec<StepMetrics>, cache: CacheStats) -> Self {
        let total = steps.iter().map(|s| s.latency).sum();
        StageMetrics {
            steps,
            total,
            cache,
        }
    }

    /// Time-to-first-token semantics: for a prefill stage (one step) this
    /// is the step latency; for longer stages the total.
    pub fn ttft(&self) -> SimDuration {
        self.total
    }

    /// Mean time-between-tokens over the steps (decode stages).
    pub fn mean_step_latency(&self) -> SimDuration {
        if self.steps.is_empty() {
            return SimDuration::ZERO;
        }
        self.total / self.steps.len() as u64
    }

    /// The cache hit rate over the stage.
    pub fn hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Mean utilization of `device` across steps (busy time over latency).
    /// Devices outside the platform report zero.
    pub fn utilization(&self, device: Device) -> f64 {
        if self.total == SimDuration::ZERO {
            return 0.0;
        }
        let busy: SimDuration = self.steps.iter().map(|s| s.busy(device)).sum();
        busy.as_nanos() as f64 / self.total.as_nanos() as f64
    }

    /// Total experts computed on the CPU.
    pub fn cpu_experts(&self) -> u64 {
        self.steps.iter().map(|s| s.cpu_experts as u64).sum()
    }

    /// Total experts computed on the GPUs.
    pub fn gpu_experts(&self) -> u64 {
        self.steps.iter().map(|s| s.gpu_experts as u64).sum()
    }

    /// Total on-demand transfers.
    pub fn demand_transfers(&self) -> u64 {
        self.steps.iter().map(|s| s.demand_transfers as u64).sum()
    }

    /// Total prefetched experts.
    pub fn prefetches(&self) -> u64 {
        self.steps.iter().map(|s| s.prefetches as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(latency_us: u64) -> StepMetrics {
        StepMetrics {
            tokens: 1,
            latency: SimDuration::from_micros(latency_us),
            device_busy: vec![
                SimDuration::from_micros(latency_us / 2),
                SimDuration::from_micros(latency_us / 4),
                SimDuration::ZERO,
            ],
            cpu_experts: 2,
            gpu_experts: 3,
            demand_transfers: 1,
            prefetches: 1,
        }
    }

    #[test]
    fn aggregation() {
        let m = StageMetrics::from_steps(vec![step(10), step(20)], CacheStats::default());
        assert_eq!(m.total, SimDuration::from_micros(30));
        assert_eq!(m.mean_step_latency(), SimDuration::from_micros(15));
        assert_eq!(m.cpu_experts(), 4);
        assert_eq!(m.gpu_experts(), 6);
        assert_eq!(m.demand_transfers(), 2);
        assert_eq!(m.prefetches(), 2);
    }

    #[test]
    fn utilization_per_device() {
        let m = StageMetrics::from_steps(vec![step(20), step(20)], CacheStats::default());
        assert!((m.utilization(Device::Cpu) - 0.5).abs() < 1e-9);
        assert!((m.utilization(Device::gpu(0)) - 0.25).abs() < 1e-9);
        assert_eq!(m.utilization(Device::pcie(0)), 0.0);
        // Devices beyond the platform's GPU count report zero.
        assert_eq!(m.utilization(Device::gpu(3)), 0.0);
    }

    #[test]
    fn multi_gpu_busy_layout() {
        let s = StepMetrics {
            tokens: 1,
            latency: SimDuration::from_micros(10),
            device_busy: vec![SimDuration::from_micros(1); 5], // N = 2
            cpu_experts: 0,
            gpu_experts: 0,
            demand_transfers: 0,
            prefetches: 0,
        };
        assert_eq!(s.num_gpus(), 2);
        assert_eq!(s.busy(Device::gpu(1)), SimDuration::from_micros(1));
        assert_eq!(s.busy(Device::pcie(1)), SimDuration::from_micros(1));
        assert_eq!(s.busy(Device::gpu(2)), SimDuration::ZERO);
    }

    #[test]
    fn empty_stage_is_zero() {
        let m = StageMetrics::from_steps(Vec::new(), CacheStats::default());
        assert_eq!(m.total, SimDuration::ZERO);
        assert_eq!(m.mean_step_latency(), SimDuration::ZERO);
        assert_eq!(m.utilization(Device::Cpu), 0.0);
    }
}
