//! Real-execution mode: compute actual MoE layer outputs with the
//! quantized CPU kernels.
//!
//! The paper's system executes real experts; this reproduction models the
//! GPU analytically (none is available) but keeps a real CPU execution
//! path for small configurations. It serves two purposes:
//!
//! 1. **Correctness oracle** — a schedule is only valid if the layer's
//!    numerical output is identical no matter where each expert was placed.
//!    [`RealLayerExecutor::execute_layer`] computes the true
//!    `y = Σᵢ wᵢ · Eᵢ(x)` with the `hybrimoe-kernels` Q4 FFNs and checks
//!    the plan partition covers every activated expert exactly once.
//! 2. **Calibration ground truth** — the measured wall-clock of the
//!    CPU-assigned portion grounds the cost model's CPU constants.
//!
//! # Expert-major batched execution
//!
//! The hot path is **expert-major**: per layer it builds each expert's
//! routed token list once, gathers those tokens into a contiguous batch,
//! runs one [`ExpertFfn::forward_batch_into`](hybrimoe_kernels::ExpertFfn)
//! over the whole batch (each Q4 block is dequantized once per batch, not
//! once per token), and scatters the weighted results back. All scratch is
//! owned by the executor ([`ExecScratch`] plus per-layer buffers) and the
//! kernels run on a persistent [`WorkerPool`] that parks between calls —
//! steady-state execution allocates nothing and spawns no threads. The Q4
//! dequant+dot inner loops dispatch to the SIMD backend selected by
//! [`RealExecOptions::kernel_backend`] (runtime AVX2 detection by
//! default). Experts accumulate into the output in ascending id order, so
//! results are bit-identical across placements for any fixed backend; with
//! the scalar backend they are additionally bit-identical to the retained
//! token-major reference path ([`RealExecOptions::token_major`]), which
//! re-runs each expert once per routed token exactly like the pre-batching
//! executor (SIMD backends stay within the reassociation bound documented
//! in [`hybrimoe_kernels::backend`]).
//!
//! Only routed experts participate; the model must be small enough for the
//! [`WeightStore`] memory budget (use [`ModelConfig::tiny_test`]-sized
//! configurations).

use std::time::{Duration, Instant};

use hybrimoe_kernels::threadpool::default_threads;
use hybrimoe_kernels::{ExecScratch, KernelBackend, KernelBackendKind, WorkerPool};
use hybrimoe_model::{
    ExpertKey, LayerId, ModelConfig, RouterOutput, WeightStore, WeightStoreError,
};
use hybrimoe_sched::SchedulePlan;
use serde::{Deserialize, Serialize};

/// Resource limits and execution strategy of a [`RealLayerExecutor`] (and
/// of the [`RealCpuBackend`](crate::RealCpuBackend) built on it).
///
/// # Example
///
/// ```
/// use hybrimoe::realexec::RealExecOptions;
/// use hybrimoe_kernels::KernelBackendKind;
///
/// let opts = RealExecOptions::default();
/// assert_eq!(opts.weight_budget_bytes, 512 * 1024 * 1024);
/// assert_eq!(opts.max_threads, 10);
/// assert!(!opts.token_major); // expert-major batching by default
/// assert_eq!(opts.kernel_backend, KernelBackendKind::Auto);
/// let single = RealExecOptions { max_threads: 1, ..Default::default() };
/// assert_eq!(single.max_threads, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RealExecOptions {
    /// Memory budget of the synthetic [`WeightStore`], in bytes.
    pub weight_budget_bytes: u64,
    /// Cap on worker threads; the executor's persistent [`WorkerPool`] uses
    /// the machine's available parallelism up to this many (the paper
    /// restricts its Xeon to 10 cores, §VI-A1).
    pub max_threads: usize,
    /// Run the retained token-major reference path instead of the
    /// expert-major batched hot path: one [`forward_threads`] call per
    /// (expert, token) pair on per-call scoped threads, exactly like the
    /// pre-batching executor. The reference path always runs the scalar
    /// kernels and exists as the correctness oracle and the baseline that
    /// `real_bench` measures the batched path against; with
    /// [`RealExecOptions::kernel_backend`] set to `Scalar`, outputs are
    /// bit-identical either way.
    ///
    /// [`forward_threads`]: hybrimoe_kernels::ExpertFfn::forward_threads
    pub token_major: bool,
    /// Which SIMD backend the expert-major hot path dispatches its Q4
    /// dequant+dot inner loops to. Resolved once when the executor is
    /// built: `Auto` (the default) honors the `HYBRIMOE_KERNEL_BACKEND`
    /// env var and otherwise runtime-detects AVX2, falling back to the
    /// scalar reference (see [`hybrimoe_kernels::backend`]).
    pub kernel_backend: KernelBackendKind,
}

impl Default for RealExecOptions {
    fn default() -> Self {
        RealExecOptions {
            weight_budget_bytes: 512 * 1024 * 1024,
            max_threads: 10,
            token_major: false,
            kernel_backend: KernelBackendKind::Auto,
        }
    }
}

/// The result of really executing one MoE layer.
#[derive(Debug, Clone, PartialEq)]
pub struct RealLayerOutput {
    /// The layer output, `tokens x hidden` row-major.
    pub output: Vec<f32>,
    /// Wall-clock time spent on the CPU-assigned experts.
    pub cpu_wall: Duration,
    /// Total wall-clock time spent on the GPU-assigned experts (also
    /// executed on the CPU here — no GPU in this environment — but timed
    /// separately so the partition's balance can be inspected). Equals the
    /// sum of [`RealLayerOutput::gpu_walls`].
    pub gpu_wall: Duration,
    /// Wall-clock time per GPU shard, indexed by
    /// [`GpuId`](hybrimoe_hw::GpuId); length covers the highest shard the
    /// plan targets. On a multi-GPU platform each shard would run its
    /// partition concurrently, so the layer's GPU-side makespan is the
    /// *maximum* entry while `gpu_wall` is the serial total.
    pub gpu_walls: Vec<Duration>,
    /// Number of experts the plan assigned to the CPU.
    pub cpu_tasks: usize,
    /// Number of experts the plan assigned to the GPUs.
    pub gpu_tasks: usize,
}

/// Why real execution failed.
#[derive(Debug, Clone, PartialEq)]
pub enum RealExecError {
    /// The plan does not cover the activated experts exactly once.
    InvalidPlan(String),
    /// Weight materialization failed (unknown expert or memory budget).
    Weights(WeightStoreError),
    /// A token's input has the wrong dimension.
    BadInput {
        /// Expected hidden size.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
}

impl std::fmt::Display for RealExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RealExecError::InvalidPlan(why) => write!(f, "invalid plan: {why}"),
            RealExecError::Weights(e) => write!(f, "weight store: {e}"),
            RealExecError::BadInput { expected, actual } => {
                write!(f, "input dimension {actual}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for RealExecError {}

impl From<WeightStoreError> for RealExecError {
    fn from(e: WeightStoreError) -> Self {
        RealExecError::Weights(e)
    }
}

/// Reusable per-layer buffers of the expert-major path: cleared — not
/// freed — between layers, so steady-state execution allocates only the
/// returned output vector.
#[derive(Debug, Default)]
struct LayerScratch {
    /// Per-expert routed token lists, `(token index, router weight)`,
    /// indexed by expert id. Built in one pass over the routes (replacing
    /// the per-(expert, token) linear scan of `routing.selected`).
    tokens_of: Vec<Vec<(u32, f32)>>,
    /// Gathered inputs of one expert's token batch, `batch x hidden`.
    gather: Vec<f32>,
    /// The expert's batched outputs, same shape.
    result: Vec<f32>,
    /// Activated expert ids, sorted ascending, deduplicated.
    activated: Vec<u16>,
    /// CPU partition of the plan, sorted ascending (binary-searched for
    /// membership instead of a per-layer `HashSet`).
    cpu: Vec<u16>,
    /// GPU partition of the plan, sorted ascending.
    gpu: Vec<u16>,
    /// Union of the partitions, sorted ascending — the fixed accumulation
    /// order (float addition is not associative, so summing in plan order
    /// would make the output depend on the placement).
    planned: Vec<u16>,
    /// `(expert, shard)` pairs sorted by expert, for per-shard timing.
    shard: Vec<(u16, u16)>,
}

/// Executes MoE layers for real on the CPU, using deterministic synthetic
/// weights.
///
/// # Example
///
/// ```
/// use hybrimoe::realexec::RealLayerExecutor;
/// use hybrimoe_model::ModelConfig;
///
/// let mut exec = RealLayerExecutor::new(ModelConfig::tiny_test(), 42);
/// assert_eq!(exec.model().name, "tiny-test");
/// ```
#[derive(Debug)]
pub struct RealLayerExecutor {
    store: WeightStore,
    /// Persistent kernel workers, spawned once and parked between layers.
    pool: WorkerPool,
    options: RealExecOptions,
    /// The SIMD backend resolved once from
    /// [`RealExecOptions::kernel_backend`] at construction.
    backend: &'static dyn KernelBackend,
    scratch: LayerScratch,
    ffn_scratch: ExecScratch,
}

impl RealLayerExecutor {
    /// Creates an executor with the default [`RealExecOptions`] (512 MiB
    /// weight budget, at most 10 threads, like the paper's platform).
    pub fn new(model: ModelConfig, seed: u64) -> Self {
        RealLayerExecutor::with_options(model, seed, RealExecOptions::default())
    }

    /// Creates an executor with explicit resource limits. Spawns the
    /// persistent worker pool.
    pub fn with_options(model: ModelConfig, seed: u64, options: RealExecOptions) -> Self {
        RealLayerExecutor {
            store: WeightStore::new(model, seed, options.weight_budget_bytes),
            pool: WorkerPool::new(default_threads(options.max_threads.max(1))),
            backend: options.kernel_backend.resolve(),
            options,
            scratch: LayerScratch::default(),
            ffn_scratch: ExecScratch::new(),
        }
    }

    /// The model being executed.
    pub fn model(&self) -> &ModelConfig {
        self.store.config()
    }

    /// The worker-thread count the kernels run with.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The concrete kernel backend the expert-major hot path dispatches to
    /// (`Auto` already expanded by detection; never `Auto` itself).
    pub fn backend_kind(&self) -> KernelBackendKind {
        self.backend.kind()
    }

    /// Executes one layer for real.
    ///
    /// `inputs` holds each token's hidden state (`hidden` floats) and
    /// `routes` the matching routing decisions (same order); `plan` is the
    /// schedule whose placement is timed. The output combines each token's
    /// selected experts with its renormalized router weights (Eq. 1 of the
    /// paper). Experts accumulate into the output in ascending id order
    /// regardless of the plan's device orders, so the result is
    /// **bit-identical across placements** — the property the scheduler
    /// correctness suite pins — and, with the scalar kernel backend,
    /// identical between the expert-major and token-major strategies (see
    /// [`RealExecOptions::token_major`] and
    /// [`RealExecOptions::kernel_backend`]).
    ///
    /// # Errors
    ///
    /// Returns [`RealExecError::InvalidPlan`] if the plan does not compute
    /// every activated expert exactly once, [`RealExecError::BadInput`] on
    /// dimension or token-count mismatches, and [`RealExecError::Weights`]
    /// if an expert cannot be materialized within the memory budget.
    pub fn execute_layer(
        &mut self,
        layer: LayerId,
        plan: &SchedulePlan,
        inputs: &[Vec<f32>],
        routes: &[RouterOutput],
    ) -> Result<RealLayerOutput, RealExecError> {
        self.validate(plan, inputs, routes)?;
        if self.options.token_major {
            self.run_token_major(layer, inputs, routes)
        } else {
            self.run_expert_major(layer, inputs, routes)
        }
    }

    /// Checks the inputs and distills the plan into the sorted scratch
    /// partitions both execution strategies consume.
    fn validate(
        &mut self,
        plan: &SchedulePlan,
        inputs: &[Vec<f32>],
        routes: &[RouterOutput],
    ) -> Result<(), RealExecError> {
        let hidden = self.model().routed_shape.hidden() as usize;
        if inputs.len() != routes.len() {
            return Err(RealExecError::BadInput {
                expected: inputs.len(),
                actual: routes.len(),
            });
        }
        for x in inputs {
            if x.len() != hidden {
                return Err(RealExecError::BadInput {
                    expected: hidden,
                    actual: x.len(),
                });
            }
        }

        let scratch = &mut self.scratch;
        // The activated set must match the plan's compute partition. All
        // sets are sorted slices; membership is binary search, not hashing.
        scratch.activated.clear();
        scratch
            .activated
            .extend(routes.iter().flat_map(|r| r.expert_ids().map(|e| e.0)));
        scratch.activated.sort_unstable();
        scratch.activated.dedup();

        scratch.cpu.clear();
        scratch.cpu.extend(plan.cpu_experts().map(|e| e.0));
        scratch.cpu.sort_unstable();
        scratch.cpu.dedup();
        scratch.gpu.clear();
        scratch.gpu.extend(plan.gpu_experts().map(|e| e.0));
        scratch.gpu.sort_unstable();
        scratch.gpu.dedup();
        if scratch
            .cpu
            .iter()
            .any(|e| scratch.gpu.binary_search(e).is_ok())
        {
            return Err(RealExecError::InvalidPlan(
                "an expert is assigned to both devices".to_owned(),
            ));
        }

        // Sorted union of two sorted, disjoint partitions.
        scratch.planned.clear();
        scratch.planned.extend_from_slice(&scratch.cpu);
        scratch.planned.extend_from_slice(&scratch.gpu);
        scratch.planned.sort_unstable();
        if scratch.planned != scratch.activated {
            return Err(RealExecError::InvalidPlan(format!(
                "plan covers {:?}, activated {:?}",
                scratch.planned, scratch.activated
            )));
        }

        // Which shard each GPU-assigned expert runs on (per-shard timing).
        scratch.shard.clear();
        scratch.shard.extend(
            plan.gpu_order
                .iter()
                .filter_map(|g| g.placement.gpu().map(|gpu| (g.task.expert.0, gpu.0 as u16))),
        );
        scratch.shard.sort_unstable();
        Ok(())
    }

    /// Number of GPU shards the validated plan targets.
    fn num_shards(&self) -> usize {
        self.scratch
            .shard
            .iter()
            .map(|(_, s)| *s as usize)
            .max()
            .map_or(1, |m| m + 1)
    }

    /// The expert-major batched hot path: gather each expert's routed
    /// tokens once, one batched forward per expert, weighted scatter back.
    fn run_expert_major(
        &mut self,
        layer: LayerId,
        inputs: &[Vec<f32>],
        routes: &[RouterOutput],
    ) -> Result<RealLayerOutput, RealExecError> {
        let num_shards = self.num_shards();
        let RealLayerExecutor {
            store,
            pool,
            backend,
            scratch,
            ffn_scratch,
            ..
        } = self;
        let backend = *backend;
        let LayerScratch {
            tokens_of,
            gather,
            result,
            cpu,
            gpu,
            planned,
            shard,
            ..
        } = scratch;
        let hidden = store.config().routed_shape.hidden() as usize;
        let experts = store.config().routed_experts as usize;

        // Build every expert's token list in one pass over the routes.
        if tokens_of.len() < experts {
            tokens_of.resize_with(experts, Vec::new);
        }
        for list in tokens_of.iter_mut() {
            list.clear();
        }
        for (t, routing) in routes.iter().enumerate() {
            for (e, w) in &routing.selected {
                tokens_of[e.0 as usize].push((t as u32, *w));
            }
        }

        let mut output = vec![0.0f32; inputs.len() * hidden];
        let mut cpu_wall = Duration::ZERO;
        let mut gpu_wall = Duration::ZERO;
        let mut gpu_walls = vec![Duration::ZERO; num_shards];
        for &expert in planned.iter() {
            let key = ExpertKey::new(layer, hybrimoe_model::ExpertId(expert));
            let ffn = store.expert(key)?;
            let list = &tokens_of[expert as usize];
            let batch = list.len();
            let start = Instant::now();

            // Gather the routed tokens into one contiguous batch.
            gather.resize(batch * hidden, 0.0);
            for (i, (t, _)) in list.iter().enumerate() {
                gather[i * hidden..(i + 1) * hidden].copy_from_slice(&inputs[*t as usize]);
            }
            result.resize(batch * hidden, 0.0);
            ffn.forward_batch_into(gather, batch, result, ffn_scratch, pool, backend);
            // Scatter with the router weights; token order within the list
            // is ascending, so every output cell sees the same addition
            // order as the token-major reference.
            for (i, (t, w)) in list.iter().enumerate() {
                let dst = &mut output[*t as usize * hidden..(*t as usize + 1) * hidden];
                let src = &result[i * hidden..(i + 1) * hidden];
                for (o, v) in dst.iter_mut().zip(src.iter()) {
                    *o += w * v;
                }
            }

            let elapsed = start.elapsed();
            account(
                expert,
                elapsed,
                cpu,
                shard,
                &mut cpu_wall,
                &mut gpu_wall,
                &mut gpu_walls,
            );
        }

        Ok(RealLayerOutput {
            output,
            cpu_wall,
            gpu_wall,
            gpu_walls,
            cpu_tasks: cpu.len(),
            gpu_tasks: gpu.len(),
        })
    }

    /// The retained token-major reference path: one single-token forward
    /// (on per-call scoped threads) per (expert, token) pair, exactly like
    /// the pre-batching executor. `real_bench` measures the batched path
    /// against this baseline.
    fn run_token_major(
        &mut self,
        layer: LayerId,
        inputs: &[Vec<f32>],
        routes: &[RouterOutput],
    ) -> Result<RealLayerOutput, RealExecError> {
        let num_shards = self.num_shards();
        let threads = self.pool.threads();
        let RealLayerExecutor { store, scratch, .. } = self;
        let LayerScratch {
            cpu,
            gpu,
            planned,
            shard,
            ..
        } = scratch;
        let hidden = store.config().routed_shape.hidden() as usize;

        let mut output = vec![0.0f32; inputs.len() * hidden];
        let mut cpu_wall = Duration::ZERO;
        let mut gpu_wall = Duration::ZERO;
        let mut gpu_walls = vec![Duration::ZERO; num_shards];
        for &expert in planned.iter() {
            let key = ExpertKey::new(layer, hybrimoe_model::ExpertId(expert));
            let ffn = store.expert(key)?;
            let start = Instant::now();
            for (t, (x, routing)) in inputs.iter().zip(routes.iter()).enumerate() {
                let Some((_, weight)) = routing.selected.iter().find(|(e, _)| e.0 == expert) else {
                    continue;
                };
                let y = ffn.forward_threads(x, threads);
                for (o, v) in output[t * hidden..(t + 1) * hidden]
                    .iter_mut()
                    .zip(y.iter())
                {
                    *o += weight * v;
                }
            }
            let elapsed = start.elapsed();
            account(
                expert,
                elapsed,
                cpu,
                shard,
                &mut cpu_wall,
                &mut gpu_wall,
                &mut gpu_walls,
            );
        }

        Ok(RealLayerOutput {
            output,
            cpu_wall,
            gpu_wall,
            gpu_walls,
            cpu_tasks: cpu.len(),
            gpu_tasks: gpu.len(),
        })
    }
}

/// Books one expert's elapsed wall-clock against the device that computed
/// it (sorted-slice membership; GPU shard looked up by binary search).
/// Shared with the remote executor ([`crate::remote`]), which books each
/// expert to its planned device whether the batch ran locally or remotely.
pub(crate) fn account(
    expert: u16,
    elapsed: Duration,
    cpu: &[u16],
    shard: &[(u16, u16)],
    cpu_wall: &mut Duration,
    gpu_wall: &mut Duration,
    gpu_walls: &mut [Duration],
) {
    if cpu.binary_search(&expert).is_ok() {
        *cpu_wall += elapsed;
    } else {
        *gpu_wall += elapsed;
        let s = shard
            .binary_search_by_key(&expert, |(e, _)| *e)
            .map(|i| shard[i].1 as usize)
            .unwrap_or(0);
        gpu_walls[s] += elapsed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrimoe_hw::UnitCostModel;
    use hybrimoe_model::LayerRouting;
    use hybrimoe_sched::baselines::FixedMappingScheduler;
    use hybrimoe_sched::{ExpertTask, HybridScheduler, ScheduleContext, Scheduler};

    fn token_inputs(
        model: &ModelConfig,
        n: usize,
        seed: u64,
    ) -> (Vec<Vec<f32>>, Vec<RouterOutput>) {
        let hidden = model.routed_shape.hidden() as usize;
        let experts = model.routed_experts as usize;
        let k = model.activated_experts as usize;
        (0..n)
            .map(|t| {
                let x: Vec<f32> = (0..hidden)
                    .map(|i| {
                        (((t as u64 * 131 + i as u64 * 7 + seed) % 100) as f32 / 50.0 - 1.0) * 0.1
                    })
                    .collect();
                let logits: Vec<f32> = (0..experts)
                    .map(|e| (((t + e * 13 + seed as usize) % 17) as f32) / 4.0)
                    .collect();
                (x, RouterOutput::route(&logits, k))
            })
            .unzip()
    }

    fn tasks_and_plan(
        model: &ModelConfig,
        routes: &[RouterOutput],
        cached_mod: u16,
        hybrid: bool,
    ) -> SchedulePlan {
        let experts = model.routed_experts;
        let routing = LayerRouting::from_tokens(LayerId(0), experts, routes);
        let tasks: Vec<ExpertTask> = routing
            .activated()
            .into_iter()
            .map(|(e, load)| ExpertTask {
                expert: e,
                load,
                cached: e.0 % cached_mod == 0,
            })
            .collect();
        let cost = UnitCostModel::paper_fig5();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        if hybrid {
            HybridScheduler::new().schedule(&ctx)
        } else {
            FixedMappingScheduler::new().schedule(&ctx)
        }
    }

    #[test]
    fn output_is_independent_of_placement() {
        // The core correctness property: two different valid schedules of
        // the same layer produce bit-identical outputs.
        let model = ModelConfig::tiny_test();
        let (inputs, routes) = token_inputs(&model, 3, 9);
        let plan_a = tasks_and_plan(&model, &routes, 2, true);
        let plan_b = tasks_and_plan(&model, &routes, 2, false);
        let mut exec = RealLayerExecutor::new(model, 7);
        let a = exec
            .execute_layer(LayerId(0), &plan_a, &inputs, &routes)
            .unwrap();
        let b = exec
            .execute_layer(LayerId(0), &plan_b, &inputs, &routes)
            .unwrap();
        assert_eq!(a.output, b.output);
        assert!(a.output.iter().any(|v| *v != 0.0));
    }

    #[test]
    fn expert_major_matches_token_major_reference() {
        // The batched hot path (on the scalar backend) and the retained
        // reference path are the same function of the inputs, bit for bit.
        let model = ModelConfig::tiny_test();
        for (tokens, seed) in [(1usize, 3u64), (3, 9), (8, 17)] {
            let (inputs, routes) = token_inputs(&model, tokens, seed);
            let plan = tasks_and_plan(&model, &routes, 2, true);
            let batched = RealLayerExecutor::with_options(
                model.clone(),
                7,
                RealExecOptions {
                    max_threads: 2,
                    kernel_backend: KernelBackendKind::Scalar,
                    ..Default::default()
                },
            )
            .execute_layer(LayerId(0), &plan, &inputs, &routes)
            .unwrap();
            let reference = RealLayerExecutor::with_options(
                model.clone(),
                7,
                RealExecOptions {
                    max_threads: 2,
                    token_major: true,
                    ..Default::default()
                },
            )
            .execute_layer(LayerId(0), &plan, &inputs, &routes)
            .unwrap();
            assert_eq!(batched.output, reference.output, "tokens={tokens}");
            assert_eq!(batched.cpu_tasks, reference.cpu_tasks);
            assert_eq!(batched.gpu_tasks, reference.gpu_tasks);
        }
    }

    #[test]
    fn every_kernel_backend_matches_the_scalar_oracle_closely() {
        // Placement-independence holds per backend (fixed accumulation
        // order), and every SIMD backend stays within a tight tolerance of
        // the scalar oracle on whole-layer outputs.
        let model = ModelConfig::tiny_test();
        let (inputs, routes) = token_inputs(&model, 5, 23);
        let plan = tasks_and_plan(&model, &routes, 2, true);
        let run = |kind: KernelBackendKind| {
            RealLayerExecutor::with_options(
                model.clone(),
                7,
                RealExecOptions {
                    max_threads: 2,
                    kernel_backend: kind,
                    ..Default::default()
                },
            )
            .execute_layer(LayerId(0), &plan, &inputs, &routes)
            .unwrap()
            .output
        };
        let reference = run(KernelBackendKind::Scalar);
        for backend in hybrimoe_kernels::backend::available() {
            let got = run(backend.kind());
            for (i, (a, b)) in got.iter().zip(reference.iter()).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-4,
                    "{:?} i={i}: {a} vs {b}",
                    backend.kind()
                );
            }
        }
    }

    #[test]
    fn executor_reports_a_concrete_backend() {
        let exec = RealLayerExecutor::new(ModelConfig::tiny_test(), 7);
        assert_ne!(exec.backend_kind(), KernelBackendKind::Auto);
        let scalar = RealLayerExecutor::with_options(
            ModelConfig::tiny_test(),
            7,
            RealExecOptions {
                kernel_backend: KernelBackendKind::Scalar,
                ..Default::default()
            },
        );
        assert_eq!(scalar.backend_kind(), KernelBackendKind::Scalar);
    }

    #[test]
    fn wall_times_and_counts_reported() {
        let model = ModelConfig::tiny_test();
        let (inputs, routes) = token_inputs(&model, 2, 3);
        let plan = tasks_and_plan(&model, &routes, 2, true);
        let mut exec = RealLayerExecutor::new(model, 7);
        let out = exec
            .execute_layer(LayerId(0), &plan, &inputs, &routes)
            .unwrap();
        assert_eq!(
            out.cpu_tasks + out.gpu_tasks,
            plan.cpu_order.len() + plan.gpu_order.len()
        );
        assert!(out.cpu_wall + out.gpu_wall > Duration::ZERO);
    }

    #[test]
    fn gpu_walls_are_timed_per_shard() {
        // A 2-GPU plan: each shard's wall-clock is timed separately, and
        // the per-shard walls account for exactly the total GPU time.
        let model = ModelConfig::tiny_test();
        let hidden = model.routed_shape.hidden() as usize;
        let k = model.activated_experts as usize;
        // Route every token to experts 0 (shard 0) and 1 (shard 1).
        let (inputs, routes): (Vec<Vec<f32>>, Vec<RouterOutput>) = (0..3)
            .map(|t| {
                let x: Vec<f32> = (0..hidden)
                    .map(|i| ((t * 37 + i * 11) % 100) as f32 / 500.0 - 0.1)
                    .collect();
                let mut logits = vec![0.0f32; model.routed_experts as usize];
                logits[0] = 5.0;
                logits[1] = 4.0;
                (x, RouterOutput::route(&logits, k))
            })
            .unzip();
        let routing = LayerRouting::from_tokens(LayerId(0), model.routed_experts, &routes);
        let tasks: Vec<ExpertTask> = routing
            .activated()
            .into_iter()
            .map(|(e, load)| ExpertTask::cached(e, load))
            .collect();
        let cost = UnitCostModel::paper_fig5();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost).with_gpus(2);
        let plan = HybridScheduler::without_cpu_steal().schedule(&ctx);
        let shards_hit: std::collections::HashSet<_> = plan
            .gpu_order
            .iter()
            .filter_map(|g| g.placement.gpu())
            .collect();
        assert!(shards_hit.len() > 1, "routing should hit both shards");

        let mut exec = RealLayerExecutor::new(model, 7);
        let out = exec
            .execute_layer(LayerId(0), &plan, &inputs, &routes)
            .unwrap();
        assert_eq!(out.gpu_walls.len(), 2);
        assert_eq!(out.gpu_walls.iter().sum::<Duration>(), out.gpu_wall);
        for (g, wall) in out.gpu_walls.iter().enumerate() {
            assert!(*wall > Duration::ZERO, "shard {g} untimed");
        }
    }

    #[test]
    fn incomplete_plan_rejected() {
        let model = ModelConfig::tiny_test();
        let (inputs, routes) = token_inputs(&model, 2, 5);
        let mut plan = tasks_and_plan(&model, &routes, 2, true);
        if !plan.cpu_order.is_empty() {
            plan.cpu_order.pop();
        } else {
            plan.gpu_order.pop();
        }
        let mut exec = RealLayerExecutor::new(model, 7);
        let err = exec
            .execute_layer(LayerId(0), &plan, &inputs, &routes)
            .unwrap_err();
        assert!(matches!(err, RealExecError::InvalidPlan(_)), "{err}");
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn bad_input_dimension_rejected() {
        let model = ModelConfig::tiny_test();
        let (mut inputs, routes) = token_inputs(&model, 1, 5);
        inputs[0].pop();
        let plan = tasks_and_plan(&model, &routes, 2, true);
        let mut exec = RealLayerExecutor::new(model, 7);
        let err = exec
            .execute_layer(LayerId(0), &plan, &inputs, &routes)
            .unwrap_err();
        assert!(matches!(err, RealExecError::BadInput { .. }));
    }

    #[test]
    fn mismatched_input_and_route_counts_rejected() {
        let model = ModelConfig::tiny_test();
        let (inputs, routes) = token_inputs(&model, 2, 5);
        let plan = tasks_and_plan(&model, &routes, 2, true);
        let mut exec = RealLayerExecutor::new(model, 7);
        let err = exec
            .execute_layer(LayerId(0), &plan, &inputs[..1], &routes)
            .unwrap_err();
        assert!(matches!(err, RealExecError::BadInput { .. }));
    }

    #[test]
    fn deterministic_outputs_across_executors() {
        let model = ModelConfig::tiny_test();
        let (inputs, routes) = token_inputs(&model, 2, 11);
        let plan = tasks_and_plan(&model, &routes, 2, true);
        let a = RealLayerExecutor::new(model.clone(), 7)
            .execute_layer(LayerId(0), &plan, &inputs, &routes)
            .unwrap();
        let b = RealLayerExecutor::new(model, 7)
            .execute_layer(LayerId(0), &plan, &inputs, &routes)
            .unwrap();
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn scratch_survives_shrinking_batches() {
        // Re-running the same executor with a smaller batch must not leak
        // stale token lists or gather contents from the bigger layer.
        let model = ModelConfig::tiny_test();
        let mut exec = RealLayerExecutor::new(model.clone(), 7);
        for tokens in [6usize, 2, 4, 1] {
            let (inputs, routes) = token_inputs(&model, tokens, 13);
            let plan = tasks_and_plan(&model, &routes, 2, true);
            let got = exec
                .execute_layer(LayerId(0), &plan, &inputs, &routes)
                .unwrap();
            let fresh = RealLayerExecutor::new(model.clone(), 7)
                .execute_layer(LayerId(0), &plan, &inputs, &routes)
                .unwrap();
            assert_eq!(got.output, fresh.output, "tokens={tokens}");
        }
    }

    #[test]
    fn options_bound_budget_and_threads() {
        let model = ModelConfig::tiny_test();
        let per = model.routed_shape.packed_bytes();
        let opts = RealExecOptions {
            weight_budget_bytes: per, // room for exactly one expert
            max_threads: 1,
            token_major: false,
            kernel_backend: KernelBackendKind::Auto,
        };
        let mut exec = RealLayerExecutor::with_options(model.clone(), 7, opts);
        assert_eq!(exec.threads(), 1);
        let (inputs, routes) = token_inputs(&model, 2, 3);
        let plan = tasks_and_plan(&model, &routes, 2, true);
        let err = exec
            .execute_layer(LayerId(0), &plan, &inputs, &routes)
            .unwrap_err();
        assert!(matches!(err, RealExecError::Weights(_)), "{err}");
    }
}
