//! High-level inference sessions.
//!
//! A [`Session`] wraps an [`Engine`] with trace generation, modeling a
//! long-lived serving process: prompts arrive, answers are decoded, and the
//! expert cache stays warm in between. This is the API an application
//! would use; the lower-level [`Engine::run`] remains available for
//! replaying explicit traces.

use hybrimoe_trace::TraceGenerator;

use crate::{Engine, EngineConfig, StageMetrics};

/// A long-lived inference session over one engine.
///
/// # Example
///
/// ```
/// use hybrimoe::{EngineConfig, Framework, Session};
/// use hybrimoe_model::ModelConfig;
///
/// let config = EngineConfig::preset(Framework::HybriMoe, ModelConfig::tiny_test(), 0.5);
/// let mut session = Session::new(config, 42);
/// let ttft = session.prompt(16).ttft();
/// let decode = session.generate(8);
/// assert!(ttft.as_nanos() > 0);
/// assert_eq!(decode.steps.len(), 8);
/// ```
#[derive(Debug)]
pub struct Session {
    engine: Engine,
    seed: u64,
    turn: u64,
}

impl Session {
    /// Creates a session; `seed` drives the synthetic request traces.
    pub fn new(config: EngineConfig, seed: u64) -> Session {
        Session {
            engine: Engine::new(config),
            seed,
            turn: 0,
        }
    }

    /// The underlying engine (cache state, configuration).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Processes a prompt of `tokens` tokens (prefill) and returns the
    /// stage metrics; [`StageMetrics::ttft`] is the time to first token.
    pub fn prompt(&mut self, tokens: u32) -> StageMetrics {
        let trace = self.generator().prefill_trace(tokens);
        self.turn += 1;
        self.engine.run(&trace)
    }

    /// Decodes `tokens` answer tokens and returns the stage metrics;
    /// [`StageMetrics::mean_step_latency`] is the time between tokens.
    pub fn generate(&mut self, tokens: usize) -> StageMetrics {
        let trace = self.generator().decode_trace(tokens);
        self.turn += 1;
        self.engine.run(&trace)
    }

    /// Runs a full turn (prompt + answer) and returns `(prefill, decode)`.
    pub fn turn(
        &mut self,
        prompt_tokens: u32,
        answer_tokens: usize,
    ) -> (StageMetrics, StageMetrics) {
        (self.prompt(prompt_tokens), self.generate(answer_tokens))
    }

    fn generator(&self) -> TraceGenerator {
        TraceGenerator::new(
            self.engine.config().model.clone(),
            self.seed
                .wrapping_add(self.turn.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Framework;
    use hybrimoe_model::ModelConfig;

    fn session() -> Session {
        Session::new(
            EngineConfig::preset(Framework::HybriMoe, ModelConfig::tiny_test(), 0.5),
            7,
        )
    }

    #[test]
    fn prompt_then_generate() {
        let mut s = session();
        let p = s.prompt(32);
        assert_eq!(p.steps.len(), 1);
        assert_eq!(p.steps[0].tokens, 32);
        let d = s.generate(5);
        assert_eq!(d.steps.len(), 5);
    }

    #[test]
    fn turns_use_fresh_traces() {
        let mut s = session();
        let (p1, d1) = s.turn(16, 4);
        let (p2, d2) = s.turn(16, 4);
        // Different turns route differently; totals almost surely differ,
        // but the structural counts must match.
        assert_eq!(p1.steps.len(), p2.steps.len());
        assert_eq!(d1.steps.len(), d2.steps.len());
        assert_eq!(d1.cache.lookups(), d2.cache.lookups());
    }

    #[test]
    fn sessions_are_deterministic() {
        let mut a = session();
        let mut b = session();
        assert_eq!(a.turn(16, 4), b.turn(16, 4));
        assert_eq!(a.generate(3), b.generate(3));
    }

    #[test]
    fn engine_accessor_exposes_cache() {
        let mut s = session();
        s.prompt(16);
        assert!(s.engine().cache().capacity() > 0);
    }
}
