//! The HybriMoE inference engine.

use hybrimoe_cache::{CacheStats, ExpertCache};
use hybrimoe_hw::{AffineCostModel, CostModel, Device, PlanExecutor, SimDuration};
use hybrimoe_model::{ExpertKey, LayerId};
use hybrimoe_sched::{
    ExpertTask, PredictedLayer, PrefetchContext, Prefetcher, ScheduleContext, Scheduler,
};
use hybrimoe_trace::{ActivationTrace, TraceGenerator, TraceStep};

use crate::{EngineConfig, PlacementKind, StageMetrics, StepMetrics};

/// Runs MoE inference over activation traces on the modeled hybrid
/// platform, with pluggable scheduler, prefetcher and cache policy.
///
/// The engine mirrors the paper's per-layer loop: route → look up the cache
/// → schedule the activated experts across CPU/GPU/PCIe → execute → update
/// the cache with on-demand transfers → use idle PCIe time for prefetching
/// (and cache refill). The warmup phase (§IV-A) happens in [`Engine::new`]:
/// a short calibration trace drives the initial cache placement and primes
/// the score estimates of the cache policy.
///
/// # Example
///
/// ```
/// use hybrimoe::{Engine, EngineConfig, Framework};
/// use hybrimoe_model::ModelConfig;
/// use hybrimoe_trace::TraceGenerator;
///
/// let model = ModelConfig::deepseek();
/// let mut hybri = Engine::new(EngineConfig::preset(Framework::HybriMoe, model.clone(), 0.25));
/// let mut ktrans = Engine::new(EngineConfig::preset(Framework::KTransformers, model.clone(), 0.25));
/// let trace = TraceGenerator::new(model, 7).decode_trace(4);
/// let a = hybri.run(&trace);
/// let b = ktrans.run(&trace);
/// assert!(a.total <= b.total); // HybriMoE never loses to the fixed mapping
/// ```
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    cost: AffineCostModel,
    cache: ExpertCache,
    scheduler: Box<dyn Scheduler>,
    prefetcher: Box<dyn Prefetcher>,
    /// Number of fully GPU-resident layers (whole-layer placement).
    resident_layers: u16,
    /// Background PCIe transfers in flight (prefetches and refills), each
    /// with its remaining wire time. Background transfers pipeline across
    /// layer boundaries: a Mixtral-sized expert takes longer than one
    /// decode layer, so restricting transfers to a single layer's idle
    /// window would starve prefetching entirely.
    inflight: std::collections::VecDeque<(ExpertKey, SimDuration)>,
}

/// Maximum queued background transfers; keeps prefetches from going stale.
const MAX_INFLIGHT: usize = 4;

impl Engine {
    /// Builds the engine and runs the warmup phase (initial placement and
    /// policy priming).
    pub fn new(config: EngineConfig) -> Engine {
        let cost = AffineCostModel::from_platform(&config.platform);
        let capacity = config.cache_capacity();
        let policy = config.cache_policy.build(config.mrs_alpha);
        let mut cache = ExpertCache::new(capacity, policy);

        let mut resident_layers = 0u16;
        match config.placement {
            PlacementKind::WholeLayers => {
                resident_layers = (capacity / config.model.routed_experts.max(1) as usize) as u16;
                for l in 0..resident_layers.min(config.model.layers) {
                    for e in 0..config.model.routed_experts {
                        let key = ExpertKey::new(LayerId(l), hybrimoe_model::ExpertId(e));
                        cache.insert(key);
                        if config.pinned {
                            cache.pin(key);
                        }
                    }
                }
            }
            PlacementKind::PerLayerFrequency => {
                place_by_frequency(&mut cache, &config);
            }
        }
        cache.reset_stats();

        Engine {
            scheduler: config.scheduler.build(),
            prefetcher: config.prefetcher.build(),
            cost,
            cache,
            config,
            resident_layers,
            inflight: std::collections::VecDeque::new(),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The current cache (resident set and statistics).
    pub fn cache(&self) -> &ExpertCache {
        &self.cache
    }

    /// Runs every step of `trace` and returns the stage metrics.
    ///
    /// # Panics
    ///
    /// Panics if the trace was generated for a different model (layer or
    /// expert counts disagree).
    pub fn run(&mut self, trace: &ActivationTrace) -> StageMetrics {
        let before = self.cache.stats();
        let steps: Vec<StepMetrics> = trace.steps.iter().map(|s| self.run_step(s)).collect();
        let after = self.cache.stats();
        StageMetrics::from_steps(steps, diff_stats(before, after))
    }

    /// Runs one forward pass (a decode token or a prefill batch).
    pub fn run_step(&mut self, step: &TraceStep) -> StepMetrics {
        assert_eq!(
            step.layers.len(),
            self.config.model.layers as usize,
            "trace was generated for a different model"
        );
        let model = self.config.model.clone();
        let tokens = step.tokens;
        let routed_profile = model.routed_profile();
        let shared_profile = model.shared_profile();
        let attn_profile = model.attention_profile();
        let k = model.activated_experts;

        let mut latency = SimDuration::ZERO;
        let mut busy = [SimDuration::ZERO; 3];
        let mut cpu_experts = 0u32;
        let mut gpu_experts = 0u32;
        let mut demand_transfers = 0u32;
        let mut prefetches = 0u32;

        for (l, rec) in step.layers.iter().enumerate() {
            let layer = LayerId(l as u16);
            // 1. The cache policy observes the routing scores (Eq. 3).
            self.cache.note_routing(&rec.routing, k);

            // 2. Non-MoE work (attention, norms). llama.cpp runs it on the
            // device the layer is mapped to at decode — for prefill batches
            // even CPU layers push the heavy matmuls to the GPU (cuBLAS
            // offload). Everyone else keeps it on the GPU.
            let prefill_batch = tokens >= hybrimoe_sched::baselines::PREFILL_BATCH_THRESHOLD;
            let attn_on_gpu =
                !self.config.attention_follows_layer || prefill_batch || self.layer_resident(layer);
            let attn_time = if attn_on_gpu {
                self.cost.gpu_compute(&attn_profile, tokens)
            } else {
                self.cost.cpu_compute(&attn_profile, tokens, false)
            };
            busy[if attn_on_gpu {
                Device::Gpu.index()
            } else {
                Device::Cpu.index()
            }] += attn_time;

            // 3. Cache lookups define the task set.
            let tasks: Vec<ExpertTask> = rec
                .routing
                .activated()
                .into_iter()
                .map(|(expert, load)| {
                    let cached = self.cache.lookup(ExpertKey::new(layer, expert));
                    ExpertTask {
                        expert,
                        load,
                        cached,
                    }
                })
                .collect();

            // 4. Schedule and execute the layer.
            let ctx = ScheduleContext::new(
                layer,
                tokens,
                &tasks,
                routed_profile,
                shared_profile,
                &self.cost,
            );
            let plan = self.scheduler.schedule(&ctx);
            debug_assert_eq!(plan.validate(&tasks), Ok(()), "invalid plan from scheduler");
            let executed = PlanExecutor::new()
                .execute(plan.to_ops(&ctx))
                .expect("plans lower to acyclic ops");
            let moe_makespan = executed.makespan;

            cpu_experts += plan.cpu_order.len() as u32;
            gpu_experts += plan.gpu_order.len() as u32;
            demand_transfers += plan.pcie_order.len() as u32;
            for d in Device::ALL {
                busy[d.index()] += executed.timelines.get(d).busy_time();
            }

            // 5. On-demand transfers become resident (may evict per policy,
            // but never the experts of the layer in flight). llama.cpp-style
            // streamed weights (transfer_profile set) are discarded after
            // the matmul and never enter the cache.
            let protect: Vec<ExpertKey> = tasks
                .iter()
                .map(|t| ExpertKey::new(layer, t.expert))
                .collect();
            // During a prefill batch each layer is visited exactly once, so
            // evicting a placed expert of a *later* layer to cache a
            // transfer is strictly harmful within the pass; inserts go to
            // free slots only ("subject to free cache space", §IV-C). At
            // decode, temporal reuse justifies eviction-based insertion.
            let evict_ok = !prefill_batch || self.config.prefill_evict_inserts;
            if plan.transfer_profile.is_none() && self.config.demand_inserts {
                for e in plan.transferred_experts() {
                    let key = ExpertKey::new(layer, e);
                    if evict_ok {
                        self.cache.insert_protected(key, &protect);
                    } else {
                        self.cache.insert_if_free(key);
                    }
                }
            }

            // 6. Idle PCIe time advances background transfers (prefetches
            // and cache refills), which pipeline across layer boundaries.
            let pcie_busy = executed.timelines.get(Device::Pcie).busy_time();
            let mut budget = moe_makespan.saturating_sub(pcie_busy) + attn_time;
            let transfer_time = self.cost.transfer(&routed_profile);

            budget = self.drain_inflight(budget, evict_ok, &protect, &mut busy, &mut prefetches);

            // Enqueue new prefetch candidates for the predicted layers.
            let queue_slots = MAX_INFLIGHT.saturating_sub(self.inflight.len());
            if queue_slots > 0 && !rec.predicted.is_empty() {
                let lookahead = self.build_lookahead(rec);
                let pctx = PrefetchContext {
                    current_layer: layer,
                    lookahead: &lookahead,
                    free_slots: queue_slots,
                    budget: transfer_time * queue_slots as u64,
                    tokens,
                    routed_profile,
                    shared_profile,
                    cost: &self.cost,
                };
                for key in self.prefetcher.plan(&pctx) {
                    self.enqueue_background(key, transfer_time);
                }
            }

            // Refill the highest-scoring missed experts of this layer
            // (background cache update; temporal reuse makes recently
            // missed experts likely to be needed again).
            if self.config.refill_on_miss {
                let scores = rec.routing.mean_scores();
                let mut missed: Vec<&ExpertTask> = tasks.iter().filter(|t| !t.cached).collect();
                missed.retain(|t| !plan.transferred_experts().any(|e| e == t.expert));
                missed.sort_by(|a, b| {
                    let sa = scores.get(a.expert.0 as usize).copied().unwrap_or(0.0);
                    let sb = scores.get(b.expert.0 as usize).copied().unwrap_or(0.0);
                    sb.partial_cmp(&sa)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.expert.cmp(&b.expert))
                });
                for t in missed {
                    self.enqueue_background(ExpertKey::new(layer, t.expert), transfer_time);
                }
            }

            // Newly enqueued transfers may start in this layer's leftover
            // idle time.
            self.drain_inflight(budget, evict_ok, &protect, &mut busy, &mut prefetches);

            latency += attn_time + moe_makespan;
        }

        StepMetrics {
            tokens,
            latency,
            device_busy: busy,
            cpu_experts,
            gpu_experts,
            demand_transfers,
            prefetches,
        }
    }

    /// Spends idle PCIe `budget` on the in-flight background transfers;
    /// completed ones become resident (evicting per policy only when
    /// `evict_ok`; prefill passes insert into free slots only). Returns the
    /// leftover budget.
    fn drain_inflight(
        &mut self,
        mut budget: SimDuration,
        evict_ok: bool,
        protect: &[ExpertKey],
        busy: &mut [SimDuration; 3],
        prefetches: &mut u32,
    ) -> SimDuration {
        while budget > SimDuration::ZERO {
            let Some((key, remaining)) = self.inflight.front_mut() else {
                break;
            };
            if *remaining > budget {
                *remaining -= budget;
                busy[Device::Pcie.index()] += budget;
                return SimDuration::ZERO;
            }
            budget -= *remaining;
            busy[Device::Pcie.index()] += *remaining;
            let key = *key;
            self.inflight.pop_front();
            let outcome = if evict_ok {
                self.cache.insert_protected(key, protect)
            } else {
                self.cache.insert_if_free(key)
            };
            if outcome.is_resident() {
                *prefetches += 1;
            }
        }
        budget
    }

    /// Queues a background transfer unless the expert is already resident,
    /// already queued, or the queue is full.
    fn enqueue_background(&mut self, key: ExpertKey, transfer_time: SimDuration) {
        if self.inflight.len() >= MAX_INFLIGHT
            || self.cache.contains(key)
            || self.inflight.iter().any(|(k, _)| *k == key)
        {
            return;
        }
        self.inflight.push_back((key, transfer_time));
    }

    /// Whether every routed expert of `layer` is resident (whole-layer
    /// mapping semantics).
    fn layer_resident(&self, layer: LayerId) -> bool {
        if self.config.placement == PlacementKind::WholeLayers {
            return layer.0 < self.resident_layers;
        }
        self.cache.cached_in_layer(layer).len() == self.config.model.routed_experts as usize
    }

    /// Converts a record's predicted routings into prefetch inputs with
    /// current cache residency.
    fn build_lookahead(&self, rec: &hybrimoe_trace::LayerRecord) -> Vec<PredictedLayer> {
        rec.predicted
            .iter()
            .map(|routing| {
                let layer = routing.layer();
                let tasks = routing
                    .activated()
                    .into_iter()
                    .map(|(expert, load)| ExpertTask {
                        expert,
                        load,
                        cached: self.cache.contains(ExpertKey::new(layer, expert)),
                    })
                    .collect();
                PredictedLayer {
                    layer,
                    tasks,
                    scores: routing.mean_scores(),
                }
            })
            .collect()
    }
}

/// Initial placement: fill per-layer quotas with the experts that were
/// activated most often in a short warmup trace.
fn place_by_frequency(cache: &mut ExpertCache, config: &EngineConfig) {
    let model = &config.model;
    let capacity = cache.capacity();
    if capacity == 0 {
        return;
    }
    let warm_trace = TraceGenerator::new(model.clone(), config.seed ^ 0x57A2_77A2).decode_trace(24);

    let layers = model.layers as usize;
    let experts = model.routed_experts as usize;
    let mut counts = vec![0u32; layers * experts];
    for step in &warm_trace.steps {
        for (l, rec) in step.layers.iter().enumerate() {
            for (e, _) in rec.routing.activated() {
                counts[l * experts + e.0 as usize] += 1;
            }
        }
    }

    // Even per-layer quotas; earlier layers absorb the remainder.
    let base = capacity / layers;
    let remainder = capacity % layers;
    for l in 0..layers {
        let quota = base + usize::from(l < remainder);
        let mut ranked: Vec<(u32, u16)> = (0..experts)
            .map(|e| (counts[l * experts + e], e as u16))
            .collect();
        ranked.sort_by_key(|(c, e)| (std::cmp::Reverse(*c), *e));
        for (_, e) in ranked.into_iter().take(quota.min(experts)) {
            let key = ExpertKey::new(LayerId(l as u16), hybrimoe_model::ExpertId(e));
            cache.insert(key);
            if config.pinned {
                cache.pin(key);
            }
        }
    }

    // Prime score/recency estimates with the warmup routings.
    for step in &warm_trace.steps {
        for rec in &step.layers {
            cache.note_routing(&rec.routing, model.activated_experts);
        }
    }
}

/// The counter delta between two stats snapshots.
fn diff_stats(before: CacheStats, after: CacheStats) -> CacheStats {
    CacheStats {
        hits: after.hits - before.hits,
        misses: after.misses - before.misses,
        insertions: after.insertions - before.insertions,
        evictions: after.evictions - before.evictions,
        prefetch_insertions: after.prefetch_insertions - before.prefetch_insertions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Framework;
    use hybrimoe_model::ModelConfig;

    fn tiny_engine(framework: Framework, ratio: f64) -> Engine {
        Engine::new(EngineConfig::preset(
            framework,
            ModelConfig::tiny_test(),
            ratio,
        ))
    }

    fn tiny_trace(seed: u64, steps: usize) -> ActivationTrace {
        TraceGenerator::new(ModelConfig::tiny_test(), seed).decode_trace(steps)
    }

    #[test]
    fn deterministic_runs() {
        let trace = tiny_trace(3, 6);
        let a = tiny_engine(Framework::HybriMoe, 0.5).run(&trace);
        let b = tiny_engine(Framework::HybriMoe, 0.5).run(&trace);
        assert_eq!(a, b);
    }

    #[test]
    fn cache_fills_to_capacity() {
        for f in Framework::ALL {
            let e = tiny_engine(f, 0.5);
            let expected = match f {
                // llama.cpp rounds down to whole layers: 16 slots = 2 layers
                // of 8.
                Framework::LlamaCpp => 16,
                _ => 16,
            };
            assert_eq!(e.cache().len(), expected, "{f}");
        }
    }

    #[test]
    fn pinned_frameworks_keep_their_placement() {
        let trace = tiny_trace(5, 8);
        let mut e = tiny_engine(Framework::KTransformers, 0.25);
        let before: Vec<ExpertKey> = e.cache().resident_keys().collect();
        e.run(&trace);
        let after: Vec<ExpertKey> = e.cache().resident_keys().collect();
        assert_eq!(before, after);
    }

    #[test]
    fn dynamic_framework_updates_cache() {
        let trace = tiny_trace(5, 8);
        let mut e = tiny_engine(Framework::HybriMoe, 0.25);
        let metrics = e.run(&trace);
        assert!(
            metrics.cache.insertions > 0,
            "dynamic cache must take insertions: {:?}",
            metrics.cache
        );
    }

    #[test]
    fn hybrimoe_not_slower_than_ktransformers() {
        let trace = tiny_trace(7, 10);
        let h = tiny_engine(Framework::HybriMoe, 0.25).run(&trace);
        let k = tiny_engine(Framework::KTransformers, 0.25).run(&trace);
        assert!(
            h.total <= k.total,
            "hybri {} vs ktrans {}",
            h.total,
            k.total
        );
    }

    #[test]
    fn hit_rate_monotone_in_capacity() {
        let trace = tiny_trace(9, 12);
        let lo = tiny_engine(Framework::KTransformers, 0.25).run(&trace);
        let hi = tiny_engine(Framework::KTransformers, 0.75).run(&trace);
        assert!(hi.hit_rate() >= lo.hit_rate());
    }

    #[test]
    fn full_cache_means_all_hits_and_gpu_only() {
        let trace = tiny_trace(11, 5);
        let m = tiny_engine(Framework::HybriMoe, 1.0).run(&trace);
        assert!((m.hit_rate() - 1.0).abs() < 1e-9);
        assert_eq!(m.demand_transfers(), 0);
    }

    #[test]
    fn prefill_step_counts_tokens() {
        let model = ModelConfig::tiny_test();
        let trace = TraceGenerator::new(model.clone(), 13).prefill_trace(32);
        let mut e = tiny_engine(Framework::HybriMoe, 0.5);
        let m = e.run(&trace);
        assert_eq!(m.steps.len(), 1);
        assert_eq!(m.steps[0].tokens, 32);
        assert!(m.total > SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "different model")]
    fn wrong_model_trace_rejected() {
        let trace = TraceGenerator::new(ModelConfig::deepseek(), 1).decode_trace(1);
        tiny_engine(Framework::HybriMoe, 0.5).run(&trace);
    }

    #[test]
    fn stats_are_per_run() {
        let trace = tiny_trace(15, 4);
        let mut e = tiny_engine(Framework::HybriMoe, 0.5);
        let a = e.run(&trace);
        let b = e.run(&trace);
        // Each run reports its own lookups (same trace length).
        assert_eq!(a.cache.lookups(), b.cache.lookups());
    }

    #[test]
    fn zero_capacity_runs_cpu_only() {
        let trace = tiny_trace(17, 4);
        let mut e = tiny_engine(Framework::HybriMoe, 0.0);
        let m = e.run(&trace);
        assert_eq!(m.hit_rate(), 0.0);
        assert!(m.total > SimDuration::ZERO);
    }
}
