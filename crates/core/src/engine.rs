//! The HybriMoE inference engine.

use std::collections::VecDeque;

use hybrimoe_cache::{CacheStats, InsertOutcome, ShardedExpertCache};
use hybrimoe_fault::{FaultRates, FaultStream};
use hybrimoe_hw::{
    device_count, AffineCostModel, CalibrationProfile, CostModel, Device, SimDuration,
};
use hybrimoe_model::{shard_of, ExpertKey, LayerId, LayerRouting};
use hybrimoe_sched::{
    ExpertPredictor, ExpertTask, PredictedLayer, PrefetchContext, Prefetcher, ScheduleContext,
    ScheduleScratch, Scheduler, TransitionPredictor,
};
use hybrimoe_trace::{ActivationTrace, TraceGenerator, TraceStep};

use crate::backend::{ExecutionBackend, LayerRequest};
use crate::realexec::RealLayerOutput;
use crate::{EngineConfig, PlacementKind, PrefetcherKind, StageMetrics, StepMetrics};

/// Runs MoE inference over activation traces on the modeled hybrid
/// platform, with pluggable scheduler, prefetcher and cache policy.
///
/// The engine mirrors the paper's per-layer loop: route → look up the cache
/// → schedule the activated experts across CPU/GPU/PCIe → execute → update
/// the cache with on-demand transfers → use idle PCIe time for prefetching
/// (and cache refill). The warmup phase (§IV-A) happens in [`Engine::new`]:
/// a short calibration trace drives the initial cache placement and primes
/// the score estimates of the cache policy.
///
/// # Incremental stepping
///
/// The fundamental unit of work is one forward pass: [`Engine::step`] runs
/// a single [`TraceStep`] (a decode token batch or a prefill batch) and
/// returns its [`StepMetrics`]. [`Engine::run`] is a thin loop over `step`
/// bracketed by [`Engine::begin_stage`]/[`Engine::end_stage`], which
/// aggregate per-step metrics and cache-statistics deltas into
/// [`StageMetrics`]. A serving layer drives `step` directly, feeding it
/// merged batches formed from concurrently active requests (see
/// [`crate::serve`]).
///
/// # Execution backends
///
/// Schedule *construction* (routing, cache lookups, scheduling) is always
/// analytic; schedule *execution* is delegated to the configured
/// [`ExecutionBackend`]: the default [`SimBackend`](crate::SimBackend)
/// replays plans on the simulated device timelines, while
/// [`RealCpuBackend`](crate::RealCpuBackend) runs every expert partition
/// with the quantized CPU kernels and reports measured wall-clock (see
/// [`crate::backend`]). The real backend requires traces generated with
/// [`TraceGenerator::with_token_states`].
///
/// # Example
///
/// ```
/// use hybrimoe::{Engine, EngineConfig, Framework};
/// use hybrimoe_model::ModelConfig;
/// use hybrimoe_trace::TraceGenerator;
///
/// let model = ModelConfig::deepseek();
/// let mut hybri = Engine::new(EngineConfig::preset(Framework::HybriMoe, model.clone(), 0.25));
/// let mut ktrans = Engine::new(EngineConfig::preset(Framework::KTransformers, model.clone(), 0.25));
/// let trace = TraceGenerator::new(model, 7).decode_trace(4);
/// let a = hybri.run(&trace);
/// let b = ktrans.run(&trace);
/// assert!(a.total <= b.total); // HybriMoE never loses to the fixed mapping
/// ```
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    cost: AffineCostModel,
    cache: ShardedExpertCache,
    scheduler: Box<dyn Scheduler>,
    prefetcher: Box<dyn Prefetcher>,
    /// Executes each layer's schedule: analytic simulation or real kernels
    /// (see [`crate::backend`]). Schedule construction is backend-agnostic.
    backend: Box<dyn ExecutionBackend>,
    /// Number of fully GPU-resident layers (whole-layer placement).
    resident_layers: u16,
    /// Background PCIe transfers in flight (prefetches and refills), each
    /// with its remaining wire time. Background transfers pipeline across
    /// layer boundaries: a Mixtral-sized expert takes longer than one
    /// decode layer, so restricting transfers to a single layer's idle
    /// window would starve prefetching entirely.
    inflight: VecDeque<Transfer>,
    /// Learned cross-layer expert predictor, present when the configured
    /// prefetcher is [`PrefetcherKind::Predictive`]. It observes every
    /// routing the engine executes and supplies the prefetch lookahead
    /// (with measured per-distance confidence) in place of the trace's
    /// oracle-decay predictions.
    predictor: Option<TransitionPredictor>,
    /// Transfers that finished during the current step, staged until the
    /// next step boundary (pipelined prefetch only): committing at the
    /// boundary keeps mid-step cache state identical for every layer of a
    /// forward pass and makes landings observable exactly once per step.
    pending_commit: Vec<(ExpertKey, bool)>,
    /// The last routing the engine executed, kept so pipelined mode can
    /// issue prefetch for the *next* forward pass at step boundaries.
    last_routing: Option<LayerRouting>,
    /// Cumulative prefetch accounting (issued / landed / wasted).
    counters: PrefetchCounters,
    /// Reused per-layer task/protect buffers (no steady-state allocation).
    scratch: ScheduleScratch,
    /// The currently open stage, if any.
    stage: Option<StageAccum>,
    /// Seeded fault injector for the step loop, present only when the
    /// configured [`EngineConfig::fault_plan`] arms an engine knob
    /// (`spike_ppm` or `panic_ppm`) — the off path costs one branch.
    faults: Option<EngineFaults>,
}

/// Deterministic engine-step fault state: the plan's rates plus the
/// `engine.step` roll stream (advances once per armed knob per step, so
/// outcomes are bit-reproducible from the plan seed regardless of timing).
#[derive(Debug)]
struct EngineFaults {
    rates: FaultRates,
    stream: FaultStream,
}

/// One background PCIe transfer in flight.
#[derive(Debug, Clone, Copy)]
struct Transfer {
    key: ExpertKey,
    remaining: SimDuration,
    /// Whether the transfer was issued by the prefetcher (as opposed to a
    /// refill-on-miss), for the issued/landed/wasted accounting.
    prefetch: bool,
}

/// Cumulative background-prefetch accounting since the engine was built
/// (never reset by [`Engine::warmup`]; surfaced at `GET /metrics`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchCounters {
    /// Prefetch transfers enqueued on the background PCIe queue.
    pub issued: u64,
    /// Prefetch transfers that completed and entered the cache.
    pub landed: u64,
    /// Prefetch transfers whose wire time was spent for nothing: the
    /// expert could not enter the cache (no eligible slot, or it became
    /// resident through another path first) or the queue was discarded
    /// before the transfer finished (re-warm).
    pub wasted: u64,
}

/// Accumulates the metrics of an open stage.
#[derive(Debug)]
struct StageAccum {
    base: CacheStats,
    steps: Vec<StepMetrics>,
}

impl Engine {
    /// Builds the engine and runs the warmup phase (initial placement and
    /// policy priming). Equivalent to [`Engine::cold`] followed by
    /// [`Engine::warmup`].
    pub fn new(config: EngineConfig) -> Engine {
        let mut engine = Engine::cold(config);
        engine.warmup();
        engine
    }

    /// Builds the engine **without** warming up: the cache starts empty and
    /// the policy unprimed. Call [`Engine::warmup`] before measuring, or
    /// run cold deliberately (e.g. to study cold-start behaviour).
    pub fn cold(config: EngineConfig) -> Engine {
        let cost = AffineCostModel::from_platform(&config.platform);
        let capacity = config.cache_capacity();
        // One cache shard (and one policy instance) per GPU: residency and
        // score estimates are device-local under the affinity map.
        let cache = ShardedExpertCache::new(capacity, config.num_gpus.max(1), || {
            config.cache_policy.build(config.mrs_alpha)
        });

        let predictor = (config.prefetcher == PrefetcherKind::Predictive).then(|| {
            TransitionPredictor::new(
                config.model.layers as usize,
                config.model.routed_experts as usize,
            )
        });

        let faults = (config.fault_plan.rates.spike_ppm > 0
            || config.fault_plan.rates.panic_ppm > 0)
            .then(|| EngineFaults {
                rates: config.fault_plan.rates,
                stream: config.fault_plan.stream("engine.step"),
            });

        Engine {
            scheduler: config.scheduler.build(),
            prefetcher: config.prefetcher.build(),
            backend: config.backend.build(&config),
            cost,
            cache,
            config,
            resident_layers: 0,
            inflight: VecDeque::new(),
            predictor,
            pending_commit: Vec::new(),
            last_routing: None,
            counters: PrefetchCounters::default(),
            scratch: ScheduleScratch::new(),
            stage: None,
            faults,
        }
    }

    /// Runs the warmup phase (§IV-A): fills the cache according to the
    /// configured placement, pins it if the framework is static, primes the
    /// policy's score estimates, and resets the cache statistics so
    /// measurement starts clean. Warming an already-warm engine re-primes
    /// the policy, re-applies the placement (which can evict residents that
    /// drifted from it while the cache was full), and resets the
    /// statistics.
    ///
    /// # Panics
    ///
    /// Panics if a stage is open: resetting statistics mid-stage would
    /// invalidate the stage's baseline snapshot.
    pub fn warmup(&mut self) {
        assert!(self.stage.is_none(), "cannot warm up while a stage is open");
        // Background transfers queued by a previous workload would leak
        // into the next measurement; warmup starts clean. Discarded
        // prefetches spent wire time without landing.
        self.counters.wasted += self.inflight.iter().filter(|t| t.prefetch).count() as u64
            + self.pending_commit.iter().filter(|(_, p)| *p).count() as u64;
        self.inflight.clear();
        self.pending_commit.clear();
        self.last_routing = None;
        // Prime the learned predictor on the same warmup trace that drives
        // the frequency placement, so serving starts with a usable
        // transition matrix instead of a cold decline-to-predict phase.
        if let Some(pred) = self.predictor.as_mut() {
            let warm =
                TraceGenerator::new(self.config.model.clone(), self.config.seed ^ 0x57A2_77A2)
                    .decode_trace(24);
            for step in &warm.steps {
                for rec in &step.layers {
                    pred.observe(&rec.routing);
                }
            }
        }
        match self.config.placement {
            PlacementKind::WholeLayers => {
                let capacity = self.cache.capacity();
                self.resident_layers =
                    (capacity / self.config.model.routed_experts.max(1) as usize) as u16;
                let placement: Vec<ExpertKey> = (0..self
                    .resident_layers
                    .min(self.config.model.layers))
                    .flat_map(|l| {
                        (0..self.config.model.routed_experts)
                            .map(move |e| ExpertKey::new(LayerId(l), hybrimoe_model::ExpertId(e)))
                    })
                    .collect();
                apply_placement(&mut self.cache, &placement, self.config.pinned);
            }
            PlacementKind::PerLayerFrequency => {
                place_by_frequency(&mut self.cache, &self.config);
            }
        }
        self.cache.reset_stats();
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The current cache shards (resident sets and statistics).
    pub fn cache(&self) -> &ShardedExpertCache {
        &self.cache
    }

    /// The execution backend running the schedules.
    pub fn backend(&self) -> &dyn ExecutionBackend {
        self.backend.as_ref()
    }

    /// Drains the numerical layer outputs of the most recent step, in layer
    /// order. Empty unless the engine runs a real-execution backend.
    pub fn take_real_outputs(&mut self) -> Vec<RealLayerOutput> {
        self.backend.take_step_outputs()
    }

    /// The CPU calibration the backend has accumulated so far, if it
    /// measures real kernels. Feed it back through
    /// [`Platform::with_calibration`](hybrimoe_hw::Platform::with_calibration)
    /// to ground the simulator's CPU constants in measured runs.
    pub fn backend_calibration(&self) -> Option<CalibrationProfile> {
        self.backend.calibration()
    }

    /// Worker fleet health, if the engine runs the remote-worker backend
    /// ([`crate::BackendKind::RemoteWorkers`]); `None` for local backends.
    pub fn worker_health(&self) -> Option<hybrimoe_worker::WorkerHealthSnapshot> {
        self.backend.worker_health()
    }

    /// Cumulative prefetch accounting (issued / landed / wasted) since the
    /// engine was built.
    pub fn prefetch_counters(&self) -> PrefetchCounters {
        self.counters
    }

    /// The learned predictor's running top-k accuracy, if one is
    /// configured ([`PrefetcherKind::Predictive`]); `0.0` before the first
    /// scored transition.
    pub fn predictor_accuracy(&self) -> Option<f64> {
        self.predictor.as_ref().map(ExpertPredictor::accuracy)
    }

    /// Prefetched transfers that finished during the current step and are
    /// staged for the next step boundary (pipelined mode only — empty
    /// otherwise). Staged landings become cache-resident, or are counted
    /// wasted, exactly when the next step begins.
    pub fn pending_prefetch_commits(&self) -> Vec<ExpertKey> {
        self.pending_commit
            .iter()
            .filter(|(_, prefetch)| *prefetch)
            .map(|(key, _)| *key)
            .collect()
    }

    /// Cache hit ratio per GPU shard since the last statistics reset
    /// (`0.0` for shards with no lookups yet).
    pub fn shard_hit_ratios(&self) -> Vec<f64> {
        (0..self.cache.num_shards())
            .map(|s| self.cache.shard(s).stats().hit_rate())
            .collect()
    }

    /// Opens a stage: subsequent [`Engine::step`] calls accumulate into it
    /// until [`Engine::end_stage`] closes it.
    ///
    /// # Panics
    ///
    /// Panics if a stage is already open.
    pub fn begin_stage(&mut self) {
        assert!(self.stage.is_none(), "a stage is already open");
        self.stage = Some(StageAccum {
            base: self.cache.stats(),
            steps: Vec::new(),
        });
        // Pipelined mode issues prefetch for the coming forward pass at the
        // stage boundary, so the transfers overlap the pass's first layers
        // instead of waiting for its own planning points.
        if self.config.pipelined_prefetch {
            self.issue_boundary_prefetch();
        }
    }

    /// Issues prefetch transfers for the *next* forward pass from the last
    /// observed routing (pipelined mode). The learned predictor projects
    /// past the model end, so distances 1.. map to the next pass's layers
    /// 0, 1, …; without a (warm) predictor this is a no-op.
    fn issue_boundary_prefetch(&mut self) {
        let Some(routing) = self.last_routing.take() else {
            return;
        };
        let max_inflight = self.config.max_inflight;
        let queue_slots = max_inflight.saturating_sub(self.inflight.len());
        if queue_slots > 0 {
            let (lookahead, confidence) = predicted_lookahead(
                self.predictor.as_ref(),
                &self.cache,
                self.config.model.layers as usize,
                self.config.prefetch_lookahead,
                &routing,
            );
            if !lookahead.is_empty() {
                let routed_profile = self.config.model.routed_profile();
                let transfer_time = self.cost.transfer(&routed_profile);
                let shard_free = shard_free_slots(&self.cache);
                let pctx = PrefetchContext {
                    current_layer: routing.layer(),
                    lookahead: &lookahead,
                    free_slots: queue_slots,
                    budget: transfer_time * queue_slots as u64,
                    tokens: routing.tokens().max(1),
                    routed_profile,
                    shared_profile: self.config.model.shared_profile(),
                    cost: &self.cost,
                    num_gpus: self.config.num_gpus.max(1),
                    confidence: Some(&confidence),
                    shard_free: Some(&shard_free),
                };
                for key in self.prefetcher.plan(&pctx) {
                    if enqueue_background(
                        &mut self.inflight,
                        &self.cache,
                        &self.pending_commit,
                        max_inflight,
                        key,
                        transfer_time,
                        true,
                    ) {
                        self.counters.issued += 1;
                    }
                }
            }
        }
        self.last_routing = Some(routing);
    }

    /// Commits transfers that finished during the previous step into the
    /// cache at the step boundary (pipelined mode). Commits never evict —
    /// staged landings take free slots only, preserving the
    /// prefetch-never-evicts invariant even though the protected set of
    /// the step they finished in is long gone. Returns how many entered
    /// the cache.
    fn commit_landed(&mut self) -> u32 {
        let mut landed = 0u32;
        for (key, prefetch) in std::mem::take(&mut self.pending_commit) {
            let outcome = self.cache.insert_if_free(key);
            let entered = matches!(
                outcome,
                InsertOutcome::Inserted | InsertOutcome::InsertedEvicting(_)
            );
            if entered {
                landed += 1;
            }
            if prefetch {
                if entered {
                    self.counters.landed += 1;
                } else {
                    self.counters.wasted += 1;
                }
            }
        }
        landed
    }

    /// Closes the open stage and returns its aggregated metrics (per-step
    /// metrics plus the cache-statistics delta over the stage).
    ///
    /// # Panics
    ///
    /// Panics if no stage is open.
    pub fn end_stage(&mut self) -> StageMetrics {
        let stage = self
            .stage
            .take()
            .expect("no open stage: call begin_stage first");
        StageMetrics::from_steps(stage.steps, diff_stats(stage.base, self.cache.stats()))
    }

    /// Runs every step of `trace` and returns the stage metrics. A thin
    /// loop over the incremental API:
    /// [`begin_stage`](Self::begin_stage) → [`step`](Self::step)* →
    /// [`end_stage`](Self::end_stage).
    ///
    /// # Panics
    ///
    /// Panics if the trace was generated for a different model (layer or
    /// expert counts disagree) or a stage is already open.
    pub fn run(&mut self, trace: &ActivationTrace) -> StageMetrics {
        self.begin_stage();
        for step in &trace.steps {
            self.step(step);
        }
        self.end_stage()
    }

    /// Runs one forward pass (a decode token batch or a prefill batch) and
    /// returns its metrics. If a stage is open, the step is also
    /// accumulated into it.
    ///
    /// # Panics
    ///
    /// Panics if the step was generated for a different model.
    pub fn step(&mut self, step: &TraceStep) -> StepMetrics {
        assert_eq!(
            step.layers.len(),
            self.config.model.layers as usize,
            "trace was generated for a different model"
        );
        // Injected faults roll before any work so a panicking step never
        // half-mutates engine state beyond what a real mid-step panic
        // could. A spike lands on both clocks: the modeled latency (for
        // sim-driven soaks) and wall time (for live-server SLOs).
        let spike = match self.faults.as_mut() {
            None => SimDuration::ZERO,
            Some(chaos) => {
                if chaos.stream.roll_ppm(chaos.rates.panic_ppm) {
                    panic!("injected engine fault: step panic");
                }
                if chaos.stream.roll_ppm(chaos.rates.spike_ppm) {
                    std::thread::sleep(std::time::Duration::from_millis(chaos.rates.spike_ms));
                    SimDuration::from_millis(chaos.rates.spike_ms)
                } else {
                    SimDuration::ZERO
                }
            }
        };
        let tokens = step.tokens;
        self.backend.begin_step();
        // Profiles and counts are Copy; no need to clone the model config
        // on the hot path.
        let routed_profile = self.config.model.routed_profile();
        let shared_profile = self.config.model.shared_profile();
        let attn_profile = self.config.model.attention_profile();
        let k = self.config.model.activated_experts;
        let max_inflight = self.config.max_inflight;
        let num_gpus = self.config.num_gpus.max(1);

        let mut latency = spike;
        let mut busy = vec![SimDuration::ZERO; device_count(num_gpus)];
        let mut cpu_experts = 0u32;
        let mut gpu_experts = 0u32;
        let mut demand_transfers = 0u32;
        let mut prefetches = 0u32;

        // Pipelined mode: transfers that finished during the previous step
        // become cache-resident now, at the step boundary.
        let pipelined = self.config.pipelined_prefetch;
        if pipelined {
            prefetches += self.commit_landed();
        }

        // Prefill steps may cap background cache-promotion work (prefetch
        // and refill enqueues) at `max_deferred_experts_per_token × tokens`
        // so a huge prompt cannot monopolize the PCIe link against
        // concurrent decodes. `usize::MAX` = legacy unbounded.
        let mut deferred_budget: usize = if tokens
            >= hybrimoe_sched::baselines::PREFILL_BATCH_THRESHOLD
            && self.config.max_deferred_experts_per_token != u32::MAX
        {
            (self.config.max_deferred_experts_per_token as usize).saturating_mul(tokens as usize)
        } else {
            usize::MAX
        };

        for (l, rec) in step.layers.iter().enumerate() {
            let layer = LayerId(l as u16);
            // 1. The cache policy observes the routing scores (Eq. 3), and
            // so does the learned cross-layer predictor when one is
            // configured (it scores its previous prediction and updates
            // the transition matrix online).
            self.cache.note_routing(&rec.routing, k);
            if let Some(pred) = self.predictor.as_mut() {
                pred.observe(&rec.routing);
            }

            // 2. Non-MoE work (attention, norms). llama.cpp runs it on the
            // device the layer is mapped to at decode — for prefill batches
            // even CPU layers push the heavy matmuls to the GPU (cuBLAS
            // offload). Everyone else keeps it on the GPU.
            let prefill_batch = tokens >= hybrimoe_sched::baselines::PREFILL_BATCH_THRESHOLD;
            let attn_on_gpu =
                !self.config.attention_follows_layer || prefill_batch || self.layer_resident(layer);
            let attn_time = if attn_on_gpu {
                self.cost.gpu_compute(&attn_profile, tokens)
            } else {
                self.cost.cpu_compute(&attn_profile, tokens, false)
            };
            // Attention (and the other non-MoE work) runs on GPU 0: it is
            // not expert-sharded, so it stays on the shard holding the
            // pinned shared experts.
            let attn_device = if attn_on_gpu {
                Device::gpu(0)
            } else {
                Device::Cpu
            };
            busy[attn_device.ordinal(num_gpus)] += attn_time;

            // 3. Cache lookups define the task set; the activated experts
            // are also the protected set (never evicted while in flight).
            // Scratch buffers are reused across layers and steps.
            let (tasks, protect, queues) = self.scratch.begin_layer();
            for (expert, load) in rec.routing.activated() {
                let key = ExpertKey::new(layer, expert);
                protect.push(key);
                tasks.push(ExpertTask {
                    expert,
                    load,
                    cached: self.cache.lookup(key),
                });
            }

            // 4. Schedule and execute the layer.
            let ctx = ScheduleContext::new(
                layer,
                tokens,
                tasks,
                routed_profile,
                shared_profile,
                &self.cost,
            )
            .with_gpus(num_gpus);
            let plan = self.scheduler.schedule_with(&ctx, queues);
            debug_assert_eq!(plan.validate(tasks), Ok(()), "invalid plan from scheduler");
            let outcome = self.backend.execute_layer(&LayerRequest {
                layer,
                plan: &plan,
                ctx: &ctx,
                states: rec.states.as_ref(),
            });
            let moe_makespan = outcome.makespan;

            cpu_experts += plan.cpu_order.len() as u32;
            gpu_experts += plan.gpu_order.len() as u32;
            demand_transfers += plan.pcie_order.len() as u32;
            debug_assert_eq!(outcome.busy.len(), busy.len());
            for (acc, b) in busy.iter_mut().zip(outcome.busy.iter()) {
                *acc += *b;
            }

            // 5. On-demand transfers become resident (may evict per policy,
            // but never the experts of the layer in flight). llama.cpp-style
            // streamed weights (transfer_profile set) are discarded after
            // the matmul and never enter the cache.
            //
            // During a prefill batch each layer is visited exactly once, so
            // evicting a placed expert of a *later* layer to cache a
            // transfer is strictly harmful within the pass; inserts go to
            // free slots only ("subject to free cache space", §IV-C). At
            // decode, temporal reuse justifies eviction-based insertion.
            let evict_ok = !prefill_batch || self.config.prefill_evict_inserts;
            if plan.transfer_profile.is_none() && self.config.demand_inserts {
                for e in plan.transferred_experts() {
                    let key = ExpertKey::new(layer, e);
                    if evict_ok {
                        self.cache.insert_protected(key, protect);
                    } else {
                        self.cache.insert_if_free(key);
                    }
                }
            }

            // 6. Idle PCIe time advances background transfers (prefetches
            // and cache refills), which pipeline across layer boundaries.
            // Legacy mode budgets the idle time of the *busiest* lane — a
            // single conservative window shared by the FIFO background
            // queue (identical to the single-lane budget when `num_gpus`
            // is 1) — and lands completions immediately. Pipelined mode
            // gives every shard's lane its own idle window and stages
            // completions until the next step boundary.
            let transfer_time = self.cost.transfer(&routed_profile);
            let mut budget = SimDuration::ZERO;
            let mut lane_budgets: Vec<SimDuration> = Vec::new();
            if pipelined {
                lane_budgets = (0..num_gpus)
                    .map(|g| {
                        let lane_busy = outcome.busy[Device::pcie(g as u8).ordinal(num_gpus)];
                        moe_makespan.saturating_sub(lane_busy) + attn_time
                    })
                    .collect();
                drain_inflight_lanes(
                    &mut self.inflight,
                    num_gpus,
                    &mut lane_budgets,
                    &mut busy,
                    &mut self.pending_commit,
                );
            } else {
                let pcie_busy = (0..num_gpus)
                    .map(|g| outcome.busy[Device::pcie(g as u8).ordinal(num_gpus)])
                    .fold(SimDuration::ZERO, SimDuration::max);
                budget = moe_makespan.saturating_sub(pcie_busy) + attn_time;
                budget = drain_inflight(
                    &mut self.inflight,
                    &mut self.cache,
                    num_gpus,
                    budget,
                    evict_ok,
                    protect,
                    &mut busy,
                    &mut prefetches,
                    &mut self.counters,
                );
            }

            // Enqueue new prefetch candidates for the predicted layers:
            // from the learned predictor when one is warm (wrapping past
            // the model end into the next forward pass), else from the
            // trace record's oracle-decay predictions.
            let queue_slots = max_inflight.saturating_sub(self.inflight.len());
            if queue_slots > 0 && deferred_budget > 0 {
                let (learned, confidence) = predicted_lookahead(
                    self.predictor.as_ref(),
                    &self.cache,
                    self.config.model.layers as usize,
                    self.config.prefetch_lookahead,
                    &rec.routing,
                );
                let legacy;
                let (lookahead, conf): (&[PredictedLayer], Option<&[f64]>) = if !learned.is_empty()
                {
                    (&learned, Some(&confidence))
                } else if !rec.predicted.is_empty() {
                    legacy = build_lookahead(&self.cache, rec);
                    (&legacy, None)
                } else {
                    (&[], None)
                };
                if !lookahead.is_empty() {
                    let shard_free = pipelined.then(|| shard_free_slots(&self.cache));
                    let pctx = PrefetchContext {
                        current_layer: layer,
                        lookahead,
                        free_slots: queue_slots,
                        budget: transfer_time * queue_slots as u64,
                        tokens,
                        routed_profile,
                        shared_profile,
                        cost: &self.cost,
                        num_gpus,
                        confidence: conf,
                        shard_free: shard_free.as_deref(),
                    };
                    for key in self.prefetcher.plan(&pctx) {
                        if deferred_budget == 0 {
                            break;
                        }
                        if enqueue_background(
                            &mut self.inflight,
                            &self.cache,
                            &self.pending_commit,
                            max_inflight,
                            key,
                            transfer_time,
                            true,
                        ) {
                            self.counters.issued += 1;
                            if deferred_budget != usize::MAX {
                                deferred_budget -= 1;
                            }
                        }
                    }
                }
            }

            // Refill the highest-scoring missed experts of this layer
            // (background cache update; temporal reuse makes recently
            // missed experts likely to be needed again).
            if self.config.refill_on_miss {
                let scores = rec.routing.mean_scores();
                let mut missed: Vec<&ExpertTask> = tasks.iter().filter(|t| !t.cached).collect();
                missed.retain(|t| !plan.transferred_experts().any(|e| e == t.expert));
                missed.sort_by(|a, b| {
                    let sa = scores.get(a.expert.0 as usize).copied().unwrap_or(0.0);
                    let sb = scores.get(b.expert.0 as usize).copied().unwrap_or(0.0);
                    sb.partial_cmp(&sa)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.expert.cmp(&b.expert))
                });
                for t in missed {
                    if deferred_budget == 0 {
                        break;
                    }
                    if enqueue_background(
                        &mut self.inflight,
                        &self.cache,
                        &self.pending_commit,
                        max_inflight,
                        ExpertKey::new(layer, t.expert),
                        transfer_time,
                        false,
                    ) && deferred_budget != usize::MAX
                    {
                        deferred_budget -= 1;
                    }
                }
            }

            // Newly enqueued transfers may start in this layer's leftover
            // idle time.
            if pipelined {
                drain_inflight_lanes(
                    &mut self.inflight,
                    num_gpus,
                    &mut lane_budgets,
                    &mut busy,
                    &mut self.pending_commit,
                );
            } else {
                drain_inflight(
                    &mut self.inflight,
                    &mut self.cache,
                    num_gpus,
                    budget,
                    evict_ok,
                    protect,
                    &mut busy,
                    &mut prefetches,
                    &mut self.counters,
                );
            }

            latency += attn_time + moe_makespan;
        }

        // Pipelined mode: remember the pass's final routing and overlap
        // prefetch planning for the *next* step with whatever runs between
        // the two (the serving layer's admission work, the next stage's
        // setup, …).
        if pipelined {
            if let Some(rec) = step.layers.last() {
                self.last_routing = Some(rec.routing.clone());
            }
            self.issue_boundary_prefetch();
        }

        let metrics = StepMetrics {
            tokens,
            latency,
            device_busy: busy,
            cpu_experts,
            gpu_experts,
            demand_transfers,
            prefetches,
        };
        if let Some(stage) = &mut self.stage {
            stage.steps.push(metrics.clone());
        }
        metrics
    }

    /// Whether every routed expert of `layer` is resident (whole-layer
    /// mapping semantics). Kept lazy: the residency scan only runs for
    /// configurations whose attention placement depends on it.
    fn layer_resident(&self, layer: LayerId) -> bool {
        if self.config.placement == PlacementKind::WholeLayers {
            return layer.0 < self.resident_layers;
        }
        self.cache.cached_in_layer(layer).len() == self.config.model.routed_experts as usize
    }
}

/// Spends idle PCIe `budget` on the in-flight background transfers;
/// completed ones become resident (evicting per policy only when
/// `evict_ok`; prefill passes insert into free slots only). Each transfer
/// occupies the PCIe lane of its target expert's affinity shard. Returns
/// the leftover budget.
#[allow(clippy::too_many_arguments)]
fn drain_inflight(
    inflight: &mut VecDeque<Transfer>,
    cache: &mut ShardedExpertCache,
    num_gpus: usize,
    mut budget: SimDuration,
    evict_ok: bool,
    protect: &[ExpertKey],
    busy: &mut [SimDuration],
    prefetches: &mut u32,
    counters: &mut PrefetchCounters,
) -> SimDuration {
    while budget > SimDuration::ZERO {
        let Some(t) = inflight.front_mut() else {
            break;
        };
        let lane = Device::pcie(shard_of(t.key.expert, num_gpus) as u8).ordinal(num_gpus);
        if t.remaining > budget {
            t.remaining -= budget;
            busy[lane] += budget;
            return SimDuration::ZERO;
        }
        budget -= t.remaining;
        busy[lane] += t.remaining;
        let Transfer { key, prefetch, .. } = *t;
        inflight.pop_front();
        let outcome = if evict_ok {
            cache.insert_protected(key, protect)
        } else {
            cache.insert_if_free(key)
        };
        if outcome.is_resident() {
            *prefetches += 1;
        }
        if prefetch {
            if matches!(
                outcome,
                InsertOutcome::Inserted | InsertOutcome::InsertedEvicting(_)
            ) {
                counters.landed += 1;
            } else {
                counters.wasted += 1;
            }
        }
    }
    budget
}

/// Per-lane variant of [`drain_inflight`] for pipelined mode: every GPU
/// shard's PCIe lane spends its own idle budget on the transfers bound for
/// it (FIFO per lane; an exhausted lane skips ahead to other lanes'
/// transfers instead of blocking the whole queue). Completed transfers are
/// staged in `pending` and committed at the next step boundary, never
/// mid-step.
fn drain_inflight_lanes(
    inflight: &mut VecDeque<Transfer>,
    num_gpus: usize,
    lane_budgets: &mut [SimDuration],
    busy: &mut [SimDuration],
    pending: &mut Vec<(ExpertKey, bool)>,
) {
    let mut i = 0;
    while i < inflight.len() {
        let t = &mut inflight[i];
        let g = shard_of(t.key.expert, num_gpus);
        let b = &mut lane_budgets[g];
        if *b == SimDuration::ZERO {
            i += 1;
            continue;
        }
        let lane = Device::pcie(g as u8).ordinal(num_gpus);
        if t.remaining > *b {
            t.remaining -= *b;
            busy[lane] += *b;
            *b = SimDuration::ZERO;
            i += 1;
        } else {
            *b -= t.remaining;
            busy[lane] += t.remaining;
            let done = inflight.remove(i).expect("index is in bounds");
            pending.push((done.key, done.prefetch));
        }
    }
}

/// Queues a background transfer unless the expert is already resident,
/// already queued or staged for commit, or the queue is full. Returns
/// whether the transfer was enqueued.
fn enqueue_background(
    inflight: &mut VecDeque<Transfer>,
    cache: &ShardedExpertCache,
    pending: &[(ExpertKey, bool)],
    max_inflight: usize,
    key: ExpertKey,
    transfer_time: SimDuration,
    prefetch: bool,
) -> bool {
    if inflight.len() >= max_inflight
        || cache.contains(key)
        || inflight.iter().any(|t| t.key == key)
        || pending.iter().any(|(k, _)| *k == key)
    {
        return false;
    }
    inflight.push_back(Transfer {
        key,
        remaining: transfer_time,
        prefetch,
    });
    true
}

/// Free slots per cache shard (where a never-evicting prefetch could land).
fn shard_free_slots(cache: &ShardedExpertCache) -> Vec<usize> {
    (0..cache.num_shards())
        .map(|s| cache.shard(s).free_slots())
        .collect()
}

/// Builds the prefetch lookahead from the learned predictor: predicted
/// expert distributions for the next `depth` layers, wrapping past the
/// model end into the next forward pass (the oracle lookahead truncates
/// there, which starves prefetch for the last layers). Per predicted layer
/// the top `activated-count` experts become tasks with loads proportional
/// to their predicted probability mass. Empty when no predictor is
/// configured, it is still cold, or the routing activated nothing — the
/// caller then falls back to the trace's own predictions.
fn predicted_lookahead(
    predictor: Option<&TransitionPredictor>,
    cache: &ShardedExpertCache,
    layers: usize,
    depth: usize,
    routing: &LayerRouting,
) -> (Vec<PredictedLayer>, Vec<f64>) {
    let Some(pred) = predictor else {
        return (Vec::new(), Vec::new());
    };
    let active = routing.activated();
    if active.is_empty() || layers == 0 {
        return (Vec::new(), Vec::new());
    }
    let total_load: u32 = active.iter().map(|(_, l)| *l).sum();
    let breadth = active.len();
    let start = routing.layer().0 as usize % layers;
    let mut lookahead = Vec::new();
    let mut confidence = Vec::new();
    for d in 1..=depth.max(1) {
        let Some(scores) = pred.predict(routing, d) else {
            break;
        };
        let layer = LayerId(((start + d) % layers) as u16);
        let mass: f32 = scores.iter().sum();
        let tasks: Vec<ExpertTask> = hybrimoe_model::top_k(&scores, breadth)
            .into_iter()
            .map(|(idx, s)| {
                let expert = hybrimoe_model::ExpertId(idx as u16);
                let share = if mass > 0.0 { s / mass } else { 0.0 };
                ExpertTask {
                    expert,
                    load: ((share * total_load as f32).round() as u32).max(1),
                    cached: cache.contains(ExpertKey::new(layer, expert)),
                }
            })
            .collect();
        confidence.push(pred.confidence(d));
        lookahead.push(PredictedLayer {
            layer,
            tasks,
            scores,
        });
    }
    (lookahead, confidence)
}

/// Converts a record's predicted routings into prefetch inputs with
/// current cache residency.
fn build_lookahead(
    cache: &ShardedExpertCache,
    rec: &hybrimoe_trace::LayerRecord,
) -> Vec<PredictedLayer> {
    rec.predicted
        .iter()
        .map(|routing| {
            let layer = routing.layer();
            let tasks = routing
                .activated()
                .into_iter()
                .map(|(expert, load)| ExpertTask {
                    expert,
                    load,
                    cached: cache.contains(ExpertKey::new(layer, expert)),
                })
                .collect();
            PredictedLayer {
                layer,
                tasks,
                scores: routing.mean_scores(),
            }
        })
        .collect()
}

/// Inserts a placement into the cache, protecting the whole placement set
/// so that on a drifted full cache (re-warming an unpinned engine) the
/// evicted experts are the drifted residents — never the placement keys
/// inserted moments earlier, which a score-based policy would otherwise
/// rank lowest. On a cold cache this is identical to plain insertion.
fn apply_placement(cache: &mut ShardedExpertCache, placement: &[ExpertKey], pin: bool) {
    for key in placement {
        let outcome = cache.insert_protected(*key, placement);
        if pin && outcome.is_resident() {
            cache.pin(*key);
        }
    }
}

/// Initial placement: fill per-layer quotas with the experts that were
/// activated most often in a short warmup trace.
fn place_by_frequency(cache: &mut ShardedExpertCache, config: &EngineConfig) {
    let model = &config.model;
    let capacity = cache.capacity();
    if capacity == 0 {
        return;
    }
    let warm_trace = TraceGenerator::new(model.clone(), config.seed ^ 0x57A2_77A2).decode_trace(24);

    let layers = model.layers as usize;
    let experts = model.routed_experts as usize;
    let mut counts = vec![0u32; layers * experts];
    for step in &warm_trace.steps {
        for (l, rec) in step.layers.iter().enumerate() {
            for (e, _) in rec.routing.activated() {
                counts[l * experts + e.0 as usize] += 1;
            }
        }
    }

    // Fill each shard's own capacity with even per-layer quotas (earlier
    // layers absorb the remainder), ranking only the shard's experts: the
    // affinity map fixes which shard an expert may live on, so a
    // shard-blind global selection would overfill some shards (dropping
    // their most frequent experts) while leaving others with free slots.
    // With one shard this is exactly the flat per-layer quota fill.
    let num_shards = cache.num_shards();
    let mut placement: Vec<ExpertKey> = Vec::with_capacity(capacity);
    for s in 0..num_shards {
        let shard_capacity = cache.shard(s).capacity();
        let base = shard_capacity / layers;
        let remainder = shard_capacity % layers;
        for l in 0..layers {
            let quota = base + usize::from(l < remainder);
            let mut ranked: Vec<(u32, u16)> = (0..experts)
                .filter(|e| shard_of(hybrimoe_model::ExpertId(*e as u16), num_shards) == s)
                .map(|e| (counts[l * experts + e], e as u16))
                .collect();
            ranked.sort_by_key(|(c, e)| (std::cmp::Reverse(*c), *e));
            let available = ranked.len();
            for (_, e) in ranked.into_iter().take(quota.min(available)) {
                placement.push(ExpertKey::new(
                    LayerId(l as u16),
                    hybrimoe_model::ExpertId(e),
                ));
            }
        }
    }
    apply_placement(cache, &placement, config.pinned);

    // Prime score/recency estimates with the warmup routings.
    for step in &warm_trace.steps {
        for rec in &step.layers {
            cache.note_routing(&rec.routing, model.activated_experts);
        }
    }
}

/// The counter delta between two stats snapshots.
fn diff_stats(before: CacheStats, after: CacheStats) -> CacheStats {
    CacheStats {
        hits: after.hits - before.hits,
        misses: after.misses - before.misses,
        insertions: after.insertions - before.insertions,
        evictions: after.evictions - before.evictions,
        prefetch_insertions: after.prefetch_insertions - before.prefetch_insertions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Framework;
    use hybrimoe_model::ModelConfig;

    fn tiny_engine(framework: Framework, ratio: f64) -> Engine {
        Engine::new(EngineConfig::preset(
            framework,
            ModelConfig::tiny_test(),
            ratio,
        ))
    }

    fn tiny_trace(seed: u64, steps: usize) -> ActivationTrace {
        TraceGenerator::new(ModelConfig::tiny_test(), seed).decode_trace(steps)
    }

    #[test]
    fn deterministic_runs() {
        let trace = tiny_trace(3, 6);
        let a = tiny_engine(Framework::HybriMoe, 0.5).run(&trace);
        let b = tiny_engine(Framework::HybriMoe, 0.5).run(&trace);
        assert_eq!(a, b);
    }

    #[test]
    fn cache_fills_to_capacity() {
        for f in Framework::ALL {
            let e = tiny_engine(f, 0.5);
            let expected = match f {
                // llama.cpp rounds down to whole layers: 16 slots = 2 layers
                // of 8.
                Framework::LlamaCpp => 16,
                _ => 16,
            };
            assert_eq!(e.cache().len(), expected, "{f}");
        }
    }

    #[test]
    fn pinned_frameworks_keep_their_placement() {
        let trace = tiny_trace(5, 8);
        let mut e = tiny_engine(Framework::KTransformers, 0.25);
        let before: Vec<ExpertKey> = e.cache().resident_keys();
        e.run(&trace);
        let after: Vec<ExpertKey> = e.cache().resident_keys();
        assert_eq!(before, after);
    }

    #[test]
    fn dynamic_framework_updates_cache() {
        let trace = tiny_trace(5, 8);
        let mut e = tiny_engine(Framework::HybriMoe, 0.25);
        let metrics = e.run(&trace);
        assert!(
            metrics.cache.insertions > 0,
            "dynamic cache must take insertions: {:?}",
            metrics.cache
        );
    }

    #[test]
    fn hybrimoe_not_slower_than_ktransformers() {
        let trace = tiny_trace(7, 10);
        let h = tiny_engine(Framework::HybriMoe, 0.25).run(&trace);
        let k = tiny_engine(Framework::KTransformers, 0.25).run(&trace);
        assert!(
            h.total <= k.total,
            "hybri {} vs ktrans {}",
            h.total,
            k.total
        );
    }

    #[test]
    fn hit_rate_monotone_in_capacity() {
        let trace = tiny_trace(9, 12);
        let lo = tiny_engine(Framework::KTransformers, 0.25).run(&trace);
        let hi = tiny_engine(Framework::KTransformers, 0.75).run(&trace);
        assert!(hi.hit_rate() >= lo.hit_rate());
    }

    #[test]
    fn full_cache_means_all_hits_and_gpu_only() {
        let trace = tiny_trace(11, 5);
        let m = tiny_engine(Framework::HybriMoe, 1.0).run(&trace);
        assert!((m.hit_rate() - 1.0).abs() < 1e-9);
        assert_eq!(m.demand_transfers(), 0);
    }

    #[test]
    fn prefill_step_counts_tokens() {
        let model = ModelConfig::tiny_test();
        let trace = TraceGenerator::new(model.clone(), 13).prefill_trace(32);
        let mut e = tiny_engine(Framework::HybriMoe, 0.5);
        let m = e.run(&trace);
        assert_eq!(m.steps.len(), 1);
        assert_eq!(m.steps[0].tokens, 32);
        assert!(m.total > SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "different model")]
    fn wrong_model_trace_rejected() {
        let trace = TraceGenerator::new(ModelConfig::deepseek(), 1).decode_trace(1);
        tiny_engine(Framework::HybriMoe, 0.5).run(&trace);
    }

    #[test]
    fn stats_are_per_run() {
        let trace = tiny_trace(15, 4);
        let mut e = tiny_engine(Framework::HybriMoe, 0.5);
        let a = e.run(&trace);
        let b = e.run(&trace);
        // Each run reports its own lookups (same trace length).
        assert_eq!(a.cache.lookups(), b.cache.lookups());
    }

    #[test]
    fn zero_capacity_runs_cpu_only() {
        let trace = tiny_trace(17, 4);
        let mut e = tiny_engine(Framework::HybriMoe, 0.0);
        let m = e.run(&trace);
        assert_eq!(m.hit_rate(), 0.0);
        assert!(m.total > SimDuration::ZERO);
    }

    #[test]
    fn run_equals_manual_step_loop() {
        let trace = tiny_trace(19, 6);
        let via_run = tiny_engine(Framework::HybriMoe, 0.5).run(&trace);

        let mut e = tiny_engine(Framework::HybriMoe, 0.5);
        e.begin_stage();
        let mut manual = Vec::new();
        for s in &trace.steps {
            manual.push(e.step(s));
        }
        let via_steps = e.end_stage();
        assert_eq!(via_run, via_steps);
        assert_eq!(via_run.steps, manual);
    }

    #[test]
    fn steps_outside_a_stage_are_standalone() {
        let trace = tiny_trace(21, 3);
        let mut e = tiny_engine(Framework::HybriMoe, 0.5);
        let m = e.step(&trace.steps[0]);
        assert!(m.latency > SimDuration::ZERO);
        // No stage open: end_stage must panic, so open/close an empty one.
        e.begin_stage();
        let empty = e.end_stage();
        assert!(empty.steps.is_empty());
    }

    #[test]
    #[should_panic(expected = "already open")]
    fn nested_stages_rejected() {
        let mut e = tiny_engine(Framework::HybriMoe, 0.5);
        e.begin_stage();
        e.begin_stage();
    }

    #[test]
    #[should_panic(expected = "no open stage")]
    fn end_without_begin_rejected() {
        let mut e = tiny_engine(Framework::HybriMoe, 0.5);
        let _ = e.end_stage();
    }

    #[test]
    #[should_panic(expected = "stage is open")]
    fn warmup_mid_stage_rejected() {
        let mut e = tiny_engine(Framework::HybriMoe, 0.5);
        e.begin_stage();
        e.warmup();
    }

    #[test]
    fn rewarming_reapplies_placement_on_drifted_cache() {
        // Unpinned whole-layer placement with a dynamic scheduler: the run
        // drifts the cache, and re-warming must restore full residency of
        // the placed layers rather than letting fresh zero-score placement
        // keys evict each other.
        let config = EngineConfig::preset(Framework::LlamaCpp, ModelConfig::tiny_test(), 0.25)
            .with_scheduler(crate::SchedulerKind::Hybrid);
        let mut e = Engine::new(config);
        e.run(&tiny_trace(29, 10));
        e.warmup();
        for l in 0..e.resident_layers {
            assert_eq!(
                e.cache().cached_in_layer(LayerId(l)).len(),
                e.config().model.routed_experts as usize,
                "layer {l} not fully resident after re-warm"
            );
        }
    }

    #[test]
    fn rewarming_clears_background_queue() {
        let trace = tiny_trace(27, 8);
        let mut e = tiny_engine(Framework::HybriMoe, 0.25);
        e.run(&trace);
        e.warmup();
        // A fresh stage after re-warming starts with clean statistics and
        // no carried-over transfers from the previous workload.
        assert_eq!(e.cache().stats(), CacheStats::default());
        assert!(e.inflight.is_empty());
    }

    #[test]
    fn cold_engine_starts_empty_and_warmup_fills() {
        let config = EngineConfig::preset(Framework::HybriMoe, ModelConfig::tiny_test(), 0.5);
        let mut e = Engine::cold(config);
        assert!(e.cache().is_empty());
        e.warmup();
        assert_eq!(e.cache().len(), 16);
        assert_eq!(e.cache().stats(), CacheStats::default());
    }

    #[test]
    fn zero_max_inflight_disables_background_transfers() {
        let trace = tiny_trace(23, 12);
        let config = EngineConfig::preset(Framework::HybriMoe, ModelConfig::tiny_test(), 0.25)
            .with_max_inflight(0);
        let mut e = Engine::new(config);
        let m = e.run(&trace);
        // The run completes (no deadlock) and performs no background work.
        assert_eq!(m.steps.len(), 12);
        assert_eq!(m.prefetches(), 0);
        assert!(m.total > SimDuration::ZERO);
    }

    #[test]
    fn max_inflight_bounds_are_respected() {
        // A deeper queue can only help (more background transfers land).
        let trace = tiny_trace(25, 12);
        let base = EngineConfig::preset(Framework::HybriMoe, ModelConfig::tiny_test(), 0.25);
        let narrow = Engine::new(base.clone().with_max_inflight(1)).run(&trace);
        let wide = Engine::new(base.with_max_inflight(8)).run(&trace);
        assert!(wide.prefetches() >= narrow.prefetches());
    }
}
