//! Remote expert execution: dispatch expert batches to out-of-process
//! workers over the framed wire protocol.
//!
//! [`RemoteLayerExecutor`] runs the same expert-major batched layer loop
//! as [`RealLayerExecutor`](crate::realexec::RealLayerExecutor), but each
//! expert's gathered token batch can travel to the shard-affine worker
//! (`expert % num_workers`, the same static map the multi-GPU cache
//! shards use) instead of the local kernels. Activations move, weights
//! stay put — the point of compute-near-weights workers.
//!
//! Three properties the executor maintains:
//!
//! * **Bit-identity.** Experts accumulate into the output in ascending
//!   id order no matter where each batch ran, tensors travel as exact
//!   IEEE-754 bit patterns, and the [`LoadShard`] handshake pins every
//!   worker to the same kernel backend as the local fallback path — so
//!   a layer's output is bit-identical to fully-local execution for any
//!   mix of remote and local experts.
//! * **Pipelining.** With [`RemoteWorkerOptions::pipeline`] on, every
//!   expert's batch is dispatched before any reply is collected; each
//!   connection answers strictly FIFO, and replies are collected in the
//!   same ascending expert order they were sent.
//! * **Failover.** A send or receive failure marks the worker down
//!   (reconnect-with-backoff in [`WorkerClientPool`]) and the affected
//!   experts — including any whose pipelined replies died with the
//!   connection — fall back to the executor's own local weights. An
//!   in-flight layer never fails because a worker did. A per-worker
//!   circuit breaker trips after
//!   [`RemoteWorkerOptions::breaker_threshold`] consecutive failures:
//!   while open, experts route straight to the local fallback without
//!   paying connect or deadline cost, until a half-open heartbeat probe
//!   after the cooldown finds the worker healthy again.
//!
//! [`RemoteBackend`] wraps the executor as an
//! [`ExecutionBackend`], accounting outcomes
//! exactly like [`RealCpuBackend`](crate::RealCpuBackend) and exposing
//! worker fleet health for the serving layer's `/metrics`.

use std::time::{Duration, Instant};

use hybrimoe_hw::{device_count, CalibrationProfile, Device, SimDuration};
use hybrimoe_kernels::threadpool::default_threads;
use hybrimoe_kernels::{ExecScratch, KernelBackend, WorkerPool};
use hybrimoe_model::{shard_of, ExpertKey, LayerId, ModelConfig, RouterOutput, WeightStore};
use hybrimoe_sched::SchedulePlan;
use hybrimoe_worker::protocol::{ExecuteBatch, LoadShard};
use hybrimoe_worker::{wire_backend, ClientOptions, WorkerClientPool, WorkerHealthSnapshot};
use serde::{Deserialize, Serialize};

use crate::backend::{CpuMeasurement, ExecutionBackend, LayerOutcome, LayerRequest};
use crate::realexec::{account, RealExecError, RealExecOptions, RealLayerOutput};

/// Configuration of the remote-worker execution backend.
///
/// # Example
///
/// ```
/// use hybrimoe::remote::RemoteWorkerOptions;
///
/// let opts = RemoteWorkerOptions::default();
/// assert!(opts.endpoints.is_empty()); // degraded: everything runs locally
/// assert_eq!(opts.deadline_ms, 5_000);
/// assert!(opts.pipeline);
/// assert_eq!(opts.breaker_threshold, 4);
/// assert_eq!(opts.breaker_cooldown_ms, 500);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemoteWorkerOptions {
    /// Worker endpoints, one per worker: TCP `host:port` or
    /// `unix:/path/to.sock`. Expert ownership is `expert % endpoints.len()`.
    /// Empty runs every expert on the local fallback path.
    pub endpoints: Vec<String>,
    /// Per-request deadline in milliseconds, enforced as the socket read
    /// timeout while waiting for each reply. `0` waits forever.
    pub deadline_ms: u64,
    /// Dispatch every expert's batch before collecting any reply (the
    /// workers answer strictly FIFO). Off sends one request at a time.
    pub pipeline: bool,
    /// Consecutive send/collect failures that trip a worker's circuit
    /// breaker. While open, experts owned by that worker route straight
    /// to the local fallback — no connect attempt, no deadline wait —
    /// until a half-open heartbeat probe succeeds after the cooldown.
    /// `0` disables the breaker (every dispatch retries the worker).
    pub breaker_threshold: u32,
    /// Minimum time a tripped breaker stays open before the next
    /// dispatch decision probes the worker with a heartbeat.
    pub breaker_cooldown_ms: u64,
}

impl Default for RemoteWorkerOptions {
    fn default() -> Self {
        RemoteWorkerOptions {
            endpoints: Vec::new(),
            deadline_ms: 5_000,
            pipeline: true,
            breaker_threshold: 4,
            breaker_cooldown_ms: 500,
        }
    }
}

impl RemoteWorkerOptions {
    /// The per-connection client options these settings imply.
    pub fn client_options(&self) -> ClientOptions {
        ClientOptions {
            deadline: (self.deadline_ms > 0).then(|| Duration::from_millis(self.deadline_ms)),
            pipeline: self.pipeline,
            ..ClientOptions::default()
        }
    }
}

/// One worker's circuit-breaker state (see
/// [`RemoteWorkerOptions::breaker_threshold`]).
#[derive(Debug, Clone, Copy)]
enum BreakerState {
    /// Dispatch allowed; counts consecutive failures.
    Closed {
        /// Consecutive failures since the last success.
        failures: u32,
    },
    /// Dispatch suspended; no probe before `until`.
    Open {
        /// Earliest next half-open probe.
        until: Instant,
    },
    /// Cooldown expired; the in-progress dispatch decision is probing.
    HalfOpen,
}

/// A per-worker circuit breaker with trip accounting for `/metrics`.
#[derive(Debug)]
struct Breaker {
    state: BreakerState,
    /// Cumulative closed→open transitions (half-open re-opens after a
    /// failed probe do not count a new trip).
    trips: u64,
}

/// Where one planned expert's batch is headed.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Dispatch {
    /// Not dispatched (or failed over): compute with the local weights.
    Local,
    /// In flight to worker `w`; its reply is collected FIFO.
    Remote(usize),
}

/// Per-layer scratch of the remote executor, cleared between layers.
#[derive(Debug, Default)]
struct RemoteScratch {
    /// Per-expert routed token lists, `(token index, router weight)`.
    tokens_of: Vec<Vec<(u32, f32)>>,
    /// Gathered inputs of one expert's token batch, `batch x hidden`.
    gather: Vec<f32>,
    /// Local-fallback outputs of one batch, same shape.
    result: Vec<f32>,
    /// Activated expert ids, sorted ascending, deduplicated.
    activated: Vec<u16>,
    /// CPU partition of the plan, sorted ascending.
    cpu: Vec<u16>,
    /// GPU partition of the plan, sorted ascending.
    gpu: Vec<u16>,
    /// Sorted union of the partitions — the fixed accumulation order.
    planned: Vec<u16>,
    /// `(expert, shard)` pairs sorted by expert, for per-shard timing.
    shard: Vec<(u16, u16)>,
    /// Per-planned-expert dispatch state, aligned with `planned`.
    dispatch: Vec<Dispatch>,
}

/// Executes MoE layers with expert batches dispatched to out-of-process
/// workers, falling back to local kernels per expert on any failure.
#[derive(Debug)]
pub struct RemoteLayerExecutor {
    /// Local fallback weights — the full model, same seed as the workers,
    /// so a failed-over expert computes the identical result.
    store: WeightStore,
    pool: WorkerPool,
    backend: &'static dyn KernelBackend,
    workers: WorkerClientPool,
    scratch: RemoteScratch,
    ffn_scratch: ExecScratch,
    /// One circuit breaker per configured worker.
    breakers: Vec<Breaker>,
    breaker_threshold: u32,
    breaker_cooldown: Duration,
}

impl RemoteLayerExecutor {
    /// Creates the executor: local fallback weights from `options`, a
    /// worker pool over `remote.endpoints` (connections open lazily), and
    /// a [`LoadShard`] spec that pins every worker to this executor's
    /// resolved kernel backend so remote and local results are
    /// bit-identical.
    pub fn new(
        model: ModelConfig,
        seed: u64,
        options: RealExecOptions,
        remote: &RemoteWorkerOptions,
    ) -> RemoteLayerExecutor {
        let backend = options.kernel_backend.resolve();
        let base = LoadShard {
            seed,
            worker: 0,
            num_workers: remote.endpoints.len().max(1) as u16,
            layers: model.layers,
            routed_experts: model.routed_experts,
            hidden: model.routed_shape.hidden(),
            inter: model.routed_shape.inter(),
            weight_budget_bytes: options.weight_budget_bytes,
            backend: wire_backend::to_wire(backend.kind()),
        };
        RemoteLayerExecutor {
            store: WeightStore::new(model, seed, options.weight_budget_bytes),
            pool: WorkerPool::new(default_threads(options.max_threads.max(1))),
            backend,
            workers: WorkerClientPool::new(&remote.endpoints, base, remote.client_options()),
            scratch: RemoteScratch::default(),
            ffn_scratch: ExecScratch::new(),
            breakers: (0..remote.endpoints.len())
                .map(|_| Breaker {
                    state: BreakerState::Closed { failures: 0 },
                    trips: 0,
                })
                .collect(),
            breaker_threshold: remote.breaker_threshold,
            breaker_cooldown: Duration::from_millis(remote.breaker_cooldown_ms),
        }
    }

    /// The model being executed.
    pub fn model(&self) -> &ModelConfig {
        self.store.config()
    }

    /// Current worker fleet health, including circuit-breaker state.
    pub fn health(&self) -> WorkerHealthSnapshot {
        let mut health = self.workers.health();
        health.breaker_open = self
            .breakers
            .iter()
            .filter(|b| matches!(b.state, BreakerState::Open { .. }))
            .count() as u64;
        health.breaker_trips = self.breakers.iter().map(|b| b.trips).sum();
        health
    }

    /// Drains every connected worker (best-effort; used at shutdown).
    pub fn drain(&mut self) {
        self.workers.drain();
    }

    /// Executes one layer, dispatching each planned expert's token batch
    /// to its shard-affine worker and falling back to the local kernels
    /// for experts whose worker is down or fails mid-request. Output
    /// semantics match
    /// [`RealLayerExecutor::execute_layer`](crate::realexec::RealLayerExecutor::execute_layer):
    /// experts accumulate in ascending id order, so the result is
    /// bit-identical across placements *and* across remote/local
    /// execution mixes.
    ///
    /// # Errors
    ///
    /// Same contract as the local executor: [`RealExecError::InvalidPlan`]
    /// if the plan does not cover the activated experts exactly once,
    /// [`RealExecError::BadInput`] on dimension mismatches, and
    /// [`RealExecError::Weights`] if a local fallback cannot materialize
    /// its expert within the memory budget. Worker failures are *not*
    /// errors — they fail over.
    pub fn execute_layer(
        &mut self,
        layer: LayerId,
        plan: &SchedulePlan,
        inputs: &[Vec<f32>],
        routes: &[RouterOutput],
    ) -> Result<RealLayerOutput, RealExecError> {
        self.validate(plan, inputs, routes)?;
        let hidden = self.store.config().routed_shape.hidden() as usize;
        let experts = self.store.config().routed_experts as usize;
        let num_shards = self.num_shards();

        // Build every expert's token list in one pass over the routes.
        let scratch = &mut self.scratch;
        if scratch.tokens_of.len() < experts {
            scratch.tokens_of.resize_with(experts, Vec::new);
        }
        for list in scratch.tokens_of.iter_mut() {
            list.clear();
        }
        for (t, routing) in routes.iter().enumerate() {
            for (e, w) in &routing.selected {
                scratch.tokens_of[e.0 as usize].push((t as u32, *w));
            }
        }

        // Dispatch phase: with pipelining on, every expert's batch is on
        // the wire before any reply is read. Replies arrive strictly FIFO
        // per connection, and the collect loop below walks the same
        // ascending expert order, so correlation is positional.
        let pipelined = self.workers.pipeline() && self.workers.num_workers() > 0;
        scratch.dispatch.clear();
        scratch
            .dispatch
            .resize(scratch.planned.len(), Dispatch::Local);
        if pipelined {
            for i in 0..scratch.planned.len() {
                let expert = scratch.planned[i];
                let list = &scratch.tokens_of[expert as usize];
                if list.is_empty() {
                    continue;
                }
                let worker = self
                    .workers
                    .worker_for_expert(hybrimoe_model::ExpertId(expert));
                if !Self::breaker_allows(
                    &mut self.breakers,
                    &mut self.workers,
                    self.breaker_threshold,
                    self.breaker_cooldown,
                    worker,
                ) {
                    // Open breaker: route straight to the local fallback
                    // without paying connect or deadline cost.
                    self.workers.note_failover();
                    continue;
                }
                let batch = ExecuteBatch {
                    layer: layer.0,
                    expert,
                    tokens: list.len() as u32,
                    hidden: hidden as u32,
                    data: gather_batch(&mut scratch.gather, list, inputs, hidden).to_vec(),
                };
                let sent = match self.workers.client(worker) {
                    Some(client) => client.send_execute(&batch).is_ok(),
                    None => false,
                };
                if sent {
                    self.workers.note_request();
                    scratch.dispatch[i] = Dispatch::Remote(worker);
                } else {
                    // The connection (and every reply still in its FIFO)
                    // is gone: earlier experts dispatched to this worker
                    // fail over too.
                    self.workers.fail(worker);
                    Self::breaker_fail(
                        &mut self.breakers,
                        self.breaker_threshold,
                        self.breaker_cooldown,
                        worker,
                    );
                    self.workers.note_failover();
                    for d in scratch.dispatch[..i].iter_mut() {
                        if *d == Dispatch::Remote(worker) {
                            *d = Dispatch::Local;
                            self.workers.note_failover();
                        }
                    }
                }
            }
        }

        // Collect phase: ascending expert order — the fixed accumulation
        // order that makes outputs placement- and transport-independent.
        let mut output = vec![0.0f32; inputs.len() * hidden];
        let mut cpu_wall = Duration::ZERO;
        let mut gpu_wall = Duration::ZERO;
        let mut gpu_walls = vec![Duration::ZERO; num_shards];
        for i in 0..scratch.planned.len() {
            let expert = scratch.planned[i];
            let list = &scratch.tokens_of[expert as usize];
            if list.is_empty() {
                continue;
            }
            let batch = list.len();
            let start = Instant::now();

            let mut collected = false;
            if let Dispatch::Remote(worker) = scratch.dispatch[i] {
                collected = Self::collect_remote(
                    &mut self.workers,
                    worker,
                    batch,
                    hidden,
                    list,
                    &mut output,
                );
                if collected {
                    Self::breaker_ok(&mut self.breakers, worker);
                } else {
                    // The reply (and the connection's whole FIFO) is
                    // lost: this expert and every later one still
                    // expecting a reply from this worker run locally.
                    Self::breaker_fail(
                        &mut self.breakers,
                        self.breaker_threshold,
                        self.breaker_cooldown,
                        worker,
                    );
                    self.workers.note_failover();
                    for d in scratch.dispatch[i..].iter_mut() {
                        if *d == Dispatch::Remote(worker) {
                            *d = Dispatch::Local;
                        }
                    }
                }
            } else if !pipelined && self.workers.num_workers() > 0 {
                // Non-pipelined remote path: one request at a time.
                let worker = self
                    .workers
                    .worker_for_expert(hybrimoe_model::ExpertId(expert));
                if !Self::breaker_allows(
                    &mut self.breakers,
                    &mut self.workers,
                    self.breaker_threshold,
                    self.breaker_cooldown,
                    worker,
                ) {
                    // Open breaker: local fallback without touching the
                    // worker (`collected` stays false).
                    self.workers.note_failover();
                } else {
                    let sent = match self.workers.client(worker) {
                        Some(client) => client
                            .send_execute(&ExecuteBatch {
                                layer: layer.0,
                                expert,
                                tokens: batch as u32,
                                hidden: hidden as u32,
                                data: gather_batch(&mut scratch.gather, list, inputs, hidden)
                                    .to_vec(),
                            })
                            .is_ok(),
                        None => false,
                    };
                    if sent {
                        self.workers.note_request();
                        collected = Self::collect_remote(
                            &mut self.workers,
                            worker,
                            batch,
                            hidden,
                            list,
                            &mut output,
                        );
                    }
                    if collected {
                        Self::breaker_ok(&mut self.breakers, worker);
                    } else {
                        // A failed send marks the worker down here; a
                        // failed receive was already marked down by
                        // collect_remote.
                        if !sent {
                            self.workers.fail(worker);
                        }
                        Self::breaker_fail(
                            &mut self.breakers,
                            self.breaker_threshold,
                            self.breaker_cooldown,
                            worker,
                        );
                        self.workers.note_failover();
                    }
                }
            }

            if !collected {
                // Local fallback: identical weights, identical kernel
                // backend, identical accumulation order — bit-identical
                // to what the worker would have returned.
                let key = ExpertKey::new(layer, hybrimoe_model::ExpertId(expert));
                let ffn = self.store.expert(key)?;
                let gather = gather_batch(&mut scratch.gather, list, inputs, hidden);
                scratch.result.resize(batch * hidden, 0.0);
                ffn.forward_batch_into(
                    gather,
                    batch,
                    &mut scratch.result,
                    &mut self.ffn_scratch,
                    &self.pool,
                    self.backend,
                );
                scatter(&scratch.result, list, hidden, &mut output);
            }

            account(
                expert,
                start.elapsed(),
                &scratch.cpu,
                &scratch.shard,
                &mut cpu_wall,
                &mut gpu_wall,
                &mut gpu_walls,
            );
        }

        Ok(RealLayerOutput {
            output,
            cpu_wall,
            gpu_wall,
            gpu_walls,
            cpu_tasks: scratch.cpu.len(),
            gpu_tasks: scratch.gpu.len(),
        })
    }

    /// Decides whether dispatch to `worker` is allowed right now. Closed
    /// breakers pass; open ones inside the cooldown refuse instantly; an
    /// open breaker past its cooldown runs a half-open heartbeat probe —
    /// success closes the breaker, failure re-opens it for another
    /// cooldown without counting a new trip. The probe cannot
    /// desynchronize pipelined replies: a breaker only opens after the
    /// failing connection was dropped, so the probe's (re)connection
    /// starts with an empty FIFO.
    fn breaker_allows(
        breakers: &mut [Breaker],
        workers: &mut WorkerClientPool,
        threshold: u32,
        cooldown: Duration,
        worker: usize,
    ) -> bool {
        if threshold == 0 {
            return true;
        }
        let breaker = &mut breakers[worker];
        match breaker.state {
            BreakerState::Closed { .. } => true,
            BreakerState::Open { until } if Instant::now() < until => false,
            _ => {
                breaker.state = BreakerState::HalfOpen;
                let alive = match workers.client(worker) {
                    Some(client) => client.heartbeat().is_ok(),
                    None => false,
                };
                if alive {
                    breakers[worker].state = BreakerState::Closed { failures: 0 };
                    true
                } else {
                    workers.fail(worker);
                    breakers[worker].state = BreakerState::Open {
                        until: Instant::now() + cooldown,
                    };
                    false
                }
            }
        }
    }

    /// Counts one successful collect: consecutive-failure tracking resets.
    fn breaker_ok(breakers: &mut [Breaker], worker: usize) {
        if let Some(breaker) = breakers.get_mut(worker) {
            breaker.state = BreakerState::Closed { failures: 0 };
        }
    }

    /// Counts one send/collect failure; at `threshold` consecutive
    /// failures the breaker trips open for `cooldown`.
    fn breaker_fail(breakers: &mut [Breaker], threshold: u32, cooldown: Duration, worker: usize) {
        if threshold == 0 {
            return;
        }
        let breaker = &mut breakers[worker];
        match breaker.state {
            BreakerState::Closed { failures } => {
                let failures = failures + 1;
                if failures >= threshold {
                    breaker.trips += 1;
                    breaker.state = BreakerState::Open {
                        until: Instant::now() + cooldown,
                    };
                } else {
                    breaker.state = BreakerState::Closed { failures };
                }
            }
            // A failure during (or right after) a half-open probe re-opens
            // without a new trip.
            BreakerState::HalfOpen => {
                breaker.state = BreakerState::Open {
                    until: Instant::now() + cooldown,
                };
            }
            BreakerState::Open { .. } => {}
        }
    }

    /// Receives one pipelined reply from `worker` and scatters it. Returns
    /// `false` — after marking the worker down — if the reply cannot be
    /// used (connection gone, deadline exceeded, remote error, or shape
    /// mismatch); the caller then recomputes the batch locally.
    fn collect_remote(
        workers: &mut WorkerClientPool,
        worker: usize,
        batch: usize,
        hidden: usize,
        list: &[(u32, f32)],
        output: &mut [f32],
    ) -> bool {
        let Some(client) = workers.client(worker) else {
            return false;
        };
        // A reconnected client has an empty FIFO: the original reply died
        // with the old connection.
        if client.inflight() == 0 {
            workers.fail(worker);
            return false;
        }
        match client.recv_execute() {
            Ok(ack) if ack.tokens as usize == batch && ack.hidden as usize == hidden => {
                scatter(&ack.data, list, hidden, output);
                true
            }
            _ => {
                // Timeouts, disconnects, error replies and shape
                // mismatches all desynchronize or invalidate the FIFO:
                // drop the connection and recompute locally.
                workers.fail(worker);
                false
            }
        }
    }

    /// Checks the inputs and distills the plan into the sorted scratch
    /// partitions (same contract as the local executor's validation).
    fn validate(
        &mut self,
        plan: &SchedulePlan,
        inputs: &[Vec<f32>],
        routes: &[RouterOutput],
    ) -> Result<(), RealExecError> {
        let hidden = self.store.config().routed_shape.hidden() as usize;
        if inputs.len() != routes.len() {
            return Err(RealExecError::BadInput {
                expected: inputs.len(),
                actual: routes.len(),
            });
        }
        for x in inputs {
            if x.len() != hidden {
                return Err(RealExecError::BadInput {
                    expected: hidden,
                    actual: x.len(),
                });
            }
        }

        let scratch = &mut self.scratch;
        scratch.activated.clear();
        scratch
            .activated
            .extend(routes.iter().flat_map(|r| r.expert_ids().map(|e| e.0)));
        scratch.activated.sort_unstable();
        scratch.activated.dedup();

        scratch.cpu.clear();
        scratch.cpu.extend(plan.cpu_experts().map(|e| e.0));
        scratch.cpu.sort_unstable();
        scratch.cpu.dedup();
        scratch.gpu.clear();
        scratch.gpu.extend(plan.gpu_experts().map(|e| e.0));
        scratch.gpu.sort_unstable();
        scratch.gpu.dedup();
        if scratch
            .cpu
            .iter()
            .any(|e| scratch.gpu.binary_search(e).is_ok())
        {
            return Err(RealExecError::InvalidPlan(
                "an expert is assigned to both devices".to_owned(),
            ));
        }

        scratch.planned.clear();
        scratch.planned.extend_from_slice(&scratch.cpu);
        scratch.planned.extend_from_slice(&scratch.gpu);
        scratch.planned.sort_unstable();
        if scratch.planned != scratch.activated {
            return Err(RealExecError::InvalidPlan(format!(
                "plan covers {:?}, activated {:?}",
                scratch.planned, scratch.activated
            )));
        }

        scratch.shard.clear();
        scratch.shard.extend(
            plan.gpu_order
                .iter()
                .filter_map(|g| g.placement.gpu().map(|gpu| (g.task.expert.0, gpu.0 as u16))),
        );
        scratch.shard.sort_unstable();
        Ok(())
    }

    /// Number of GPU shards the validated plan targets.
    fn num_shards(&self) -> usize {
        self.scratch
            .shard
            .iter()
            .map(|(_, s)| *s as usize)
            .max()
            .map_or(1, |m| m + 1)
    }
}

/// Gathers `list`'s tokens into a contiguous `batch x hidden` buffer and
/// returns it as a slice.
fn gather_batch<'a>(
    gather: &'a mut Vec<f32>,
    list: &[(u32, f32)],
    inputs: &[Vec<f32>],
    hidden: usize,
) -> &'a [f32] {
    gather.resize(list.len() * hidden, 0.0);
    for (i, (t, _)) in list.iter().enumerate() {
        gather[i * hidden..(i + 1) * hidden].copy_from_slice(&inputs[*t as usize]);
    }
    gather
}

/// Scatters one expert's batched outputs back with the router weights.
/// Token order within `list` is ascending, so every output cell sees the
/// same addition order no matter where the batch was computed.
fn scatter(result: &[f32], list: &[(u32, f32)], hidden: usize, output: &mut [f32]) {
    for (i, (t, w)) in list.iter().enumerate() {
        let dst = &mut output[*t as usize * hidden..(*t as usize + 1) * hidden];
        let src = &result[i * hidden..(i + 1) * hidden];
        for (o, v) in dst.iter_mut().zip(src.iter()) {
            *o += w * v;
        }
    }
}

/// The remote-worker execution backend: expert batches run on
/// out-of-process workers with per-expert local failover, outcomes are
/// accounted exactly like [`RealCpuBackend`](crate::RealCpuBackend).
#[derive(Debug)]
pub struct RemoteBackend {
    exec: RemoteLayerExecutor,
    outputs: Vec<RealLayerOutput>,
    measured: CpuMeasurement,
}

impl RemoteBackend {
    /// Creates the backend for one model's synthetic weights and a worker
    /// fleet (connections open lazily on first use).
    pub fn new(
        model: ModelConfig,
        seed: u64,
        options: RealExecOptions,
        remote: &RemoteWorkerOptions,
    ) -> RemoteBackend {
        RemoteBackend {
            exec: RemoteLayerExecutor::new(model, seed, options, remote),
            outputs: Vec::new(),
            measured: CpuMeasurement::default(),
        }
    }

    /// The accumulated CPU measurement.
    pub fn measurement(&self) -> CpuMeasurement {
        self.measured
    }
}

impl ExecutionBackend for RemoteBackend {
    fn name(&self) -> &'static str {
        "remote-workers"
    }

    fn execute_layer(&mut self, request: &LayerRequest<'_>) -> LayerOutcome {
        let states = request.states.unwrap_or_else(|| {
            panic!(
                "RemoteBackend needs per-token states at {}: generate the trace with \
                 TraceGenerator::with_token_states",
                request.layer
            )
        });
        let out = self
            .exec
            .execute_layer(request.layer, request.plan, &states.inputs, &states.routes)
            .unwrap_or_else(|e| panic!("remote execution failed at {}: {e}", request.layer));

        // Same accounting as RealCpuBackend: CPU work feeds calibration,
        // PCIe stays analytic (see [`CpuMeasurement`] for the bytes
        // convention).
        let profile = request.ctx.routed_profile;
        for t in &request.plan.cpu_order {
            self.measured.flops += t.load as u64 * profile.flops_per_token();
            self.measured.bytes += profile.bytes();
            self.measured.tasks += 1;
        }
        self.measured.wall += out.cpu_wall;

        let n = request.ctx.num_gpus.max(1);
        let wire = request.plan.transfer_profile.unwrap_or(profile);
        let mut pcie = vec![SimDuration::ZERO; n];
        for x in &request.plan.pcie_order {
            pcie[shard_of(x.expert, n)] += request.ctx.cost.transfer(&wire);
        }

        let cpu = SimDuration::from_secs_f64(out.cpu_wall.as_secs_f64());
        let mut busy = vec![SimDuration::ZERO; device_count(n)];
        busy[Device::Cpu.ordinal(n)] = cpu;
        let mut makespan = cpu;
        for g in 0..n {
            let wall = out.gpu_walls.get(g).copied().unwrap_or_default();
            let gpu = SimDuration::from_secs_f64(wall.as_secs_f64());
            busy[Device::gpu(g as u8).ordinal(n)] = gpu;
            busy[Device::pcie(g as u8).ordinal(n)] = pcie[g];
            makespan = makespan.max(gpu).max(pcie[g]);
        }
        self.outputs.push(out);
        LayerOutcome { makespan, busy }
    }

    fn begin_step(&mut self) {
        self.outputs.clear();
    }

    fn take_step_outputs(&mut self) -> Vec<RealLayerOutput> {
        std::mem::take(&mut self.outputs)
    }

    fn calibration(&self) -> Option<CalibrationProfile> {
        self.measured.profile()
    }

    fn worker_health(&self) -> Option<WorkerHealthSnapshot> {
        Some(self.exec.health())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::realexec::RealLayerExecutor;
    use hybrimoe_kernels::KernelBackendKind;
    use hybrimoe_model::LayerRouting;
    use hybrimoe_sched::{ExpertTask, HybridScheduler, ScheduleContext, Scheduler};
    use hybrimoe_worker::{Endpoint, WorkerHandle, WorkerServer, WorkerServerOptions};

    fn scalar_options() -> RealExecOptions {
        RealExecOptions {
            max_threads: 2,
            kernel_backend: KernelBackendKind::Scalar,
            ..Default::default()
        }
    }

    fn spawn_workers(n: usize, options: WorkerServerOptions) -> (Vec<WorkerHandle>, Vec<String>) {
        let handles: Vec<WorkerHandle> = (0..n)
            .map(|_| {
                WorkerServer::bind(&Endpoint::parse("127.0.0.1:0"), options.clone())
                    .expect("bind worker")
                    .spawn()
            })
            .collect();
        let endpoints = handles.iter().map(|h| h.endpoint().to_string()).collect();
        (handles, endpoints)
    }

    fn token_inputs(
        model: &ModelConfig,
        n: usize,
        seed: u64,
    ) -> (Vec<Vec<f32>>, Vec<RouterOutput>) {
        let hidden = model.routed_shape.hidden() as usize;
        let experts = model.routed_experts as usize;
        let k = model.activated_experts as usize;
        (0..n)
            .map(|t| {
                let x: Vec<f32> = (0..hidden)
                    .map(|i| {
                        (((t as u64 * 131 + i as u64 * 7 + seed) % 100) as f32 / 50.0 - 1.0) * 0.1
                    })
                    .collect();
                let logits: Vec<f32> = (0..experts)
                    .map(|e| (((t + e * 13 + seed as usize) % 17) as f32) / 4.0)
                    .collect();
                (x, RouterOutput::route(&logits, k))
            })
            .unzip()
    }

    fn plan_for(model: &ModelConfig, routes: &[RouterOutput]) -> SchedulePlan {
        let routing = LayerRouting::from_tokens(LayerId(0), model.routed_experts, routes);
        let tasks: Vec<ExpertTask> = routing
            .activated()
            .into_iter()
            .map(|(e, load)| ExpertTask {
                expert: e,
                load,
                cached: e.0 % 2 == 0,
            })
            .collect();
        let cost = hybrimoe_hw::UnitCostModel::paper_fig5();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        HybridScheduler::new().schedule(&ctx)
    }

    fn local_reference(
        model: &ModelConfig,
        plan: &SchedulePlan,
        inputs: &[Vec<f32>],
        routes: &[RouterOutput],
    ) -> Vec<f32> {
        RealLayerExecutor::with_options(model.clone(), 7, scalar_options())
            .execute_layer(LayerId(0), plan, inputs, routes)
            .unwrap()
            .output
    }

    #[test]
    fn remote_execution_is_bit_identical_to_local() {
        let model = ModelConfig::tiny_test();
        let (inputs, routes) = token_inputs(&model, 4, 9);
        let plan = plan_for(&model, &routes);
        let reference = local_reference(&model, &plan, &inputs, &routes);

        for workers in [1usize, 2] {
            let (handles, endpoints) = spawn_workers(workers, WorkerServerOptions::default());
            let remote = RemoteWorkerOptions {
                endpoints,
                ..Default::default()
            };
            let mut exec = RemoteLayerExecutor::new(model.clone(), 7, scalar_options(), &remote);
            let out = exec
                .execute_layer(LayerId(0), &plan, &inputs, &routes)
                .unwrap();
            assert_eq!(out.output, reference, "workers={workers}");
            let health = exec.health();
            assert_eq!(health.configured, workers as u64);
            assert_eq!(health.up, workers as u64);
            assert!(health.requests > 0);
            assert_eq!(health.failovers, 0);
            exec.drain();
            for h in handles {
                h.shutdown();
            }
        }
    }

    #[test]
    fn non_pipelined_dispatch_matches_too() {
        let model = ModelConfig::tiny_test();
        let (inputs, routes) = token_inputs(&model, 3, 21);
        let plan = plan_for(&model, &routes);
        let reference = local_reference(&model, &plan, &inputs, &routes);

        let (handles, endpoints) = spawn_workers(2, WorkerServerOptions::default());
        let remote = RemoteWorkerOptions {
            endpoints,
            pipeline: false,
            ..Default::default()
        };
        let mut exec = RemoteLayerExecutor::new(model, 7, scalar_options(), &remote);
        let out = exec
            .execute_layer(LayerId(0), &plan, &inputs, &routes)
            .unwrap();
        assert_eq!(out.output, reference);
        exec.drain();
        for h in handles {
            h.shutdown();
        }
    }

    #[test]
    fn empty_endpoints_run_fully_local() {
        let model = ModelConfig::tiny_test();
        let (inputs, routes) = token_inputs(&model, 2, 5);
        let plan = plan_for(&model, &routes);
        let reference = local_reference(&model, &plan, &inputs, &routes);

        let mut exec =
            RemoteLayerExecutor::new(model, 7, scalar_options(), &RemoteWorkerOptions::default());
        let out = exec
            .execute_layer(LayerId(0), &plan, &inputs, &routes)
            .unwrap();
        assert_eq!(out.output, reference);
        let health = exec.health();
        assert_eq!(health.configured, 0);
        assert_eq!(health.requests, 0);
    }

    #[test]
    fn mid_request_disconnect_fails_over_bit_identically() {
        // The worker dies mid-layer (drops the connection without
        // replying after its first execute); the affected experts fall
        // back to local weights and the output is still bit-identical.
        let model = ModelConfig::tiny_test();
        let (inputs, routes) = token_inputs(&model, 4, 13);
        let plan = plan_for(&model, &routes);
        let reference = local_reference(&model, &plan, &inputs, &routes);

        let (handles, endpoints) = spawn_workers(
            1,
            WorkerServerOptions {
                fail_after_executes: Some(1),
                ..Default::default()
            },
        );
        let remote = RemoteWorkerOptions {
            endpoints,
            deadline_ms: 2_000,
            ..Default::default()
        };
        let mut exec = RemoteLayerExecutor::new(model, 7, scalar_options(), &remote);
        let out = exec
            .execute_layer(LayerId(0), &plan, &inputs, &routes)
            .unwrap();
        assert_eq!(out.output, reference);
        let health = exec.health();
        assert!(health.failovers > 0, "health: {health:?}");
        drop(handles);
    }

    #[test]
    fn dead_endpoint_degrades_to_local() {
        // Nothing listening at all: every expert fails over, nothing
        // errors, and the output still matches.
        let model = ModelConfig::tiny_test();
        let (inputs, routes) = token_inputs(&model, 2, 3);
        let plan = plan_for(&model, &routes);
        let reference = local_reference(&model, &plan, &inputs, &routes);

        let remote = RemoteWorkerOptions {
            // A port from the ephemeral range with nothing bound; connect
            // fails fast on loopback.
            endpoints: vec!["127.0.0.1:1".to_owned()],
            ..Default::default()
        };
        let mut exec = RemoteLayerExecutor::new(model, 7, scalar_options(), &remote);
        let out = exec
            .execute_layer(LayerId(0), &plan, &inputs, &routes)
            .unwrap();
        assert_eq!(out.output, reference);
        let health = exec.health();
        assert_eq!(health.up, 0);
        assert!(health.failovers > 0);
    }

    #[test]
    fn breaker_opens_on_dead_worker_and_reprobes_after_cooldown() {
        let model = ModelConfig::tiny_test();
        let (inputs, routes) = token_inputs(&model, 2, 3);
        let plan = plan_for(&model, &routes);
        let reference = local_reference(&model, &plan, &inputs, &routes);

        let remote = RemoteWorkerOptions {
            endpoints: vec!["127.0.0.1:1".to_owned()], // nothing listening
            breaker_threshold: 1,
            breaker_cooldown_ms: 1,
            ..Default::default()
        };
        let mut exec = RemoteLayerExecutor::new(model, 7, scalar_options(), &remote);
        let out = exec
            .execute_layer(LayerId(0), &plan, &inputs, &routes)
            .unwrap();
        assert_eq!(out.output, reference);
        let health = exec.health();
        assert_eq!(health.breaker_open, 1);
        assert_eq!(health.breaker_trips, 1);
        assert!(health.failovers > 0);

        // Cooldown expired: the next layer's dispatch probes the (still
        // dead) worker, the probe fails, and the breaker re-opens without
        // counting a new trip. Output stays bit-identical throughout.
        std::thread::sleep(Duration::from_millis(5));
        let out = exec
            .execute_layer(LayerId(0), &plan, &inputs, &routes)
            .unwrap();
        assert_eq!(out.output, reference);
        let health = exec.health();
        assert_eq!(health.breaker_open, 1);
        assert_eq!(health.breaker_trips, 1);
    }

    #[test]
    fn remote_backend_reports_health_and_outputs() {
        let model = ModelConfig::tiny_test();
        let (handles, endpoints) = spawn_workers(1, WorkerServerOptions::default());
        let remote = RemoteWorkerOptions {
            endpoints,
            ..Default::default()
        };
        let mut backend = RemoteBackend::new(model.clone(), 7, scalar_options(), &remote);
        assert_eq!(backend.name(), "remote-workers");

        let (inputs, routes) = token_inputs(&model, 2, 3);
        let plan = plan_for(&model, &routes);
        let states = hybrimoe_trace::TokenStates { inputs, routes };
        let routing = LayerRouting::from_tokens(LayerId(0), model.routed_experts, &states.routes);
        let tasks: Vec<ExpertTask> = routing
            .activated()
            .into_iter()
            .map(|(e, load)| ExpertTask {
                expert: e,
                load,
                cached: e.0 % 2 == 0,
            })
            .collect();
        let cost = hybrimoe_hw::UnitCostModel::paper_fig5();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);

        backend.begin_step();
        let outcome = backend.execute_layer(&LayerRequest {
            layer: LayerId(0),
            plan: &plan,
            ctx: &ctx,
            states: Some(&states),
        });
        assert!(outcome.makespan > SimDuration::ZERO);
        let outputs = backend.take_step_outputs();
        assert_eq!(outputs.len(), 1);
        assert!(outputs[0].output.iter().any(|v| *v != 0.0));
        let health = backend.worker_health().expect("remote backend has health");
        assert_eq!(health.configured, 1);
        assert!(health.requests > 0);
        for h in handles {
            h.shutdown();
        }
    }
}
