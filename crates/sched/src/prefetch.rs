//! Inter-layer expert prefetching.
//!
//! While a layer computes, the PCIe link is often idle; prefetching experts
//! for upcoming layers into that idle time hides transfer latency. The
//! paper's contribution (§IV-C) is to rank candidates by **simulated
//! impact** — how much the next layers' makespan would shrink if the expert
//! were already cached — rather than by raw predicted probability.

use hybrimoe_hw::{CostModel, ExpertProfile, SimDuration};
use hybrimoe_model::{ExpertId, ExpertKey, LayerId};

use crate::{ExpertTask, HybridScheduler, ScheduleContext, Scheduler};

/// The predicted routing of one upcoming layer.
///
/// Predictions reuse the *current* hidden state on later routers (the
/// residual stream changes slowly across layers, §IV-C), so accuracy decays
/// with distance; the trace layer models that decay.
#[derive(Debug, Clone)]
pub struct PredictedLayer {
    /// The layer being predicted.
    pub layer: LayerId,
    /// Predicted activated experts with predicted loads, `cached` reflecting
    /// *current* cache residency.
    pub tasks: Vec<ExpertTask>,
    /// Predicted mean router scores over all experts of the layer.
    pub scores: Vec<f32>,
}

/// Everything a [`Prefetcher`] may consult.
#[derive(Debug)]
pub struct PrefetchContext<'a> {
    /// The layer that just finished scheduling.
    pub current_layer: LayerId,
    /// Predictions for the next layers (typically 3), nearest first.
    pub lookahead: &'a [PredictedLayer],
    /// Free expert slots in the GPU cache (prefetches never evict).
    pub free_slots: usize,
    /// Idle PCIe time available before the next layer needs the link.
    pub budget: SimDuration,
    /// Token count of the current batch.
    pub tokens: u32,
    /// Cost profile of a routed expert.
    pub routed_profile: ExpertProfile,
    /// Combined shared-expert profile, if any.
    pub shared_profile: Option<ExpertProfile>,
    /// The platform cost model.
    pub cost: &'a dyn CostModel,
    /// Number of GPU shards of the platform: the impact simulation re-runs
    /// the hybrid schedule with the same shard layout the engine executes,
    /// so prefetch ranking stays device-local.
    pub num_gpus: usize,
}

/// A prefetching policy: returns the expert keys to transfer during idle
/// PCIe time, best candidate first.
pub trait Prefetcher: std::fmt::Debug + Send + Sync {
    /// A short stable name for reports.
    fn name(&self) -> &str;

    /// Ranks and caps the prefetch candidates for this step.
    fn plan(&self, ctx: &PrefetchContext<'_>) -> Vec<ExpertKey>;
}

/// No prefetching (the ablation baseline).
#[derive(Debug, Default, Clone)]
pub struct NoPrefetcher {}

impl NoPrefetcher {
    /// Creates the no-op prefetcher.
    pub fn new() -> Self {
        NoPrefetcher {}
    }
}

impl Prefetcher for NoPrefetcher {
    fn name(&self) -> &str {
        "none"
    }

    fn plan(&self, _ctx: &PrefetchContext<'_>) -> Vec<ExpertKey> {
        Vec::new()
    }
}

/// Probability-ranked prefetching of the immediately following layer
/// (the strategy of prior work such as AdapMoE / Pre-gated MoE): pick the
/// highest-scoring uncached experts of layer `current + 1`.
#[derive(Debug, Default, Clone)]
pub struct NextLayerTopKPrefetcher {}

impl NextLayerTopKPrefetcher {
    /// Creates the next-layer top-K prefetcher.
    pub fn new() -> Self {
        NextLayerTopKPrefetcher {}
    }
}

impl Prefetcher for NextLayerTopKPrefetcher {
    fn name(&self) -> &str {
        "next-layer-topk"
    }

    fn plan(&self, ctx: &PrefetchContext<'_>) -> Vec<ExpertKey> {
        let Some(next) = ctx.lookahead.first() else {
            return Vec::new();
        };
        let mut candidates: Vec<(f32, ExpertId)> = next
            .tasks
            .iter()
            .filter(|t| !t.cached)
            .map(|t| {
                let score = next.scores.get(t.expert.0 as usize).copied().unwrap_or(0.0);
                (score, t.expert)
            })
            .collect();
        candidates.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        let cap = prefetch_cap(ctx);
        candidates
            .into_iter()
            .take(cap)
            .map(|(_, e)| ExpertKey::new(next.layer, e))
            .collect()
    }
}

/// The paper's **impact-driven** prefetcher (§IV-C).
///
/// For every uncached predicted-activated expert of the next `lookahead`
/// layers, re-run the hybrid scheduling simulation with that expert marked
/// cached; its *impact* is the simulated makespan reduction, discounted by
/// prediction confidence for farther layers. Candidates are prefetched in
/// impact order while the PCIe budget and free cache slots last.
///
/// # Example
///
/// ```
/// use hybrimoe_hw::{SimDuration, UnitCostModel};
/// use hybrimoe_model::{ExpertId, LayerId};
/// use hybrimoe_sched::{
///     ExpertTask, ImpactDrivenPrefetcher, PredictedLayer, PrefetchContext, Prefetcher,
/// };
///
/// let cost = UnitCostModel::paper_fig5();
/// let next = PredictedLayer {
///     layer: LayerId(1),
///     tasks: vec![
///         ExpertTask::uncached(ExpertId(0), 6), // heavy: caching it helps a lot
///         ExpertTask::uncached(ExpertId(1), 1), // light: CPU handles it anyway
///     ],
///     scores: vec![0.6, 0.4],
/// };
/// let ctx = PrefetchContext {
///     current_layer: LayerId(0),
///     lookahead: &[next],
///     free_slots: 1,
///     budget: SimDuration::from_micros(3),
///     tokens: 6,
///     routed_profile: hybrimoe_hw::ExpertProfile::new(1, 1),
///     shared_profile: None,
///     cost: &cost,
///     num_gpus: 1,
/// };
/// let picks = ImpactDrivenPrefetcher::new().plan(&ctx);
/// assert_eq!(picks.len(), 1);
/// assert_eq!(picks[0].expert, ExpertId(0));
/// ```
#[derive(Debug, Clone)]
pub struct ImpactDrivenPrefetcher {
    /// Multiplicative confidence discount per layer of distance beyond the
    /// next one.
    distance_discount: f64,
}

impl ImpactDrivenPrefetcher {
    /// Creates the prefetcher with the default distance discount (0.6).
    pub fn new() -> Self {
        ImpactDrivenPrefetcher {
            distance_discount: 0.6,
        }
    }

    /// Overrides the per-layer confidence discount.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < discount <= 1`.
    pub fn with_distance_discount(discount: f64) -> Self {
        assert!(
            discount > 0.0 && discount <= 1.0,
            "discount must be in (0, 1], got {discount}"
        );
        ImpactDrivenPrefetcher {
            distance_discount: discount,
        }
    }
}

impl Default for ImpactDrivenPrefetcher {
    fn default() -> Self {
        ImpactDrivenPrefetcher::new()
    }
}

impl Prefetcher for ImpactDrivenPrefetcher {
    fn name(&self) -> &str {
        "impact-driven"
    }

    fn plan(&self, ctx: &PrefetchContext<'_>) -> Vec<ExpertKey> {
        let scheduler = HybridScheduler::new();
        let mut scored: Vec<(f64, ExpertKey)> = Vec::new();

        for (distance, predicted) in ctx.lookahead.iter().enumerate() {
            let discount = self.distance_discount.powi(distance as i32);
            let base = simulate_makespan(&scheduler, ctx, predicted, None);
            for t in predicted.tasks.iter().filter(|t| !t.cached) {
                let with = simulate_makespan(&scheduler, ctx, predicted, Some(t.expert));
                let gain = base.saturating_sub(with).as_nanos() as f64 * discount;
                if gain > 0.0 {
                    scored.push((gain, ExpertKey::new(predicted.layer, t.expert)));
                }
            }
        }

        scored.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        let cap = prefetch_cap(ctx);
        scored.into_iter().take(cap).map(|(_, k)| k).collect()
    }
}

/// How many prefetches fit the PCIe budget and the free cache slots.
fn prefetch_cap(ctx: &PrefetchContext<'_>) -> usize {
    let per_transfer = ctx.cost.transfer(&ctx.routed_profile);
    let by_budget = if per_transfer == SimDuration::ZERO {
        usize::MAX
    } else {
        (ctx.budget.as_nanos() / per_transfer.as_nanos()) as usize
    };
    by_budget.min(ctx.free_slots)
}

/// Simulated makespan of a predicted layer, optionally with one extra
/// expert treated as cached.
fn simulate_makespan(
    scheduler: &HybridScheduler,
    ctx: &PrefetchContext<'_>,
    predicted: &PredictedLayer,
    extra_cached: Option<ExpertId>,
) -> SimDuration {
    let tasks: Vec<ExpertTask> = predicted
        .tasks
        .iter()
        .map(|t| {
            let mut t = *t;
            if Some(t.expert) == extra_cached {
                t.cached = true;
            }
            t
        })
        .collect();
    let sched_ctx = ScheduleContext::new(
        predicted.layer,
        ctx.tokens,
        &tasks,
        ctx.routed_profile,
        ctx.shared_profile,
        ctx.cost,
    )
    .with_gpus(ctx.num_gpus.max(1));
    scheduler.schedule(&sched_ctx).predicted_makespan
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrimoe_hw::UnitCostModel;

    fn ctx<'a>(
        lookahead: &'a [PredictedLayer],
        free_slots: usize,
        budget_us: u64,
        cost: &'a UnitCostModel,
    ) -> PrefetchContext<'a> {
        PrefetchContext {
            current_layer: LayerId(0),
            lookahead,
            free_slots,
            budget: SimDuration::from_micros(budget_us),
            tokens: 8,
            routed_profile: ExpertProfile::new(1, 1),
            shared_profile: None,
            cost,
            num_gpus: 1,
        }
    }

    fn predicted(layer: u16, tasks: Vec<ExpertTask>) -> PredictedLayer {
        let n = tasks.iter().map(|t| t.expert.0 + 1).max().unwrap_or(0);
        let scores = (0..n).map(|i| 1.0 / (i + 1) as f32).collect();
        PredictedLayer {
            layer: LayerId(layer),
            tasks,
            scores,
        }
    }

    #[test]
    fn no_prefetcher_returns_empty() {
        let cost = UnitCostModel::paper_fig5();
        let look = [predicted(1, vec![ExpertTask::uncached(ExpertId(0), 5)])];
        assert!(NoPrefetcher::new()
            .plan(&ctx(&look, 8, 100, &cost))
            .is_empty());
    }

    #[test]
    fn impact_prefers_high_gain_expert() {
        let cost = UnitCostModel::paper_fig5();
        // Heavy uncached expert: caching it moves 8 CPU units to 1 GPU unit.
        // Light one: CPU absorbs it with negligible cost.
        let look = [predicted(
            1,
            vec![
                ExpertTask::uncached(ExpertId(0), 8),
                ExpertTask::uncached(ExpertId(1), 1),
            ],
        )];
        let picks = ImpactDrivenPrefetcher::new().plan(&ctx(&look, 2, 100, &cost));
        assert!(!picks.is_empty());
        assert_eq!(picks[0], ExpertKey::new(LayerId(1), ExpertId(0)));
    }

    #[test]
    fn impact_skips_cached_and_zero_gain() {
        let cost = UnitCostModel::paper_fig5();
        let look = [predicted(
            1,
            vec![
                ExpertTask::cached(ExpertId(0), 8),
                // Light task that the CPU absorbs in parallel: zero gain.
                ExpertTask::uncached(ExpertId(1), 1),
            ],
        )];
        let picks = ImpactDrivenPrefetcher::new().plan(&ctx(&look, 2, 100, &cost));
        assert!(picks.is_empty(), "{picks:?}");
    }

    #[test]
    fn budget_caps_count() {
        let cost = UnitCostModel::paper_fig5(); // transfers take 3us
                                                // Two high-gain candidates across two layers (the single-layer
                                                // variant is exercised by impact_prefers_high_gain_expert).
        let look = [
            predicted(1, vec![ExpertTask::uncached(ExpertId(0), 8)]),
            predicted(2, vec![ExpertTask::uncached(ExpertId(0), 8)]),
        ];
        // A generous budget admits both...
        let picks = ImpactDrivenPrefetcher::new().plan(&ctx(&look, 8, 100, &cost));
        assert_eq!(picks.len(), 2);
        // ...a 7us budget fits only two 3us transfers, 5us only one...
        let picks = ImpactDrivenPrefetcher::new().plan(&ctx(&look, 8, 5, &cost));
        assert_eq!(picks.len(), 1);
        // ...a budget below one transfer admits none...
        let picks = ImpactDrivenPrefetcher::new().plan(&ctx(&look, 8, 2, &cost));
        assert!(picks.is_empty());
        // ...and free slots can be the binding constraint too.
        let picks = ImpactDrivenPrefetcher::new().plan(&ctx(&look, 1, 100, &cost));
        assert_eq!(picks.len(), 1);
    }

    #[test]
    fn nearer_layer_wins_on_equal_shape() {
        let cost = UnitCostModel::paper_fig5();
        let look = [
            predicted(1, vec![ExpertTask::uncached(ExpertId(0), 8)]),
            predicted(2, vec![ExpertTask::uncached(ExpertId(0), 8)]),
        ];
        let picks = ImpactDrivenPrefetcher::new().plan(&ctx(&look, 2, 100, &cost));
        assert_eq!(picks.len(), 2);
        assert_eq!(picks[0].layer, LayerId(1), "discounted farther layer");
        assert_eq!(picks[1].layer, LayerId(2));
    }

    #[test]
    fn next_layer_topk_ranks_by_score() {
        let cost = UnitCostModel::paper_fig5();
        let look = [PredictedLayer {
            layer: LayerId(1),
            tasks: vec![
                ExpertTask::uncached(ExpertId(0), 1),
                ExpertTask::uncached(ExpertId(1), 1),
                ExpertTask::cached(ExpertId(2), 1),
            ],
            scores: vec![0.1, 0.8, 0.1],
        }];
        let picks = NextLayerTopKPrefetcher::new().plan(&ctx(&look, 8, 100, &cost));
        assert_eq!(picks[0], ExpertKey::new(LayerId(1), ExpertId(1)));
        // The cached expert is never prefetched.
        assert!(picks.iter().all(|k| k.expert != ExpertId(2)));
    }

    #[test]
    fn empty_lookahead_yields_nothing() {
        let cost = UnitCostModel::paper_fig5();
        for p in [
            Box::new(ImpactDrivenPrefetcher::new()) as Box<dyn Prefetcher>,
            Box::new(NextLayerTopKPrefetcher::new()),
        ] {
            assert!(p.plan(&ctx(&[], 8, 100, &cost)).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "discount")]
    fn bad_discount_rejected() {
        let _ = ImpactDrivenPrefetcher::with_distance_discount(0.0);
    }

    #[test]
    fn prefetcher_names_distinct() {
        let names = [
            NoPrefetcher::new().name().to_owned(),
            NextLayerTopKPrefetcher::new().name().to_owned(),
            ImpactDrivenPrefetcher::new().name().to_owned(),
        ];
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }
}
