//! Inter-layer expert prefetching.
//!
//! While a layer computes, the PCIe link is often idle; prefetching experts
//! for upcoming layers into that idle time hides transfer latency. The
//! paper's contribution (§IV-C) is to rank candidates by **simulated
//! impact** — how much the next layers' makespan would shrink if the expert
//! were already cached — rather than by raw predicted probability.

use hybrimoe_hw::{CostModel, ExpertProfile, SimDuration};
use hybrimoe_model::{shard_of, ExpertId, ExpertKey, LayerId};

use crate::{ExpertTask, HybridScheduler, ScheduleContext, Scheduler};

/// The predicted routing of one upcoming layer.
///
/// Predictions reuse the *current* hidden state on later routers (the
/// residual stream changes slowly across layers, §IV-C), so accuracy decays
/// with distance; the trace layer models that decay.
#[derive(Debug, Clone)]
pub struct PredictedLayer {
    /// The layer being predicted.
    pub layer: LayerId,
    /// Predicted activated experts with predicted loads, `cached` reflecting
    /// *current* cache residency.
    pub tasks: Vec<ExpertTask>,
    /// Predicted mean router scores over all experts of the layer.
    pub scores: Vec<f32>,
}

/// Everything a [`Prefetcher`] may consult.
#[derive(Debug)]
pub struct PrefetchContext<'a> {
    /// The layer that just finished scheduling.
    pub current_layer: LayerId,
    /// Predictions for the next layers (typically 3), nearest first.
    pub lookahead: &'a [PredictedLayer],
    /// Free expert slots in the GPU cache (prefetches never evict).
    pub free_slots: usize,
    /// Idle PCIe time available **per lane** before the next layer needs
    /// the link. Every GPU shard owns its own PCIe lane, so with `N`
    /// shards the total transferable volume is `N` times this budget; the
    /// selection fills each lane independently.
    pub budget: SimDuration,
    /// Token count of the current batch.
    pub tokens: u32,
    /// Cost profile of a routed expert.
    pub routed_profile: ExpertProfile,
    /// Combined shared-expert profile, if any.
    pub shared_profile: Option<ExpertProfile>,
    /// The platform cost model.
    pub cost: &'a dyn CostModel,
    /// Number of GPU shards of the platform: the impact simulation re-runs
    /// the hybrid schedule with the same shard layout the engine executes,
    /// so prefetch ranking stays device-local.
    pub num_gpus: usize,
    /// Per-distance prediction confidence in `(0, 1]`, nearest layer
    /// first, measured by a learned predictor. When present it replaces
    /// the impact-driven prefetcher's fixed geometric distance discount;
    /// `None` keeps the legacy discount.
    pub confidence: Option<&'a [f64]>,
    /// Free cache slots per GPU shard, for paths where prefetched
    /// transfers may only land on free slots: a candidate whose affinity
    /// shard (`shard_of(expert)`) has none left is skipped, since its
    /// transfer could never land. `None` disables the check (insert paths
    /// that may evict).
    pub shard_free: Option<&'a [usize]>,
}

/// A prefetching policy: returns the expert keys to transfer during idle
/// PCIe time, best candidate first.
pub trait Prefetcher: std::fmt::Debug + Send + Sync {
    /// A short stable name for reports.
    fn name(&self) -> &str;

    /// Ranks and caps the prefetch candidates for this step.
    fn plan(&self, ctx: &PrefetchContext<'_>) -> Vec<ExpertKey>;
}

/// No prefetching (the ablation baseline).
#[derive(Debug, Default, Clone)]
pub struct NoPrefetcher {}

impl NoPrefetcher {
    /// Creates the no-op prefetcher.
    pub fn new() -> Self {
        NoPrefetcher {}
    }
}

impl Prefetcher for NoPrefetcher {
    fn name(&self) -> &str {
        "none"
    }

    fn plan(&self, _ctx: &PrefetchContext<'_>) -> Vec<ExpertKey> {
        Vec::new()
    }
}

/// Probability-ranked prefetching of the immediately following layer
/// (the strategy of prior work such as AdapMoE / Pre-gated MoE): pick the
/// highest-scoring uncached experts of layer `current + 1`.
#[derive(Debug, Default, Clone)]
pub struct NextLayerTopKPrefetcher {}

impl NextLayerTopKPrefetcher {
    /// Creates the next-layer top-K prefetcher.
    pub fn new() -> Self {
        NextLayerTopKPrefetcher {}
    }
}

impl Prefetcher for NextLayerTopKPrefetcher {
    fn name(&self) -> &str {
        "next-layer-topk"
    }

    fn plan(&self, ctx: &PrefetchContext<'_>) -> Vec<ExpertKey> {
        let Some(next) = ctx.lookahead.first() else {
            return Vec::new();
        };
        let mut candidates: Vec<(f32, ExpertId)> = next
            .tasks
            .iter()
            .filter(|t| !t.cached)
            .map(|t| {
                let score = next.scores.get(t.expert.0 as usize).copied().unwrap_or(0.0);
                (score, t.expert)
            })
            .collect();
        candidates.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        select_across_lanes(
            ctx,
            candidates
                .into_iter()
                .map(|(_, e)| ExpertKey::new(next.layer, e)),
        )
    }
}

/// The paper's **impact-driven** prefetcher (§IV-C).
///
/// For every uncached predicted-activated expert of the next `lookahead`
/// layers, re-run the hybrid scheduling simulation with that expert marked
/// cached; its *impact* is the simulated makespan reduction, discounted by
/// prediction confidence for farther layers. Candidates are prefetched in
/// impact order while the PCIe budget and free cache slots last.
///
/// # Example
///
/// ```
/// use hybrimoe_hw::{SimDuration, UnitCostModel};
/// use hybrimoe_model::{ExpertId, LayerId};
/// use hybrimoe_sched::{
///     ExpertTask, ImpactDrivenPrefetcher, PredictedLayer, PrefetchContext, Prefetcher,
/// };
///
/// let cost = UnitCostModel::paper_fig5();
/// let next = PredictedLayer {
///     layer: LayerId(1),
///     tasks: vec![
///         ExpertTask::uncached(ExpertId(0), 6), // heavy: caching it helps a lot
///         ExpertTask::uncached(ExpertId(1), 1), // light: CPU handles it anyway
///     ],
///     scores: vec![0.6, 0.4],
/// };
/// let ctx = PrefetchContext {
///     current_layer: LayerId(0),
///     lookahead: &[next],
///     free_slots: 1,
///     budget: SimDuration::from_micros(3),
///     tokens: 6,
///     routed_profile: hybrimoe_hw::ExpertProfile::new(1, 1),
///     shared_profile: None,
///     cost: &cost,
///     num_gpus: 1,
///     confidence: None,
///     shard_free: None,
/// };
/// let picks = ImpactDrivenPrefetcher::new().plan(&ctx);
/// assert_eq!(picks.len(), 1);
/// assert_eq!(picks[0].expert, ExpertId(0));
/// ```
#[derive(Debug, Clone)]
pub struct ImpactDrivenPrefetcher {
    /// Multiplicative confidence discount per layer of distance beyond the
    /// next one.
    distance_discount: f64,
    /// Minimum discounted gain, in multiples of one expert transfer's PCIe
    /// time, a candidate must clear to be worth issuing. Zero keeps the
    /// paper's behaviour (any positive gain qualifies).
    min_gain_per_transfer: f64,
}

impl ImpactDrivenPrefetcher {
    /// Creates the prefetcher with the default distance discount (0.6).
    pub fn new() -> Self {
        ImpactDrivenPrefetcher {
            distance_discount: 0.6,
            min_gain_per_transfer: 0.0,
        }
    }

    /// Overrides the per-layer confidence discount.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < discount <= 1`.
    pub fn with_distance_discount(discount: f64) -> Self {
        assert!(
            discount > 0.0 && discount <= 1.0,
            "discount must be in (0, 1], got {discount}"
        );
        ImpactDrivenPrefetcher {
            distance_discount: discount,
            min_gain_per_transfer: 0.0,
        }
    }

    /// Sets the expected-gain floor: a candidate is only issued when its
    /// confidence-discounted makespan gain exceeds `ratio` times the PCIe
    /// time its own transfer occupies. A mispredicted prefetch costs a
    /// cache slot (a future demand insert must evict it again), so
    /// issuing transfers whose expected payoff is below their cost loses
    /// more hit ratio than it hides latency.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is negative or not finite.
    pub fn with_min_gain_per_transfer(mut self, ratio: f64) -> Self {
        assert!(
            ratio.is_finite() && ratio >= 0.0,
            "min gain ratio must be finite and >= 0, got {ratio}"
        );
        self.min_gain_per_transfer = ratio;
        self
    }
}

impl Default for ImpactDrivenPrefetcher {
    fn default() -> Self {
        ImpactDrivenPrefetcher::new()
    }
}

impl Prefetcher for ImpactDrivenPrefetcher {
    fn name(&self) -> &str {
        "impact-driven"
    }

    fn plan(&self, ctx: &PrefetchContext<'_>) -> Vec<ExpertKey> {
        // Nothing can be selected (no budget, no free slot, no shard
        // space): skip the schedule simulations entirely — they sit on
        // the per-step hot path.
        if max_selectable(ctx) == 0 {
            return Vec::new();
        }
        let scheduler = HybridScheduler::new();
        let mut scored: Vec<(f64, ExpertKey)> = Vec::new();

        // Pruning bound: the final selection keeps at most `free_slots`
        // keys, so once that many gains are known, a candidate whose
        // *upper-bound* gain — the layer's full base makespan, discounted
        // — is strictly below the `free_slots`'th best can never appear
        // in the selection; its with-expert simulation is skipped. The
        // surviving candidates score exactly as before, so the output is
        // bit-identical to the unpruned plan.
        let cap = ctx.free_slots;
        let mut top_gains: Vec<f64> = Vec::new();
        // The expected-gain floor, in simulated nanoseconds.
        let floor =
            self.min_gain_per_transfer * ctx.cost.transfer(&ctx.routed_profile).as_nanos() as f64;

        for (distance, predicted) in ctx.lookahead.iter().enumerate() {
            let discount = confidence_discount(self.distance_discount, ctx, distance);
            // Base makespan memoized once per predicted layer; every
            // candidate of the layer shares it.
            let base = simulate_makespan(&scheduler, ctx, predicted, None);
            let upper_bound = base.as_nanos() as f64 * discount;
            if upper_bound <= floor {
                continue; // no candidate of this layer can clear the floor
            }
            for t in predicted.tasks.iter().filter(|t| !t.cached) {
                if top_gains.len() >= cap && upper_bound < top_gains[cap - 1] {
                    continue;
                }
                let with = simulate_makespan(&scheduler, ctx, predicted, Some(t.expert));
                let gain = base.saturating_sub(with).as_nanos() as f64 * discount;
                if gain > floor {
                    scored.push((gain, ExpertKey::new(predicted.layer, t.expert)));
                    let pos = top_gains.partition_point(|&g| g >= gain);
                    if pos < cap {
                        top_gains.insert(pos, gain);
                        top_gains.truncate(cap);
                    }
                }
            }
        }

        scored.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        select_across_lanes(ctx, scored.into_iter().map(|(_, k)| k))
    }
}

/// Default expected-gain floor of the predictive prefetcher, in
/// transfer-time multiples (see
/// [`ImpactDrivenPrefetcher::with_min_gain_per_transfer`]).
///
/// Learned predictions carry measured (often low) confidence, so the
/// discounted gains are honest expected values; requiring a candidate to
/// pay back at least its own transfer time filters the speculative tail
/// that evicts useful residents without measurably shrinking makespan.
pub const PREDICTIVE_MIN_GAIN_PER_TRANSFER: f64 = 0.1;

/// Impact-driven ranking over *learned* cross-layer predictions.
///
/// The ranking is exactly [`ImpactDrivenPrefetcher`]'s; what changes is
/// the engine-supplied context: the lookahead comes from an
/// [`ExpertPredictor`](crate::predict::ExpertPredictor) learning
/// expert-transition frequencies online (wrapping across the model end,
/// so prefetch keeps working near the last layers), and
/// [`PrefetchContext::confidence`] carries the predictor's measured
/// per-distance accuracy in place of the fixed geometric distance
/// discount. Because that confidence is a *measured* quantity, the
/// discounted impact is an honest expected value, and the prefetcher
/// additionally applies [`PREDICTIVE_MIN_GAIN_PER_TRANSFER`]: candidates
/// whose expected gain cannot pay for their own transfer are withheld
/// rather than allowed to displace demand-inserted residents.
#[derive(Debug, Clone)]
pub struct PredictivePrefetcher {
    inner: ImpactDrivenPrefetcher,
}

impl Default for PredictivePrefetcher {
    fn default() -> Self {
        PredictivePrefetcher::new()
    }
}

impl PredictivePrefetcher {
    /// Creates the predictive prefetcher with the default expected-gain
    /// floor.
    pub fn new() -> Self {
        PredictivePrefetcher {
            inner: ImpactDrivenPrefetcher::new()
                .with_min_gain_per_transfer(PREDICTIVE_MIN_GAIN_PER_TRANSFER),
        }
    }

    /// Overrides the expected-gain floor (`0` disables the filter and
    /// reproduces the plain impact-driven ranking).
    pub fn with_min_gain_per_transfer(ratio: f64) -> Self {
        PredictivePrefetcher {
            inner: ImpactDrivenPrefetcher::new().with_min_gain_per_transfer(ratio),
        }
    }
}

impl Prefetcher for PredictivePrefetcher {
    fn name(&self) -> &str {
        "predictive"
    }

    fn plan(&self, ctx: &PrefetchContext<'_>) -> Vec<ExpertKey> {
        self.inner.plan(ctx)
    }
}

/// The per-distance gain discount: measured predictor confidence when the
/// context carries one, the prefetcher's geometric decay otherwise.
fn confidence_discount(distance_discount: f64, ctx: &PrefetchContext<'_>, distance: usize) -> f64 {
    ctx.confidence
        .and_then(|c| c.get(distance))
        .copied()
        .unwrap_or_else(|| distance_discount.powi(distance as i32))
}

/// How many transfers one PCIe lane's budget admits.
fn per_lane_cap(ctx: &PrefetchContext<'_>) -> usize {
    let per_transfer = ctx.cost.transfer(&ctx.routed_profile);
    if per_transfer == SimDuration::ZERO {
        usize::MAX
    } else {
        (ctx.budget.as_nanos() / per_transfer.as_nanos()) as usize
    }
}

/// Upper bound on how many keys [`select_across_lanes`] could return.
fn max_selectable(ctx: &PrefetchContext<'_>) -> usize {
    let lanes = ctx.num_gpus.max(1);
    let by_lanes = per_lane_cap(ctx).saturating_mul(lanes);
    let by_shards = ctx
        .shard_free
        .map_or(usize::MAX, |s| s.iter().copied().sum());
    ctx.free_slots.min(by_lanes).min(by_shards)
}

/// Walks `ranked` (best candidate first) admitting keys while capacity
/// lasts: each GPU shard's PCIe lane has its own transfer budget (a full
/// lane skips the candidate rather than ending selection, so idle lanes
/// keep filling), the global `free_slots` bound caps the total, and — when
/// the context carries per-shard free-slot counts — a candidate whose
/// affinity shard is out of slots is skipped because its transfer could
/// never land. With one GPU this degenerates to the classic
/// `min(budget/transfer, free_slots)` prefix.
fn select_across_lanes(
    ctx: &PrefetchContext<'_>,
    ranked: impl Iterator<Item = ExpertKey>,
) -> Vec<ExpertKey> {
    let lanes = ctx.num_gpus.max(1);
    let per_lane = per_lane_cap(ctx);
    let mut lane_used = vec![0usize; lanes];
    let mut shard_left: Option<Vec<usize>> = ctx.shard_free.map(<[usize]>::to_vec);
    let mut out = Vec::new();
    for key in ranked {
        if out.len() >= ctx.free_slots {
            break;
        }
        let lane = shard_of(key.expert, lanes);
        if lane_used[lane] >= per_lane {
            continue;
        }
        if let Some(left) = shard_left.as_mut() {
            match left.get_mut(lane) {
                Some(slots) if *slots > 0 => *slots -= 1,
                _ => continue,
            }
        }
        lane_used[lane] += 1;
        out.push(key);
    }
    out
}

/// Simulated makespan of a predicted layer, optionally with one extra
/// expert treated as cached.
fn simulate_makespan(
    scheduler: &HybridScheduler,
    ctx: &PrefetchContext<'_>,
    predicted: &PredictedLayer,
    extra_cached: Option<ExpertId>,
) -> SimDuration {
    let tasks: Vec<ExpertTask> = predicted
        .tasks
        .iter()
        .map(|t| {
            let mut t = *t;
            if Some(t.expert) == extra_cached {
                t.cached = true;
            }
            t
        })
        .collect();
    let sched_ctx = ScheduleContext::new(
        predicted.layer,
        ctx.tokens,
        &tasks,
        ctx.routed_profile,
        ctx.shared_profile,
        ctx.cost,
    )
    .with_gpus(ctx.num_gpus.max(1));
    scheduler.schedule(&sched_ctx).predicted_makespan
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrimoe_hw::UnitCostModel;

    fn ctx<'a>(
        lookahead: &'a [PredictedLayer],
        free_slots: usize,
        budget_us: u64,
        cost: &'a UnitCostModel,
    ) -> PrefetchContext<'a> {
        PrefetchContext {
            current_layer: LayerId(0),
            lookahead,
            free_slots,
            budget: SimDuration::from_micros(budget_us),
            tokens: 8,
            routed_profile: ExpertProfile::new(1, 1),
            shared_profile: None,
            cost,
            num_gpus: 1,
            confidence: None,
            shard_free: None,
        }
    }

    fn predicted(layer: u16, tasks: Vec<ExpertTask>) -> PredictedLayer {
        let n = tasks.iter().map(|t| t.expert.0 + 1).max().unwrap_or(0);
        let scores = (0..n).map(|i| 1.0 / (i + 1) as f32).collect();
        PredictedLayer {
            layer: LayerId(layer),
            tasks,
            scores,
        }
    }

    #[test]
    fn no_prefetcher_returns_empty() {
        let cost = UnitCostModel::paper_fig5();
        let look = [predicted(1, vec![ExpertTask::uncached(ExpertId(0), 5)])];
        assert!(NoPrefetcher::new()
            .plan(&ctx(&look, 8, 100, &cost))
            .is_empty());
    }

    #[test]
    fn impact_prefers_high_gain_expert() {
        let cost = UnitCostModel::paper_fig5();
        // Heavy uncached expert: caching it moves 8 CPU units to 1 GPU unit.
        // Light one: CPU absorbs it with negligible cost.
        let look = [predicted(
            1,
            vec![
                ExpertTask::uncached(ExpertId(0), 8),
                ExpertTask::uncached(ExpertId(1), 1),
            ],
        )];
        let picks = ImpactDrivenPrefetcher::new().plan(&ctx(&look, 2, 100, &cost));
        assert!(!picks.is_empty());
        assert_eq!(picks[0], ExpertKey::new(LayerId(1), ExpertId(0)));
    }

    #[test]
    fn impact_skips_cached_and_zero_gain() {
        let cost = UnitCostModel::paper_fig5();
        let look = [predicted(
            1,
            vec![
                ExpertTask::cached(ExpertId(0), 8),
                // Light task that the CPU absorbs in parallel: zero gain.
                ExpertTask::uncached(ExpertId(1), 1),
            ],
        )];
        let picks = ImpactDrivenPrefetcher::new().plan(&ctx(&look, 2, 100, &cost));
        assert!(picks.is_empty(), "{picks:?}");
    }

    #[test]
    fn budget_caps_count() {
        let cost = UnitCostModel::paper_fig5(); // transfers take 3us
                                                // Two high-gain candidates across two layers (the single-layer
                                                // variant is exercised by impact_prefers_high_gain_expert).
        let look = [
            predicted(1, vec![ExpertTask::uncached(ExpertId(0), 8)]),
            predicted(2, vec![ExpertTask::uncached(ExpertId(0), 8)]),
        ];
        // A generous budget admits both...
        let picks = ImpactDrivenPrefetcher::new().plan(&ctx(&look, 8, 100, &cost));
        assert_eq!(picks.len(), 2);
        // ...a 7us budget fits only two 3us transfers, 5us only one...
        let picks = ImpactDrivenPrefetcher::new().plan(&ctx(&look, 8, 5, &cost));
        assert_eq!(picks.len(), 1);
        // ...a budget below one transfer admits none...
        let picks = ImpactDrivenPrefetcher::new().plan(&ctx(&look, 8, 2, &cost));
        assert!(picks.is_empty());
        // ...and free slots can be the binding constraint too.
        let picks = ImpactDrivenPrefetcher::new().plan(&ctx(&look, 1, 100, &cost));
        assert_eq!(picks.len(), 1);
    }

    #[test]
    fn nearer_layer_wins_on_equal_shape() {
        let cost = UnitCostModel::paper_fig5();
        let look = [
            predicted(1, vec![ExpertTask::uncached(ExpertId(0), 8)]),
            predicted(2, vec![ExpertTask::uncached(ExpertId(0), 8)]),
        ];
        let picks = ImpactDrivenPrefetcher::new().plan(&ctx(&look, 2, 100, &cost));
        assert_eq!(picks.len(), 2);
        assert_eq!(picks[0].layer, LayerId(1), "discounted farther layer");
        assert_eq!(picks[1].layer, LayerId(2));
    }

    #[test]
    fn next_layer_topk_ranks_by_score() {
        let cost = UnitCostModel::paper_fig5();
        let look = [PredictedLayer {
            layer: LayerId(1),
            tasks: vec![
                ExpertTask::uncached(ExpertId(0), 1),
                ExpertTask::uncached(ExpertId(1), 1),
                ExpertTask::cached(ExpertId(2), 1),
            ],
            scores: vec![0.1, 0.8, 0.1],
        }];
        let picks = NextLayerTopKPrefetcher::new().plan(&ctx(&look, 8, 100, &cost));
        assert_eq!(picks[0], ExpertKey::new(LayerId(1), ExpertId(1)));
        // The cached expert is never prefetched.
        assert!(picks.iter().all(|k| k.expert != ExpertId(2)));
    }

    #[test]
    fn empty_lookahead_yields_nothing() {
        let cost = UnitCostModel::paper_fig5();
        for p in [
            Box::new(ImpactDrivenPrefetcher::new()) as Box<dyn Prefetcher>,
            Box::new(NextLayerTopKPrefetcher::new()),
        ] {
            assert!(p.plan(&ctx(&[], 8, 100, &cost)).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "discount")]
    fn bad_discount_rejected() {
        let _ = ImpactDrivenPrefetcher::with_distance_discount(0.0);
    }

    #[test]
    fn per_lane_budget_fills_idle_lanes() {
        let cost = UnitCostModel::paper_fig5(); // transfers take 3us
                                                // One high-gain expert per layer, on different shards of a
                                                // 2-GPU platform (expert 0 → shard 0, expert 1 → shard 1).
        let look = [
            predicted(1, vec![ExpertTask::uncached(ExpertId(0), 8)]),
            predicted(2, vec![ExpertTask::uncached(ExpertId(1), 8)]),
        ];
        // 5us fits one transfer per lane; a global budget would admit one
        // total, but each lane fills independently.
        let mut c = ctx(&look, 8, 5, &cost);
        c.num_gpus = 2;
        let picks = ImpactDrivenPrefetcher::new().plan(&c);
        assert_eq!(picks.len(), 2, "{picks:?}");
        let lanes: Vec<usize> = picks.iter().map(|k| shard_of(k.expert, 2)).collect();
        assert!(lanes.contains(&0) && lanes.contains(&1));
        // Same-shard candidates still respect the one-per-lane cap.
        let look = [
            predicted(1, vec![ExpertTask::uncached(ExpertId(0), 8)]),
            predicted(2, vec![ExpertTask::uncached(ExpertId(2), 8)]),
            predicted(3, vec![ExpertTask::uncached(ExpertId(4), 8)]),
        ];
        let mut c = ctx(&look, 8, 5, &cost);
        c.num_gpus = 2;
        let picks = ImpactDrivenPrefetcher::new().plan(&c);
        assert_eq!(picks.len(), 1, "{picks:?}");
    }

    #[test]
    fn full_affinity_shard_skips_candidate() {
        let cost = UnitCostModel::paper_fig5();
        let look = [
            predicted(1, vec![ExpertTask::uncached(ExpertId(0), 8)]), // shard 0
            predicted(2, vec![ExpertTask::uncached(ExpertId(1), 8)]), // shard 1
        ];
        let shard_free = [0usize, 1];
        let mut c = ctx(&look, 8, 100, &cost);
        c.num_gpus = 2;
        c.shard_free = Some(&shard_free);
        let picks = ImpactDrivenPrefetcher::new().plan(&c);
        assert_eq!(picks, vec![ExpertKey::new(LayerId(2), ExpertId(1))]);
        // No shard space at all: the plan early-exits empty.
        let none = [0usize, 0];
        c.shard_free = Some(&none);
        assert!(ImpactDrivenPrefetcher::new().plan(&c).is_empty());
    }

    #[test]
    fn confidence_overrides_distance_discount() {
        let cost = UnitCostModel::paper_fig5();
        let look = [
            predicted(1, vec![ExpertTask::uncached(ExpertId(0), 8)]),
            predicted(2, vec![ExpertTask::uncached(ExpertId(0), 8)]),
        ];
        // Measured confidence says the farther layer is the *reliable*
        // one: the ordering of nearer_layer_wins_on_equal_shape flips.
        let confidence = [0.1, 1.0];
        let mut c = ctx(&look, 2, 100, &cost);
        c.confidence = Some(&confidence);
        let picks = ImpactDrivenPrefetcher::new().plan(&c);
        assert_eq!(picks.len(), 2);
        assert_eq!(picks[0].layer, LayerId(2));
        assert_eq!(picks[1].layer, LayerId(1));
    }

    #[test]
    fn pruning_keeps_the_best_candidate() {
        let cost = UnitCostModel::paper_fig5();
        // Several candidates, one slot: the upper-bound pruning must
        // still select exactly the highest-gain expert (the heavy, near
        // one) while skipping the simulations of dominated later layers.
        let look = [
            predicted(1, vec![ExpertTask::uncached(ExpertId(0), 8)]),
            predicted(2, vec![ExpertTask::uncached(ExpertId(0), 3)]),
            predicted(3, vec![ExpertTask::uncached(ExpertId(0), 2)]),
        ];
        let picks = ImpactDrivenPrefetcher::new().plan(&ctx(&look, 1, 100, &cost));
        assert_eq!(picks, vec![ExpertKey::new(LayerId(1), ExpertId(0))]);
    }

    #[test]
    fn predictive_delegates_to_impact_ranking() {
        let cost = UnitCostModel::paper_fig5();
        let look = [predicted(
            1,
            vec![
                ExpertTask::uncached(ExpertId(0), 8),
                ExpertTask::uncached(ExpertId(1), 1),
            ],
        )];
        let c = ctx(&look, 2, 100, &cost);
        // With the floor disabled the ranking is exactly impact-driven's.
        assert_eq!(
            PredictivePrefetcher::with_min_gain_per_transfer(0.0).plan(&c),
            ImpactDrivenPrefetcher::new().plan(&c)
        );
    }

    #[test]
    fn gain_floor_withholds_marginal_candidates() {
        let cost = UnitCostModel::paper_fig5(); // transfers take 3us
                                                // One heavy expert per layer; caching either saves one transfer
                                                // (3us). Confidence scales the farther layer's expected gain to
                                                // 1.5us — positive, but below half a transfer.
        let look = [
            predicted(1, vec![ExpertTask::uncached(ExpertId(0), 8)]),
            predicted(2, vec![ExpertTask::uncached(ExpertId(0), 8)]),
        ];
        let confidence = [1.0, 0.5];
        let mut c = ctx(&look, 4, 100, &cost);
        c.confidence = Some(&confidence);
        // No floor: both expected gains are positive, both are issued.
        let permissive = ImpactDrivenPrefetcher::new().plan(&c);
        assert_eq!(permissive.len(), 2, "{permissive:?}");
        // A half-transfer floor keeps the near candidate (3us > 1.5us)
        // but withholds the far one (1.5us is not *above* the floor).
        let gated = ImpactDrivenPrefetcher::new()
            .with_min_gain_per_transfer(0.5)
            .plan(&c);
        assert_eq!(gated, vec![ExpertKey::new(LayerId(1), ExpertId(0))]);
        // A floor above every gain withholds the whole plan.
        let all_gated = ImpactDrivenPrefetcher::new()
            .with_min_gain_per_transfer(2.0)
            .plan(&c);
        assert!(all_gated.is_empty(), "{all_gated:?}");
    }

    #[test]
    #[should_panic(expected = "min gain ratio")]
    fn bad_min_gain_rejected() {
        let _ = ImpactDrivenPrefetcher::new().with_min_gain_per_transfer(-1.0);
    }

    #[test]
    fn prefetcher_names_distinct() {
        let names = [
            NoPrefetcher::new().name().to_owned(),
            NextLayerTopKPrefetcher::new().name().to_owned(),
            ImpactDrivenPrefetcher::new().name().to_owned(),
            PredictivePrefetcher::new().name().to_owned(),
        ];
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }
}
