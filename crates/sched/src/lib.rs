//! # hybrimoe-sched
//!
//! The scheduling layer of HybriMoE: given one MoE layer's activated experts
//! (with their token loads and cache residency), decide which device
//! computes each expert and which experts are moved over PCIe, minimizing
//! the layer makespan `max(CPU_TIME, GPU_TIME)` (paper Eq. 2).
//!
//! * [`HybridScheduler`] — the paper's greedy timeline-filling simulation
//!   (§IV-B) with its three priority rules: GPU computes cached experts
//!   high-load-first, CPU computes uncached experts low-load-first (stealing
//!   cached low-load experts when idle), PCIe transfers uncached experts
//!   high-load-first.
//! * [`baselines`] — policy re-implementations of the three comparison
//!   systems: kTransformers (fixed expert mapping), AdapMoE (GPU-centric
//!   with on-demand loading) and llama.cpp (static layer split).
//! * [`prefetch`] — inter-layer prefetchers, including the paper's
//!   impact-driven simulation-based prefetcher (§IV-C).
//!
//! ## Example
//!
//! ```
//! use hybrimoe_hw::UnitCostModel;
//! use hybrimoe_model::{ExpertId, LayerId};
//! use hybrimoe_sched::{ExpertTask, HybridScheduler, ScheduleContext, Scheduler};
//!
//! // The worked example of the paper's Fig. 5.
//! let tasks = vec![
//!     ExpertTask::uncached(ExpertId(0), 1), // A
//!     ExpertTask::uncached(ExpertId(1), 1), // B
//!     ExpertTask::uncached(ExpertId(2), 3), // C
//!     ExpertTask::cached(ExpertId(3), 4),   // D
//!     ExpertTask::cached(ExpertId(4), 1),   // E
//! ];
//! let cost = UnitCostModel::paper_fig5();
//! let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
//! let plan = HybridScheduler::new().schedule(&ctx);
//! assert_eq!(plan.predicted_makespan.as_micros_f64(), 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
mod context;
mod hybrid;
mod oracle;
mod plan;
pub mod predict;
pub mod prefetch;
mod task;

pub use context::{ScheduleContext, ScheduleQueues, ScheduleScratch};
pub use hybrid::HybridScheduler;
pub use oracle::{oracle_makespan, ORACLE_MAX_TASKS};
pub use plan::{DevicePlacement, PlannedTask, SchedulePlan};
pub use predict::{ExpertPredictor, TransitionPredictor};
pub use prefetch::{
    ImpactDrivenPrefetcher, NextLayerTopKPrefetcher, NoPrefetcher, PredictedLayer,
    PredictivePrefetcher, PrefetchContext, Prefetcher, PREDICTIVE_MIN_GAIN_PER_TRANSFER,
};
pub use task::ExpertTask;

/// A per-layer scheduling policy: maps activated experts to devices.
pub trait Scheduler: std::fmt::Debug + Send + Sync {
    /// A short stable name for reports (e.g. `"hybrimoe"`).
    fn name(&self) -> &str;

    /// Produces the execution plan for one layer.
    fn schedule(&self, ctx: &ScheduleContext<'_>) -> SchedulePlan;

    /// Produces the execution plan for one layer, reusing the caller's
    /// device-queue buffers ([`ScheduleQueues`], typically handed out by
    /// [`ScheduleScratch::begin_layer`]) so the hot serving loop allocates
    /// no per-layer queues. The plan is identical to [`Scheduler::schedule`];
    /// schedulers that do not simulate device queues ignore the buffers.
    fn schedule_with(
        &self,
        ctx: &ScheduleContext<'_>,
        queues: &mut ScheduleQueues,
    ) -> SchedulePlan {
        let _ = queues;
        self.schedule(ctx)
    }
}
