//! The unit of scheduling: one activated expert with its token load.

use hybrimoe_model::ExpertId;
use serde::{Deserialize, Serialize};

/// One activated expert of the layer being scheduled.
///
/// # Example
///
/// ```
/// use hybrimoe_model::ExpertId;
/// use hybrimoe_sched::ExpertTask;
///
/// let t = ExpertTask::cached(ExpertId(3), 4);
/// assert!(t.cached);
/// assert_eq!(t.load, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExpertTask {
    /// The expert within the current layer.
    pub expert: ExpertId,
    /// Number of tokens routed to it (≥ 1 for activated experts).
    pub load: u32,
    /// Whether its weights are resident in the GPU cache at schedule time.
    pub cached: bool,
}

impl ExpertTask {
    /// An activated expert whose weights are on the GPU.
    pub const fn cached(expert: ExpertId, load: u32) -> Self {
        ExpertTask {
            expert,
            load,
            cached: true,
        }
    }

    /// An activated expert whose weights are only in host memory.
    pub const fn uncached(expert: ExpertId, load: u32) -> Self {
        ExpertTask {
            expert,
            load,
            cached: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_flags() {
        let c = ExpertTask::cached(ExpertId(1), 2);
        let u = ExpertTask::uncached(ExpertId(1), 2);
        assert!(c.cached && !u.cached);
        assert_eq!(c.expert, u.expert);
    }
}
