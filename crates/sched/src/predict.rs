//! Cross-layer expert-activation prediction.
//!
//! The trace generator's lookahead is an *oracle*: it routes the live
//! hidden state through the model's real later routers. A deployed system
//! has no such oracle — it must learn how activation flows from one layer
//! to the next out of the routings it has already served (the LayerScope
//! observation: expert choices correlate strongly across adjacent layers,
//! and that correlation is stable enough to learn online). This module is
//! that learned source of [`PredictedLayer`](crate::PredictedLayer)s: an
//! [`ExpertPredictor`] trait plus [`TransitionPredictor`], a statistical
//! predictor keeping one EWMA-updated expert-transition matrix per
//! adjacent layer pair.
//!
//! Two properties matter for prefetching:
//!
//! * **Arbitrary depth, wrapping at the model end.** Chaining `d`
//!   transition matrices predicts `d` layers ahead, and the last-layer →
//!   first-layer pair wraps around: near the end of a forward pass the
//!   predictor keeps proposing prefetches for the *next* pass's early
//!   layers, which the truncating oracle lookahead never does.
//! * **Self-measured confidence.** Every observation also scores the
//!   prediction the matrix would have made one layer earlier (top-k
//!   overlap against the realized routing), so
//!   [`confidence`](ExpertPredictor::confidence) reflects measured
//!   accuracy — the impact-driven prefetcher uses it in place of its
//!   fixed geometric distance discount.

use hybrimoe_model::{top_k, LayerRouting};

/// Geometric per-layer confidence decay reported before enough accuracy
/// samples exist (matches `ImpactDrivenPrefetcher`'s default discount).
const COLD_CONFIDENCE_DECAY: f64 = 0.6;

/// Floor on reported confidence: even a poorly measured distance keeps a
/// small exploration budget instead of suppressing prefetch entirely.
const MIN_CONFIDENCE: f64 = 0.05;

/// Accuracy samples required before measured confidence replaces the cold
/// geometric decay.
const MIN_ACC_SAMPLES: u64 = 16;

/// A source of learned expert-activation forecasts for upcoming layers.
///
/// Implementations observe realized routings in layer order (the engine
/// calls [`observe`](Self::observe) once per layer per step, including
/// across step boundaries) and answer score-vector forecasts for layers
/// `distance` ahead of a given routing.
pub trait ExpertPredictor: std::fmt::Debug + Send + Sync {
    /// A short stable name for reports.
    fn name(&self) -> &str;

    /// Feeds one realized routing. Consecutive calls for adjacent layers
    /// (wrapping from the last layer to the first) train the predictor
    /// and update its accuracy estimate.
    fn observe(&mut self, routing: &LayerRouting);

    /// Predicted per-expert activation scores for the layer `distance`
    /// ahead of `from` (wrapping across the model end). `None` while the
    /// predictor is still cold, when `distance` is zero, or when `from`
    /// carries no activation.
    fn predict(&self, from: &LayerRouting, distance: usize) -> Option<Vec<f32>>;

    /// Confidence in `(0, 1]` for predictions at `distance`, suitable as
    /// the impact-driven prefetcher's per-distance gain discount.
    fn confidence(&self, distance: usize) -> f64;

    /// Measured distance-1 top-k accuracy in `[0, 1]` (`0` before any
    /// sample): the EWMA overlap between the predicted and realized
    /// activated-expert sets.
    fn accuracy(&self) -> f64;

    /// Total routings observed.
    fn observations(&self) -> u64;
}

/// EWMA-learned per-layer-pair expert-transition frequencies.
///
/// For every layer `l` the predictor keeps a row-stochastic matrix `T_l`
/// whose row `i` estimates the activation distribution over the experts
/// of layer `l+1` (wrapping) given expert `i` active at layer `l`. An
/// observation of adjacent routings folds the realized next-layer
/// distribution into the rows of the previously active experts with EWMA
/// weight `alpha`; a prediction `d` layers ahead propagates the current
/// activation distribution through `d` chained matrices.
///
/// # Example
///
/// ```
/// use hybrimoe_model::{LayerId, LayerRouting};
/// use hybrimoe_sched::predict::{ExpertPredictor, TransitionPredictor};
///
/// let mut p = TransitionPredictor::new(2, 4);
/// // Expert 1 at layer 0 always hands over to expert 3 at layer 1.
/// for _ in 0..16 {
///     p.observe(&LayerRouting::from_parts(LayerId(0), 1, vec![0, 1, 0, 0], vec![0.0; 4]));
///     p.observe(&LayerRouting::from_parts(LayerId(1), 1, vec![0, 0, 0, 1], vec![0.0; 4]));
/// }
/// let from = LayerRouting::from_parts(LayerId(0), 1, vec![0, 1, 0, 0], vec![0.0; 4]);
/// let scores = p.predict(&from, 1).expect("warm after a full pass");
/// let best = (0..4).max_by(|a, b| scores[*a].total_cmp(&scores[*b])).unwrap();
/// assert_eq!(best, 3);
/// assert!(p.accuracy() > 0.9);
/// ```
#[derive(Debug, Clone)]
pub struct TransitionPredictor {
    layers: usize,
    experts: usize,
    alpha: f32,
    /// `layers` row-stochastic matrices, flattened `[layer][from][to]`;
    /// matrix `l` maps layer `l` activation to layer `(l + 1) % layers`.
    trans: Vec<f32>,
    /// The last observed routing: `(layer index, activation distribution)`.
    prev: Option<(usize, Vec<f32>)>,
    /// EWMA of distance-1 top-k overlap between prediction and reality.
    acc: f64,
    acc_samples: u64,
    observations: u64,
}

impl TransitionPredictor {
    /// A cold predictor for a model of `layers` layers with `experts`
    /// routed experts per layer; every transition starts uniform.
    ///
    /// # Panics
    ///
    /// Panics if `layers` or `experts` is zero.
    pub fn new(layers: usize, experts: usize) -> TransitionPredictor {
        assert!(layers > 0, "a model needs at least one layer");
        assert!(experts > 0, "a layer needs at least one expert");
        TransitionPredictor {
            layers,
            experts,
            alpha: 0.25,
            trans: vec![1.0 / experts as f32; layers * experts * experts],
            prev: None,
            acc: 0.0,
            acc_samples: 0,
            observations: 0,
        }
    }

    /// Overrides the EWMA update weight.
    ///
    /// # Panics
    ///
    /// Panics unless `alpha` lies in `(0, 1]`.
    pub fn with_alpha(mut self, alpha: f32) -> TransitionPredictor {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA alpha must lie in (0, 1], got {alpha}"
        );
        self.alpha = alpha;
        self
    }

    /// The activation distribution of a routing (`loads` normalized to
    /// sum 1), or `None` when nothing was routed.
    fn distribution(&self, routing: &LayerRouting) -> Option<Vec<f32>> {
        let loads = routing.loads();
        debug_assert_eq!(loads.len(), self.experts, "routing shape mismatch");
        let total: u32 = loads.iter().sum();
        if total == 0 || loads.len() != self.experts {
            return None;
        }
        Some(loads.iter().map(|&l| l as f32 / total as f32).collect())
    }

    /// One matrix application: `out_j = Σ_i v_i · T[layer][i][j]`.
    fn apply(&self, layer: usize, v: &[f32]) -> Vec<f32> {
        let e = self.experts;
        let base = layer * e * e;
        let mut out = vec![0.0f32; e];
        for (i, &w) in v.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let row = &self.trans[base + i * e..base + (i + 1) * e];
            for (o, &t) in out.iter_mut().zip(row.iter()) {
                *o += w * t;
            }
        }
        out
    }
}

impl ExpertPredictor for TransitionPredictor {
    fn name(&self) -> &str {
        "transition-ewma"
    }

    fn observe(&mut self, routing: &LayerRouting) {
        let layer = routing.layer().0 as usize % self.layers;
        let Some(probs) = self.distribution(routing) else {
            return;
        };
        self.observations += 1;
        if let Some((prev_layer, prev_probs)) = self.prev.take() {
            if (prev_layer + 1) % self.layers == layer {
                // Score the prediction the matrix would have made from the
                // previous layer before folding in the new observation.
                let predicted = self.apply(prev_layer, &prev_probs);
                let active: Vec<usize> = probs
                    .iter()
                    .enumerate()
                    .filter(|(_, &p)| p > 0.0)
                    .map(|(i, _)| i)
                    .collect();
                if !active.is_empty() {
                    let hits = top_k(&predicted, active.len())
                        .iter()
                        .filter(|(i, _)| active.contains(i))
                        .count();
                    let overlap = hits as f64 / active.len() as f64;
                    self.acc = if self.acc_samples == 0 {
                        overlap
                    } else {
                        0.9 * self.acc + 0.1 * overlap
                    };
                    self.acc_samples += 1;
                }
                // EWMA the realized distribution into the rows of the
                // previously active experts.
                let e = self.experts;
                let base = prev_layer * e * e;
                for (i, &w) in prev_probs.iter().enumerate() {
                    if w == 0.0 {
                        continue;
                    }
                    let row = &mut self.trans[base + i * e..base + (i + 1) * e];
                    for (t, &p) in row.iter_mut().zip(probs.iter()) {
                        *t = (1.0 - self.alpha) * *t + self.alpha * p;
                    }
                }
            }
        }
        self.prev = Some((layer, probs));
    }

    fn predict(&self, from: &LayerRouting, distance: usize) -> Option<Vec<f32>> {
        if distance == 0 || self.observations < self.layers as u64 {
            return None;
        }
        let mut v = self.distribution(from)?;
        let start = from.layer().0 as usize % self.layers;
        for step in 0..distance {
            v = self.apply((start + step) % self.layers, &v);
        }
        Some(v)
    }

    fn confidence(&self, distance: usize) -> f64 {
        let d = i32::try_from(distance.max(1)).unwrap_or(i32::MAX);
        let per_layer = if self.acc_samples < MIN_ACC_SAMPLES {
            COLD_CONFIDENCE_DECAY
        } else {
            self.acc.clamp(MIN_CONFIDENCE, 1.0)
        };
        per_layer.powi(d).max(MIN_CONFIDENCE)
    }

    fn accuracy(&self) -> f64 {
        if self.acc_samples == 0 {
            0.0
        } else {
            self.acc
        }
    }

    fn observations(&self) -> u64 {
        self.observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrimoe_model::LayerId;

    fn routing(layer: u16, experts: usize, active: &[usize]) -> LayerRouting {
        let mut loads = vec![0u32; experts];
        for &a in active {
            loads[a] = 1;
        }
        LayerRouting::from_parts(
            LayerId(layer),
            active.len() as u32,
            loads,
            vec![0.0; experts],
        )
    }

    /// Feeds `rounds` full passes of a fixed per-layer activation pattern.
    fn train(p: &mut TransitionPredictor, pattern: &[&[usize]], experts: usize, rounds: usize) {
        for _ in 0..rounds {
            for (l, active) in pattern.iter().enumerate() {
                p.observe(&routing(l as u16, experts, active));
            }
        }
    }

    #[test]
    fn learns_a_deterministic_transition() {
        let mut p = TransitionPredictor::new(3, 8);
        train(&mut p, &[&[2], &[5], &[7]], 8, 20);
        let scores = p.predict(&routing(0, 8, &[2]), 1).unwrap();
        let best = top_k(&scores, 1)[0].0;
        assert_eq!(best, 5, "scores {scores:?}");
        // Chained distance-2 prediction lands on layer 2's expert.
        let scores = p.predict(&routing(0, 8, &[2]), 2).unwrap();
        assert_eq!(top_k(&scores, 1)[0].0, 7, "scores {scores:?}");
    }

    #[test]
    fn wraps_across_the_model_end() {
        let mut p = TransitionPredictor::new(2, 4);
        // Passes alternate: layer 1's expert 3 hands over to the *next*
        // pass's layer-0 expert 1.
        train(&mut p, &[&[1], &[3]], 4, 20);
        let scores = p.predict(&routing(1, 4, &[3]), 1).unwrap();
        assert_eq!(top_k(&scores, 1)[0].0, 1, "scores {scores:?}");
    }

    #[test]
    fn cold_predictor_declines_to_predict() {
        let mut p = TransitionPredictor::new(4, 8);
        assert!(p.predict(&routing(0, 8, &[1]), 1).is_none());
        p.observe(&routing(0, 8, &[1]));
        // Still short of one full pass of observations.
        assert!(p.predict(&routing(0, 8, &[1]), 1).is_none());
        assert_eq!(p.observations(), 1);
    }

    #[test]
    fn distance_zero_and_empty_routing_decline() {
        let mut p = TransitionPredictor::new(2, 4);
        train(&mut p, &[&[0], &[1]], 4, 10);
        assert!(p.predict(&routing(0, 4, &[0]), 0).is_none());
        assert!(p.predict(&routing(0, 4, &[]), 1).is_none());
    }

    #[test]
    fn accuracy_tracks_a_learnable_stream() {
        let mut p = TransitionPredictor::new(3, 8);
        assert_eq!(p.accuracy(), 0.0);
        train(&mut p, &[&[0, 1], &[2, 3], &[4, 5]], 8, 40);
        assert!(p.accuracy() > 0.8, "accuracy {}", p.accuracy());
    }

    #[test]
    fn confidence_cold_matches_geometric_decay_then_tracks_accuracy() {
        let mut p = TransitionPredictor::new(2, 4);
        assert!((p.confidence(1) - COLD_CONFIDENCE_DECAY).abs() < 1e-12);
        assert!((p.confidence(2) - COLD_CONFIDENCE_DECAY.powi(2)).abs() < 1e-12);
        train(&mut p, &[&[1], &[3]], 4, 40);
        assert!(
            p.confidence(1) > COLD_CONFIDENCE_DECAY,
            "should exceed cold decay"
        );
        assert!(p.confidence(2) <= p.confidence(1), "monotone in distance");
        assert!(p.confidence(8) >= MIN_CONFIDENCE, "floored");
    }

    #[test]
    fn rows_stay_stochastic_under_updates() {
        let mut p = TransitionPredictor::new(2, 4);
        train(&mut p, &[&[0, 2], &[1, 3]], 4, 25);
        let e = p.experts;
        for l in 0..p.layers {
            for i in 0..e {
                let row_sum: f32 = p.trans[l * e * e + i * e..l * e * e + (i + 1) * e]
                    .iter()
                    .sum();
                assert!(
                    (row_sum - 1.0).abs() < 1e-3,
                    "row ({l},{i}) sums to {row_sum}"
                );
            }
        }
        // Predictions therefore stay distributions too.
        let scores = p.predict(&routing(0, 4, &[0]), 3).unwrap();
        let sum: f32 = scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_rejected() {
        let _ = TransitionPredictor::new(2, 4).with_alpha(0.0);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn zero_layers_rejected() {
        let _ = TransitionPredictor::new(0, 4);
    }
}
