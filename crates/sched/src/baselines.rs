//! Scheduling policies of the paper's three baseline systems.
//!
//! The paper compares HybriMoE against llama.cpp, AdapMoE and kTransformers
//! (§VI-A3). Each baseline is re-implemented here as a [`Scheduler`] on the
//! same substrate, so that every measured difference is attributable to the
//! policy, not the platform.
//!
//! The baselines are **batch-aware**, following Table I of the paper:
//! kTransformers uses CPU expert computation only during *decode* (small
//! batches); during prefill it falls back to on-demand loading. llama.cpp
//! computes CPU-mapped layers on the CPU at decode, but for large prompt
//! batches it streams (dequantized) weights to the GPU for the heavy
//! matmuls, cuBLAS-offload style.

use hybrimoe_hw::{ExpertProfile, GpuId, SimTime};
use hybrimoe_model::shard_of;

use crate::{DevicePlacement, PlannedTask, ScheduleContext, SchedulePlan, Scheduler};

/// Token count at and above which a batch is treated as prefill.
pub const PREFILL_BATCH_THRESHOLD: u32 = 32;

/// Expansion factor of llama.cpp-style streamed weights relative to the
/// packed Q4 experts (weights are dequantized to f16 for cuBLAS: 16 bits
/// vs 5 bits per weight).
pub const STREAM_EXPANSION: f64 = 3.2;

/// kTransformers-style **fixed expert mapping** (Table I: "KTrans").
///
/// Decode: cached (GPU-mapped) experts run on the GPU, highest load first;
/// every uncached expert runs on the CPU, lowest load first — no
/// intra-layer transfers, no dynamic rebalancing (the "unbalanced" timeline
/// of the paper's Fig. 1(b)). Prefill: CPU computation is not used
/// (Table I), so misses are fetched on demand and computed on the GPU.
///
/// # Example
///
/// ```
/// use hybrimoe_hw::UnitCostModel;
/// use hybrimoe_model::{ExpertId, LayerId};
/// use hybrimoe_sched::baselines::FixedMappingScheduler;
/// use hybrimoe_sched::{ExpertTask, ScheduleContext, Scheduler};
///
/// let tasks = vec![
///     ExpertTask::cached(ExpertId(0), 1),
///     ExpertTask::uncached(ExpertId(1), 7),
/// ];
/// let cost = UnitCostModel::paper_fig5();
/// let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
/// let plan = FixedMappingScheduler::new().schedule(&ctx);
/// // Decode-sized batch: the heavy uncached expert pins the CPU.
/// assert_eq!(plan.predicted_makespan.as_micros_f64(), 7.0);
/// ```
#[derive(Debug, Clone)]
pub struct FixedMappingScheduler {
    prefill_threshold: u32,
}

impl FixedMappingScheduler {
    /// Creates the scheduler with the default prefill threshold.
    pub fn new() -> Self {
        FixedMappingScheduler {
            prefill_threshold: PREFILL_BATCH_THRESHOLD,
        }
    }
}

impl Default for FixedMappingScheduler {
    fn default() -> Self {
        FixedMappingScheduler::new()
    }
}

impl Scheduler for FixedMappingScheduler {
    fn name(&self) -> &str {
        "ktransformers"
    }

    fn schedule(&self, ctx: &ScheduleContext<'_>) -> SchedulePlan {
        if ctx.tokens >= self.prefill_threshold {
            // Prefill: GPU-centric with on-demand loading.
            return gpu_centric_plan(ctx, None);
        }
        let mut plan = SchedulePlan::empty(ctx.layer, ctx.tokens);
        plan.shared_on_gpu = ctx.shared_profile.is_some();

        let n = ctx.num_gpus.max(1);
        let mut gpu: Vec<_> = ctx.tasks.iter().filter(|t| t.cached).copied().collect();
        gpu.sort_by_key(|t| (std::cmp::Reverse(t.load), t.expert));
        let mut cpu: Vec<_> = ctx.tasks.iter().filter(|t| !t.cached).copied().collect();
        cpu.sort_by_key(|t| (t.load, t.expert));

        let mut gpu_t = vec![SimTime::ZERO; n];
        if let Some(shared) = ctx.shared_profile {
            gpu_t[0] += ctx.cost.gpu_compute(&shared, ctx.tokens);
        }
        for t in &gpu {
            let g = shard_of(t.expert, n);
            gpu_t[g] += ctx.cost.gpu_compute(&ctx.routed_profile, t.load);
            plan.gpu_order.push(PlannedTask {
                task: *t,
                placement: DevicePlacement::Gpu(GpuId(g as u8)),
            });
        }
        let mut cpu_t = SimTime::ZERO;
        for (i, t) in cpu.iter().enumerate() {
            cpu_t += ctx.cost.cpu_compute(&ctx.routed_profile, t.load, i > 0);
            plan.cpu_order.push(*t);
        }
        let finish = gpu_t.iter().fold(cpu_t, |acc, t| acc.max(*t));
        plan.predicted_makespan = finish.elapsed_since(SimTime::ZERO);
        plan
    }
}

/// AdapMoE-style **GPU-centric scheduling** (Table I: "AdapMoE").
///
/// All experts compute on the GPU in both stages; uncached experts are
/// fetched on demand over PCIe (highest load first so the GPU stalls
/// least). The CPU performs no expert computation — the state of the art
/// for GPU-only MoE offloading, which HybriMoE's hybrid schedule is
/// designed to beat when PCIe is the bottleneck.
#[derive(Debug, Default, Clone)]
pub struct GpuOnlyScheduler {}

impl GpuOnlyScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        GpuOnlyScheduler {}
    }
}

impl Scheduler for GpuOnlyScheduler {
    fn name(&self) -> &str {
        "adapmoe"
    }

    fn schedule(&self, ctx: &ScheduleContext<'_>) -> SchedulePlan {
        gpu_centric_plan(ctx, None)
    }
}

/// llama.cpp-style **static layer split** (Table I: "llama.cpp").
///
/// Whole layers are mapped to a device ahead of time. GPU layers always run
/// on the GPU. CPU layers run on the CPU at decode; for prefill-sized
/// batches the heavy matmuls stream *dequantized* weights to the GPU
/// (cuBLAS offload), paying [`STREAM_EXPANSION`]-times the PCIe bytes of a
/// packed expert — which is why llama.cpp's prefill is the slowest of the
/// four systems while its decode stays competitive.
#[derive(Debug, Clone)]
pub struct StaticSplitScheduler {
    prefill_threshold: u32,
    stream_expansion: f64,
}

impl StaticSplitScheduler {
    /// Creates the scheduler with default threshold and stream expansion.
    pub fn new() -> Self {
        StaticSplitScheduler {
            prefill_threshold: PREFILL_BATCH_THRESHOLD,
            stream_expansion: STREAM_EXPANSION,
        }
    }

    /// Overrides the streamed-weight expansion factor.
    ///
    /// # Panics
    ///
    /// Panics if `expansion < 1.0`.
    pub fn with_stream_expansion(expansion: f64) -> Self {
        assert!(expansion >= 1.0, "expansion must be >= 1, got {expansion}");
        StaticSplitScheduler {
            prefill_threshold: PREFILL_BATCH_THRESHOLD,
            stream_expansion: expansion,
        }
    }
}

impl Default for StaticSplitScheduler {
    fn default() -> Self {
        StaticSplitScheduler::new()
    }
}

impl Scheduler for StaticSplitScheduler {
    fn name(&self) -> &str {
        "llama.cpp"
    }

    fn schedule(&self, ctx: &ScheduleContext<'_>) -> SchedulePlan {
        let gpu_layer = !ctx.tasks.is_empty() && ctx.tasks.iter().all(|t| t.cached);

        if gpu_layer {
            let n = ctx.num_gpus.max(1);
            let mut plan = SchedulePlan::empty(ctx.layer, ctx.tokens);
            plan.shared_on_gpu = ctx.shared_profile.is_some();
            let mut tasks: Vec<_> = ctx.tasks.to_vec();
            tasks.sort_by_key(|t| (std::cmp::Reverse(t.load), t.expert));
            let mut gpu_t = vec![SimTime::ZERO; n];
            if let Some(shared) = ctx.shared_profile {
                gpu_t[0] += ctx.cost.gpu_compute(&shared, ctx.tokens);
            }
            for t in &tasks {
                let g = shard_of(t.expert, n);
                gpu_t[g] += ctx.cost.gpu_compute(&ctx.routed_profile, t.load);
                plan.gpu_order.push(PlannedTask {
                    task: *t,
                    placement: DevicePlacement::Gpu(GpuId(g as u8)),
                });
            }
            let finish = gpu_t.iter().fold(SimTime::ZERO, |acc, t| acc.max(*t));
            plan.predicted_makespan = finish.elapsed_since(SimTime::ZERO);
            return plan;
        }

        if ctx.tokens >= self.prefill_threshold {
            // CPU layer, prefill batch: stream dequantized weights to the
            // GPU for the heavy matmuls. Streamed experts do NOT enter the
            // expert cache (llama.cpp discards them after the matmul), but
            // the schedule-level mechanics are the same as on-demand
            // loading with bigger transfers.
            let streamed = ExpertProfile::new(
                (ctx.routed_profile.bytes() as f64 * self.stream_expansion) as u64,
                ctx.routed_profile.flops_per_token(),
            );
            return gpu_centric_plan(ctx, Some(streamed));
        }

        // CPU layer, decode: everything (including shared experts) on CPU.
        let mut plan = SchedulePlan::empty(ctx.layer, ctx.tokens);
        plan.shared_on_gpu = false;
        let mut tasks: Vec<_> = ctx.tasks.to_vec();
        tasks.sort_by_key(|t| (t.load, t.expert));
        let mut cpu_t = SimTime::ZERO;
        if let Some(shared) = ctx.shared_profile {
            cpu_t += ctx.cost.cpu_compute(&shared, ctx.tokens, false);
        }
        let had_shared = ctx.shared_profile.is_some();
        for (i, t) in tasks.iter().enumerate() {
            let warm = had_shared || i > 0;
            cpu_t += ctx.cost.cpu_compute(&ctx.routed_profile, t.load, warm);
            plan.cpu_order.push(*t);
        }
        plan.predicted_makespan = cpu_t.elapsed_since(SimTime::ZERO);
        plan
    }
}

/// Shared GPU-centric plan: cached experts first, then transferred experts
/// as they arrive over PCIe. `transfer_profile` overrides the transferred
/// bytes (llama.cpp streaming).
fn gpu_centric_plan(
    ctx: &ScheduleContext<'_>,
    transfer_profile: Option<ExpertProfile>,
) -> SchedulePlan {
    let mut plan = SchedulePlan::empty(ctx.layer, ctx.tokens);
    plan.shared_on_gpu = ctx.shared_profile.is_some();
    plan.transfer_profile = transfer_profile;
    let wire_profile = transfer_profile.unwrap_or(ctx.routed_profile);

    let n = ctx.num_gpus.max(1);
    let mut cached: Vec<_> = ctx.tasks.iter().filter(|t| t.cached).copied().collect();
    cached.sort_by_key(|t| (std::cmp::Reverse(t.load), t.expert));
    let mut uncached: Vec<_> = ctx.tasks.iter().filter(|t| !t.cached).copied().collect();
    uncached.sort_by_key(|t| (std::cmp::Reverse(t.load), t.expert));

    let mut gpu_t = vec![SimTime::ZERO; n];
    if let Some(shared) = ctx.shared_profile {
        gpu_t[0] += ctx.cost.gpu_compute(&shared, ctx.tokens);
    }
    for t in &cached {
        let g = shard_of(t.expert, n);
        gpu_t[g] += ctx.cost.gpu_compute(&ctx.routed_profile, t.load);
        plan.gpu_order.push(PlannedTask {
            task: *t,
            placement: DevicePlacement::Gpu(GpuId(g as u8)),
        });
    }
    let mut pcie_t = vec![SimTime::ZERO; n];
    for t in &uncached {
        let g = shard_of(t.expert, n);
        pcie_t[g] += ctx.cost.transfer(&wire_profile);
        plan.pcie_order.push(*t);
        gpu_t[g] = gpu_t[g].max(pcie_t[g]) + ctx.cost.gpu_compute(&ctx.routed_profile, t.load);
        plan.gpu_order.push(PlannedTask {
            task: *t,
            placement: DevicePlacement::GpuAfterTransfer(GpuId(g as u8)),
        });
    }
    let finish = gpu_t.iter().fold(SimTime::ZERO, |acc, t| acc.max(*t));
    plan.predicted_makespan = finish.elapsed_since(SimTime::ZERO);
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExpertTask;
    use hybrimoe_hw::{ExpertProfile, UnitCostModel};
    use hybrimoe_model::{ExpertId, LayerId};

    fn cost() -> UnitCostModel {
        UnitCostModel::paper_fig5()
    }

    fn mixed_tasks() -> Vec<ExpertTask> {
        vec![
            ExpertTask::uncached(ExpertId(0), 1),
            ExpertTask::uncached(ExpertId(1), 1),
            ExpertTask::uncached(ExpertId(2), 3),
            ExpertTask::cached(ExpertId(3), 4),
            ExpertTask::cached(ExpertId(4), 1),
        ]
    }

    #[test]
    fn fixed_mapping_decode_never_transfers() {
        let c = cost();
        let tasks = mixed_tasks();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &c);
        let plan = FixedMappingScheduler::new().schedule(&ctx);
        plan.validate(&tasks).unwrap();
        assert!(plan.pcie_order.is_empty());
        // CPU: loads 1+1+3 = 5; GPU: 2 tasks x 1 = 2 → makespan 5.
        assert_eq!(plan.predicted_makespan.as_micros_f64(), 5.0);
    }

    #[test]
    fn fixed_mapping_prefill_loads_on_demand() {
        let c = cost();
        // Prefill-sized loads (>= 32 tokens).
        let tasks = vec![
            ExpertTask::cached(ExpertId(0), 40),
            ExpertTask::uncached(ExpertId(1), 40),
        ];
        let ctx = ScheduleContext::new(LayerId(0), 40, &tasks, ExpertProfile::new(1, 1), None, &c);
        let plan = FixedMappingScheduler::new().schedule(&ctx);
        plan.validate(&tasks).unwrap();
        assert!(plan.cpu_order.is_empty(), "no CPU compute at prefill");
        assert_eq!(plan.pcie_order.len(), 1);
    }

    #[test]
    fn fixed_mapping_is_beaten_by_hybrid_on_fig5() {
        let c = cost();
        let tasks = mixed_tasks();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &c);
        let fixed = FixedMappingScheduler::new().schedule(&ctx);
        let hybrid = crate::HybridScheduler::new().schedule(&ctx);
        assert!(hybrid.predicted_makespan < fixed.predicted_makespan);
    }

    #[test]
    fn gpu_only_computes_everything_on_gpu() {
        let c = cost();
        let tasks = mixed_tasks();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &c);
        let plan = GpuOnlyScheduler::new().schedule(&ctx);
        plan.validate(&tasks).unwrap();
        assert!(plan.cpu_order.is_empty());
        assert_eq!(plan.pcie_order.len(), 3);
        // Transfers (desc load): C at 3, E0 at 6, E1 at 9; GPU computes
        // cached D, E4 (2 units) then arrivals: 3→4, 6→7, 9→10.
        assert_eq!(plan.predicted_makespan.as_micros_f64(), 10.0);
    }

    #[test]
    fn static_split_gpu_layer_runs_on_gpu() {
        let c = cost();
        let tasks = vec![
            ExpertTask::cached(ExpertId(0), 2),
            ExpertTask::cached(ExpertId(1), 1),
        ];
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &c);
        let plan = StaticSplitScheduler::new().schedule(&ctx);
        plan.validate(&tasks).unwrap();
        assert!(plan.cpu_order.is_empty());
        assert_eq!(plan.predicted_makespan.as_micros_f64(), 2.0);
    }

    #[test]
    fn static_split_cpu_layer_decodes_on_cpu() {
        let c = cost();
        let tasks = mixed_tasks(); // one uncached expert → CPU layer
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &c);
        let plan = StaticSplitScheduler::new().schedule(&ctx);
        plan.validate(&tasks).unwrap();
        assert!(plan.gpu_order.is_empty());
        assert!(plan.pcie_order.is_empty());
        // All loads on CPU: 1+1+3+4+1 = 10.
        assert_eq!(plan.predicted_makespan.as_micros_f64(), 10.0);
    }

    #[test]
    fn static_split_cpu_layer_streams_at_prefill() {
        let c = cost();
        let tasks = vec![
            ExpertTask::uncached(ExpertId(0), 64),
            ExpertTask::cached(ExpertId(1), 64),
        ];
        let ctx = ScheduleContext::new(
            LayerId(0),
            64,
            &tasks,
            ExpertProfile::new(1000, 1),
            None,
            &c,
        );
        let plan = StaticSplitScheduler::new().schedule(&ctx);
        plan.validate(&tasks).unwrap();
        assert!(plan.cpu_order.is_empty());
        // Both experts stream: the layer is not fully resident, and
        // llama.cpp moves the whole layer's matmuls to the GPU.
        assert_eq!(plan.pcie_order.len(), 1);
        let streamed = plan.transfer_profile.expect("stream profile set");
        assert_eq!(streamed.bytes(), 3200);
    }

    #[test]
    fn shared_experts_prefix_gpu_schedulers() {
        let c = cost();
        let tasks = vec![ExpertTask::cached(ExpertId(0), 2)];
        let shared = ExpertProfile::new(1, 1);
        let ctx = ScheduleContext::new(
            LayerId(0),
            2,
            &tasks,
            ExpertProfile::new(1, 1),
            Some(shared),
            &c,
        );
        for plan in [
            FixedMappingScheduler::new().schedule(&ctx),
            GpuOnlyScheduler::new().schedule(&ctx),
            crate::HybridScheduler::without_cpu_steal().schedule(&ctx),
        ] {
            assert!(plan.shared_on_gpu);
            // 1 unit shared + 1 unit expert.
            assert_eq!(plan.predicted_makespan.as_micros_f64(), 2.0);
        }
    }

    #[test]
    #[should_panic(expected = "expansion")]
    fn bad_stream_expansion_rejected() {
        let _ = StaticSplitScheduler::with_stream_expansion(0.5);
    }

    #[test]
    fn scheduler_names_are_distinct() {
        let names = [
            FixedMappingScheduler::new().name().to_owned(),
            GpuOnlyScheduler::new().name().to_owned(),
            StaticSplitScheduler::new().name().to_owned(),
            crate::HybridScheduler::new().name().to_owned(),
        ];
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }
}
