//! The HybriMoE hybrid scheduling algorithm (paper §IV-B).

use hybrimoe_hw::SimTime;

use crate::{DevicePlacement, ExpertTask, PlannedTask, ScheduleContext, SchedulePlan, Scheduler};

/// The paper's greedy timeline-filling scheduler.
///
/// Three priority rules turn the NP-hard mapping problem into queue
/// disciplines (§IV-B):
///
/// * **GPU priority** — compute cached experts, highest load first;
/// * **CPU priority** — compute uncached experts, lowest load first; when
///   its queue drains, steal the lowest-load *cached* expert from the GPU
///   queue;
/// * **Transfer priority** — move uncached experts host→GPU, highest load
///   first; a transferred expert joins the GPU queue (ordered by load) and
///   leaves the CPU queue.
///
/// The scheduler then simulates the three timelines: at every step the
/// candidate operation with the **earliest completion time** is committed
/// (ties: CPU, then GPU, then PCIe), until every activated expert is
/// computed exactly once. The simulation is the schedule: the committed
/// orders become the plan, and the simulated `max(CPU, GPU)` finish time is
/// the predicted makespan (Eq. 2 — transfer tails are excluded because every
/// transfer is consumed by a later GPU compute).
///
/// # Example
///
/// ```
/// use hybrimoe_hw::UnitCostModel;
/// use hybrimoe_model::{ExpertId, LayerId};
/// use hybrimoe_sched::{ExpertTask, HybridScheduler, ScheduleContext, Scheduler};
///
/// let tasks = vec![
///     ExpertTask::uncached(ExpertId(0), 2),
///     ExpertTask::cached(ExpertId(1), 2),
/// ];
/// let cost = UnitCostModel::paper_fig5();
/// let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
/// let plan = HybridScheduler::new().schedule(&ctx);
/// plan.validate(&tasks).unwrap();
/// // CPU takes the uncached expert, GPU the cached one, in parallel.
/// assert_eq!(plan.predicted_makespan.as_micros_f64(), 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct HybridScheduler {
    cpu_steal: bool,
}

impl HybridScheduler {
    /// The full algorithm, including CPU work-stealing of cached experts.
    pub fn new() -> Self {
        HybridScheduler { cpu_steal: true }
    }

    /// A variant without the CPU-steal rule, for ablation studies.
    pub fn without_cpu_steal() -> Self {
        HybridScheduler { cpu_steal: false }
    }
}

impl Default for HybridScheduler {
    fn default() -> Self {
        HybridScheduler::new()
    }
}

/// A task waiting in the GPU queue.
#[derive(Debug, Clone, Copy)]
struct GpuEntry {
    task: ExpertTask,
    /// Transfer completion time for transferred experts.
    ready: Option<SimTime>,
}

/// The candidate op of one device at a simulation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Candidate {
    CpuQueueHead,
    CpuSteal(usize),
    GpuHead,
    PcieHead,
}

impl Scheduler for HybridScheduler {
    fn name(&self) -> &str {
        "hybrimoe"
    }

    fn schedule(&self, ctx: &ScheduleContext<'_>) -> SchedulePlan {
        let mut plan = SchedulePlan::empty(ctx.layer, ctx.tokens);
        plan.shared_on_gpu = ctx.shared_profile.is_some();

        // GPU queue: cached experts, load descending (ties: id ascending).
        let mut gpu_q: Vec<GpuEntry> = ctx
            .tasks
            .iter()
            .filter(|t| t.cached)
            .map(|t| GpuEntry {
                task: *t,
                ready: None,
            })
            .collect();
        gpu_q.sort_by_key(|e| (std::cmp::Reverse(e.task.load), e.task.expert));

        // CPU queue: uncached experts, load ascending.
        let mut cpu_q: Vec<ExpertTask> = ctx.tasks.iter().filter(|t| !t.cached).copied().collect();
        cpu_q.sort_by_key(|t| (t.load, t.expert));

        // PCIe queue: uncached experts, load descending.
        let mut pcie_q: Vec<ExpertTask> = cpu_q.clone();
        pcie_q.sort_by_key(|t| (std::cmp::Reverse(t.load), t.expert));

        let total = ctx.tasks.len();
        let mut computed = 0usize;

        let mut cpu_t = SimTime::ZERO;
        let mut gpu_t = SimTime::ZERO;
        if let Some(shared) = ctx.shared_profile {
            gpu_t += ctx.cost.gpu_compute(&shared, ctx.tokens);
        }
        let mut pcie_t = SimTime::ZERO;
        let mut cpu_warm = false;

        while computed < total {
            let mut best: Option<(SimTime, u8, Candidate)> = None;
            let mut consider = |finish: SimTime, rank: u8, c: Candidate| {
                if best.is_none_or(|(bf, br, _)| (finish, rank) < (bf, br)) {
                    best = Some((finish, rank, c));
                }
            };

            // CPU: uncached head, else steal lowest-load cached entry.
            if let Some(head) = cpu_q.first() {
                let d = ctx
                    .cost
                    .cpu_compute(&ctx.routed_profile, head.load, cpu_warm);
                consider(cpu_t + d, 0, Candidate::CpuQueueHead);
            } else if self.cpu_steal {
                // Steal only experts that are genuinely cached (not in
                // flight over PCIe) — lowest load first.
                let steal = gpu_q
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.ready.is_none())
                    .min_by_key(|(_, e)| (e.task.load, e.task.expert));
                if let Some((idx, entry)) = steal {
                    let d = ctx
                        .cost
                        .cpu_compute(&ctx.routed_profile, entry.task.load, cpu_warm);
                    consider(cpu_t + d, 0, Candidate::CpuSteal(idx));
                }
            }

            // GPU: queue head (highest load), honoring transfer arrival.
            if let Some(head) = gpu_q.first() {
                let start = head.ready.map_or(gpu_t, |r| gpu_t.max(r));
                let d = ctx.cost.gpu_compute(&ctx.routed_profile, head.task.load);
                consider(start + d, 1, Candidate::GpuHead);
            }

            // PCIe: queue head (highest load uncached not yet computed).
            // A transfer is only useful through the GPU compute it feeds,
            // so its effective completion includes that compute: without
            // this, the greedy commits transfers that finish early on the
            // wire but land the expert on the GPU *later* than the CPU
            // would have finished it.
            if let Some(head) = pcie_q.first() {
                let wire = ctx.cost.transfer(&ctx.routed_profile);
                let arrival = pcie_t + wire;
                let compute_start = arrival.max(gpu_t);
                let d = ctx.cost.gpu_compute(&ctx.routed_profile, head.load);
                consider(compute_start + d, 2, Candidate::PcieHead);
            }

            let Some((finish, _, candidate)) = best else {
                // No candidate but tasks remain: impossible by construction
                // (every task sits in at least one queue).
                unreachable!("scheduler ran out of candidates");
            };

            match candidate {
                Candidate::CpuQueueHead => {
                    let task = cpu_q.remove(0);
                    pcie_q.retain(|t| t.expert != task.expert);
                    cpu_t = finish;
                    cpu_warm = true;
                    plan.cpu_order.push(task);
                    computed += 1;
                }
                Candidate::CpuSteal(idx) => {
                    let entry = gpu_q.remove(idx);
                    cpu_t = finish;
                    cpu_warm = true;
                    plan.cpu_order.push(entry.task);
                    computed += 1;
                }
                Candidate::GpuHead => {
                    let entry = gpu_q.remove(0);
                    gpu_t = finish;
                    plan.gpu_order.push(PlannedTask {
                        task: entry.task,
                        placement: if entry.ready.is_some() {
                            DevicePlacement::GpuAfterTransfer
                        } else {
                            DevicePlacement::Gpu
                        },
                    });
                    computed += 1;
                }
                Candidate::PcieHead => {
                    // `finish` includes the downstream GPU compute (the
                    // selection metric); the wire itself frees earlier.
                    let task = pcie_q.remove(0);
                    cpu_q.retain(|t| t.expert != task.expert);
                    let arrival = pcie_t + ctx.cost.transfer(&ctx.routed_profile);
                    pcie_t = arrival;
                    plan.pcie_order.push(task);
                    insert_by_load(
                        &mut gpu_q,
                        GpuEntry {
                            task,
                            ready: Some(arrival),
                        },
                    );
                }
            }
        }

        plan.predicted_makespan = cpu_t.max(gpu_t).elapsed_since(SimTime::ZERO);
        plan
    }
}

/// Inserts into the GPU queue keeping load-descending order (stable: equal
/// loads keep arrival order, ties broken after existing entries).
fn insert_by_load(gpu_q: &mut Vec<GpuEntry>, entry: GpuEntry) {
    let pos = gpu_q
        .iter()
        .position(|e| e.task.load < entry.task.load)
        .unwrap_or(gpu_q.len());
    gpu_q.insert(pos, entry);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrimoe_hw::{PlanExecutor, UnitCostModel};
    use hybrimoe_model::{ExpertId, LayerId};

    fn us(n: f64) -> f64 {
        n
    }

    fn fig5_tasks() -> Vec<ExpertTask> {
        vec![
            ExpertTask::uncached(ExpertId(0), 1), // A
            ExpertTask::uncached(ExpertId(1), 1), // B
            ExpertTask::uncached(ExpertId(2), 3), // C
            ExpertTask::cached(ExpertId(3), 4),   // D
            ExpertTask::cached(ExpertId(4), 1),   // E
        ]
    }

    #[test]
    fn fig5_golden_schedule() {
        // Paper Fig. 5: makespan 4 time units; C is loaded to the GPU
        // instead of being computed on the CPU; A and B run on the CPU.
        let tasks = fig5_tasks();
        let cost = UnitCostModel::paper_fig5();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let plan = HybridScheduler::new().schedule(&ctx);
        plan.validate(&tasks).unwrap();
        assert_eq!(plan.predicted_makespan.as_micros_f64(), us(4.0));
        let transferred: Vec<ExpertId> = plan.transferred_experts().collect();
        assert_eq!(transferred, vec![ExpertId(2)]);
        let cpu: Vec<ExpertId> = plan.cpu_experts().collect();
        assert!(cpu.contains(&ExpertId(0)));
        assert!(cpu.contains(&ExpertId(1)));
        // D stays on the GPU.
        assert!(plan.gpu_experts().any(|e| e == ExpertId(3)));
    }

    #[test]
    fn fig5_prediction_matches_executor() {
        let tasks = fig5_tasks();
        let cost = UnitCostModel::paper_fig5();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let plan = HybridScheduler::new().schedule(&ctx);
        let executed = PlanExecutor::new().execute(plan.to_ops(&ctx)).unwrap();
        assert_eq!(executed.makespan, plan.predicted_makespan);
    }

    #[test]
    fn all_cached_goes_to_gpu_with_steals() {
        let tasks = vec![
            ExpertTask::cached(ExpertId(0), 3),
            ExpertTask::cached(ExpertId(1), 2),
            ExpertTask::cached(ExpertId(2), 1),
        ];
        let cost = UnitCostModel::paper_fig5();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let plan = HybridScheduler::new().schedule(&ctx);
        plan.validate(&tasks).unwrap();
        // GPU takes 1 unit per task; the CPU steals the lowest-load expert
        // (1 unit on CPU) in parallel: makespan 2 beats GPU-only's 3.
        assert_eq!(plan.predicted_makespan.as_micros_f64(), us(2.0));
        assert_eq!(plan.cpu_order.len(), 1);
        assert_eq!(plan.cpu_order[0].expert, ExpertId(2));
    }

    #[test]
    fn without_steal_leaves_cached_on_gpu() {
        let tasks = vec![
            ExpertTask::cached(ExpertId(0), 3),
            ExpertTask::cached(ExpertId(1), 1),
        ];
        let cost = UnitCostModel::paper_fig5();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let plan = HybridScheduler::without_cpu_steal().schedule(&ctx);
        plan.validate(&tasks).unwrap();
        assert!(plan.cpu_order.is_empty());
        assert_eq!(plan.gpu_order.len(), 2);
    }

    #[test]
    fn all_uncached_splits_between_cpu_and_transfer() {
        // Six uncached experts of load 2: CPU computes the cheap ones while
        // PCIe feeds the GPU.
        let tasks: Vec<ExpertTask> = (0..6)
            .map(|i| ExpertTask::uncached(ExpertId(i), 2))
            .collect();
        let cost = UnitCostModel::paper_fig5();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let plan = HybridScheduler::new().schedule(&ctx);
        plan.validate(&tasks).unwrap();
        assert!(!plan.cpu_order.is_empty(), "CPU must take some work");
        assert!(!plan.pcie_order.is_empty(), "PCIe must take some work");
        // Pure CPU would need 12 units; pure transfer+GPU 3+6*1s staggered.
        assert!(plan.predicted_makespan.as_micros_f64() < us(12.0));
    }

    #[test]
    fn gpu_orders_by_load_descending() {
        let tasks = vec![
            ExpertTask::cached(ExpertId(0), 1),
            ExpertTask::cached(ExpertId(1), 5),
            ExpertTask::cached(ExpertId(2), 3),
        ];
        let cost = UnitCostModel::paper_fig5();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let plan = HybridScheduler::without_cpu_steal().schedule(&ctx);
        let gpu: Vec<ExpertId> = plan.gpu_experts().collect();
        assert_eq!(gpu, vec![ExpertId(1), ExpertId(2), ExpertId(0)]);
    }

    #[test]
    fn cpu_orders_by_load_ascending() {
        // Make transfers prohibitively slow so everything lands on the CPU.
        let cost = UnitCostModel {
            cpu_per_load: hybrimoe_hw::SimDuration::from_micros(1),
            gpu_per_task: hybrimoe_hw::SimDuration::from_micros(1),
            transfer_per_expert: hybrimoe_hw::SimDuration::from_micros(1_000),
        };
        let tasks = vec![
            ExpertTask::uncached(ExpertId(0), 5),
            ExpertTask::uncached(ExpertId(1), 1),
            ExpertTask::uncached(ExpertId(2), 3),
        ];
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let plan = HybridScheduler::new().schedule(&ctx);
        plan.validate(&tasks).unwrap();
        let cpu: Vec<ExpertId> = plan.cpu_experts().collect();
        assert_eq!(cpu, vec![ExpertId(1), ExpertId(2), ExpertId(0)]);
        assert!(plan.pcie_order.is_empty());
    }

    #[test]
    fn empty_task_set_gives_empty_plan() {
        let cost = UnitCostModel::paper_fig5();
        let ctx = ScheduleContext::for_test(LayerId(0), &[], &cost);
        let plan = HybridScheduler::new().schedule(&ctx);
        assert_eq!(plan.predicted_makespan, hybrimoe_hw::SimDuration::ZERO);
        assert!(plan.cpu_order.is_empty() && plan.gpu_order.is_empty());
    }

    #[test]
    fn insert_by_load_keeps_descending_order() {
        let mk = |load| GpuEntry {
            task: ExpertTask::cached(ExpertId(load as u16), load),
            ready: None,
        };
        let mut q = vec![mk(5), mk(3), mk(1)];
        insert_by_load(&mut q, mk(4));
        let loads: Vec<u32> = q.iter().map(|e| e.task.load).collect();
        assert_eq!(loads, vec![5, 4, 3, 1]);
        insert_by_load(&mut q, mk(9));
        assert_eq!(q[0].task.load, 9);
        insert_by_load(&mut q, mk(0));
        assert_eq!(q.last().unwrap().task.load, 0);
    }

    #[test]
    fn hybrid_beats_or_matches_fixed_split_on_random_inputs() {
        // The greedy schedule must never be worse than either trivial
        // policy: everything-on-CPU or cached-on-GPU/uncached-on-CPU.
        let cost = UnitCostModel::paper_fig5();
        let mut seed = 12345u64;
        for _ in 0..200 {
            let n = 1 + (seed % 7) as usize;
            let mut tasks = Vec::new();
            for i in 0..n {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                let load = 1 + (seed >> 33) % 6;
                let cached = (seed >> 17).is_multiple_of(2);
                tasks.push(ExpertTask {
                    expert: ExpertId(i as u16),
                    load: load as u32,
                    cached,
                });
            }
            let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
            let plan = HybridScheduler::new().schedule(&ctx);
            plan.validate(&tasks).unwrap();

            // Fixed mapping: cached → GPU sequentially, uncached → CPU.
            let gpu_time: f64 = tasks.iter().filter(|t| t.cached).count() as f64;
            let cpu_time: f64 = tasks
                .iter()
                .filter(|t| !t.cached)
                .map(|t| t.load as f64)
                .sum();
            let fixed = gpu_time.max(cpu_time);
            assert!(
                plan.predicted_makespan.as_micros_f64() <= fixed + 1e-9,
                "hybrid {} > fixed {} for {:?}",
                plan.predicted_makespan.as_micros_f64(),
                fixed,
                tasks
            );
        }
    }
}
