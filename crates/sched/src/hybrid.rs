//! The HybriMoE hybrid scheduling algorithm (paper §IV-B), generalized to
//! `N` GPU shards.

use hybrimoe_hw::{GpuId, SimTime};
use hybrimoe_model::shard_of;

use crate::{
    DevicePlacement, ExpertTask, PlannedTask, ScheduleContext, SchedulePlan, ScheduleQueues,
    Scheduler,
};

/// The paper's greedy timeline-filling scheduler.
///
/// Three priority rules turn the NP-hard mapping problem into queue
/// disciplines (§IV-B):
///
/// * **GPU priority** — each GPU computes its shard's cached experts,
///   highest load first;
/// * **CPU priority** — compute uncached experts, lowest load first; when
///   its queue drains, steal the lowest-load *cached* expert from any GPU
///   queue;
/// * **Transfer priority** — each PCIe lane moves its shard's uncached
///   experts host→GPU, highest load first; a transferred expert joins its
///   GPU's queue (ordered by load) and leaves the CPU queue.
///
/// The scheduler then simulates all device timelines (one CPU, `N` GPUs,
/// `N` PCIe lanes): at every step the candidate operation with the
/// **earliest completion time** is committed (ties: CPU, then GPUs in shard
/// order, then PCIe lanes in shard order), until every activated expert is
/// computed exactly once. The simulation is the schedule: the committed
/// orders become the plan, and the simulated `max(CPU, GPU_0..GPU_{N-1})`
/// finish time is the predicted makespan (Eq. 2, with the max taken over
/// every compute device — transfer tails are excluded because every
/// transfer is consumed by a later GPU compute). With `num_gpus = 1` the
/// algorithm is exactly the paper's single-GPU schedule.
///
/// Expert residency follows the static affinity map
/// ([`shard_of`](hybrimoe_model::shard_of)): a cached expert lives on its
/// affinity shard and a transfer lands there, so per-GPU caches never hold
/// duplicate copies.
///
/// # Example
///
/// ```
/// use hybrimoe_hw::UnitCostModel;
/// use hybrimoe_model::{ExpertId, LayerId};
/// use hybrimoe_sched::{ExpertTask, HybridScheduler, ScheduleContext, Scheduler};
///
/// let tasks = vec![
///     ExpertTask::uncached(ExpertId(0), 2),
///     ExpertTask::cached(ExpertId(1), 2),
/// ];
/// let cost = UnitCostModel::paper_fig5();
/// let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
/// let plan = HybridScheduler::new().schedule(&ctx);
/// plan.validate(&tasks).unwrap();
/// // CPU takes the uncached expert, GPU the cached one, in parallel.
/// assert_eq!(plan.predicted_makespan.as_micros_f64(), 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct HybridScheduler {
    cpu_steal: bool,
}

impl HybridScheduler {
    /// The full algorithm, including CPU work-stealing of cached experts.
    pub fn new() -> Self {
        HybridScheduler { cpu_steal: true }
    }

    /// A variant without the CPU-steal rule, for ablation studies.
    pub fn without_cpu_steal() -> Self {
        HybridScheduler { cpu_steal: false }
    }
}

impl Default for HybridScheduler {
    fn default() -> Self {
        HybridScheduler::new()
    }
}

/// A task waiting in one GPU's queue.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GpuEntry {
    task: ExpertTask,
    /// Transfer completion time for transferred experts.
    ready: Option<SimTime>,
}

/// The candidate op of one device at a simulation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Candidate {
    CpuQueueHead,
    /// Steal entry `idx` from shard `g`'s GPU queue.
    CpuSteal(usize, usize),
    /// Compute shard `g`'s queue head.
    GpuHead(usize),
    /// Transfer shard `g`'s lane head.
    PcieHead(usize),
}

impl Scheduler for HybridScheduler {
    fn name(&self) -> &str {
        "hybrimoe"
    }

    fn schedule(&self, ctx: &ScheduleContext<'_>) -> SchedulePlan {
        self.schedule_with(ctx, &mut ScheduleQueues::default())
    }

    fn schedule_with(
        &self,
        ctx: &ScheduleContext<'_>,
        queues: &mut ScheduleQueues,
    ) -> SchedulePlan {
        let n = ctx.num_gpus.max(1);
        let mut plan = SchedulePlan::empty(ctx.layer, ctx.tokens);
        plan.shared_on_gpu = ctx.shared_profile.is_some();

        // Reset the caller's reusable queues (capacity retained across
        // layers; every sort key below is unique thanks to the expert-id
        // tie-break, so the unstable sorts are fully deterministic).
        let ScheduleQueues {
            gpu: gpu_q,
            cpu: cpu_q,
            pcie: pcie_q,
        } = queues;
        gpu_q.truncate(n);
        gpu_q.resize_with(n, Vec::new);
        pcie_q.truncate(n);
        pcie_q.resize_with(n, Vec::new);
        for q in gpu_q.iter_mut() {
            q.clear();
        }
        for q in pcie_q.iter_mut() {
            q.clear();
        }
        cpu_q.clear();

        // Per-shard GPU queues: cached experts of the shard, load
        // descending (ties: id ascending).
        for t in ctx.tasks.iter().filter(|t| t.cached) {
            gpu_q[shard_of(t.expert, n)].push(GpuEntry {
                task: *t,
                ready: None,
            });
        }
        for q in gpu_q.iter_mut() {
            q.sort_unstable_by_key(|e| (std::cmp::Reverse(e.task.load), e.task.expert));
        }

        // CPU queue: uncached experts, load ascending.
        cpu_q.extend(ctx.tasks.iter().filter(|t| !t.cached).copied());
        cpu_q.sort_unstable_by_key(|t| (t.load, t.expert));

        // Per-lane PCIe queues: the shard's uncached experts, load
        // descending.
        for t in cpu_q.iter() {
            pcie_q[shard_of(t.expert, n)].push(*t);
        }
        for q in pcie_q.iter_mut() {
            q.sort_unstable_by_key(|t| (std::cmp::Reverse(t.load), t.expert));
        }

        let total = ctx.tasks.len();
        let mut computed = 0usize;

        let mut cpu_t = SimTime::ZERO;
        let mut gpu_t = vec![SimTime::ZERO; n];
        if let Some(shared) = ctx.shared_profile {
            // Shared experts are pinned on GPU 0 (the paper's single GPU).
            gpu_t[0] += ctx.cost.gpu_compute(&shared, ctx.tokens);
        }
        let mut pcie_t = vec![SimTime::ZERO; n];
        let mut cpu_warm = false;

        while computed < total {
            // Rank is (class, shard): class 0 = CPU, 1 = GPU, 2 = PCIe;
            // with one GPU this is exactly the paper's CPU/GPU/PCIe
            // tie-break.
            let mut best: Option<(SimTime, (u8, usize), Candidate)> = None;
            let mut consider = |finish: SimTime, rank: (u8, usize), c: Candidate| {
                if best.is_none_or(|(bf, br, _)| (finish, rank) < (bf, br)) {
                    best = Some((finish, rank, c));
                }
            };

            // CPU: uncached head, else steal the lowest-load cached entry
            // across every shard.
            if let Some(head) = cpu_q.first() {
                let d = ctx
                    .cost
                    .cpu_compute(&ctx.routed_profile, head.load, cpu_warm);
                consider(cpu_t + d, (0, 0), Candidate::CpuQueueHead);
            } else if self.cpu_steal {
                // Steal only experts that are genuinely cached (not in
                // flight over PCIe) — lowest load first, across all shards.
                let steal = gpu_q
                    .iter()
                    .enumerate()
                    .flat_map(|(g, q)| q.iter().enumerate().map(move |(i, e)| (g, i, e)))
                    .filter(|(_, _, e)| e.ready.is_none())
                    .min_by_key(|(g, _, e)| (e.task.load, e.task.expert, *g));
                if let Some((g, idx, entry)) = steal {
                    let d = ctx
                        .cost
                        .cpu_compute(&ctx.routed_profile, entry.task.load, cpu_warm);
                    consider(cpu_t + d, (0, 0), Candidate::CpuSteal(g, idx));
                }
            }

            // Each GPU: queue head (highest load), honoring transfer
            // arrival.
            for (g, q) in gpu_q.iter().enumerate() {
                if let Some(head) = q.first() {
                    let start = head.ready.map_or(gpu_t[g], |r| gpu_t[g].max(r));
                    let d = ctx.cost.gpu_compute(&ctx.routed_profile, head.task.load);
                    consider(start + d, (1, g), Candidate::GpuHead(g));
                }
            }

            // Each PCIe lane: queue head (highest-load uncached of the
            // shard not yet computed). A transfer is only useful through
            // the GPU compute it feeds, so its effective completion
            // includes that compute: without this, the greedy commits
            // transfers that finish early on the wire but land the expert
            // on the GPU *later* than the CPU would have finished it.
            for (g, q) in pcie_q.iter().enumerate() {
                if let Some(head) = q.first() {
                    let wire = ctx.cost.transfer(&ctx.routed_profile);
                    let arrival = pcie_t[g] + wire;
                    let compute_start = arrival.max(gpu_t[g]);
                    let d = ctx.cost.gpu_compute(&ctx.routed_profile, head.load);
                    consider(compute_start + d, (2, g), Candidate::PcieHead(g));
                }
            }

            let Some((finish, _, candidate)) = best else {
                // No candidate but tasks remain: impossible by construction
                // (every task sits in at least one queue).
                unreachable!("scheduler ran out of candidates");
            };

            match candidate {
                Candidate::CpuQueueHead => {
                    let task = cpu_q.remove(0);
                    pcie_q[shard_of(task.expert, n)].retain(|t| t.expert != task.expert);
                    cpu_t = finish;
                    cpu_warm = true;
                    plan.cpu_order.push(task);
                    computed += 1;
                }
                Candidate::CpuSteal(g, idx) => {
                    let entry = gpu_q[g].remove(idx);
                    cpu_t = finish;
                    cpu_warm = true;
                    plan.cpu_order.push(entry.task);
                    computed += 1;
                }
                Candidate::GpuHead(g) => {
                    let entry = gpu_q[g].remove(0);
                    gpu_t[g] = finish;
                    plan.gpu_order.push(PlannedTask {
                        task: entry.task,
                        placement: if entry.ready.is_some() {
                            DevicePlacement::GpuAfterTransfer(GpuId(g as u8))
                        } else {
                            DevicePlacement::Gpu(GpuId(g as u8))
                        },
                    });
                    computed += 1;
                }
                Candidate::PcieHead(g) => {
                    // `finish` includes the downstream GPU compute (the
                    // selection metric); the wire itself frees earlier.
                    let task = pcie_q[g].remove(0);
                    cpu_q.retain(|t| t.expert != task.expert);
                    let arrival = pcie_t[g] + ctx.cost.transfer(&ctx.routed_profile);
                    pcie_t[g] = arrival;
                    plan.pcie_order.push(task);
                    insert_by_load(
                        &mut gpu_q[g],
                        GpuEntry {
                            task,
                            ready: Some(arrival),
                        },
                    );
                }
            }
        }

        // Makespan = max over all compute timelines (Eq. 2 generalized).
        let finish = gpu_t.iter().fold(cpu_t, |acc, t| acc.max(*t));
        plan.predicted_makespan = finish.elapsed_since(SimTime::ZERO);
        plan
    }
}

/// Inserts into a GPU queue keeping load-descending order (stable: equal
/// loads keep arrival order, ties broken after existing entries).
fn insert_by_load(gpu_q: &mut Vec<GpuEntry>, entry: GpuEntry) {
    let pos = gpu_q
        .iter()
        .position(|e| e.task.load < entry.task.load)
        .unwrap_or(gpu_q.len());
    gpu_q.insert(pos, entry);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrimoe_hw::{PlanExecutor, UnitCostModel};
    use hybrimoe_model::{ExpertId, LayerId};

    fn us(n: f64) -> f64 {
        n
    }

    fn fig5_tasks() -> Vec<ExpertTask> {
        vec![
            ExpertTask::uncached(ExpertId(0), 1), // A
            ExpertTask::uncached(ExpertId(1), 1), // B
            ExpertTask::uncached(ExpertId(2), 3), // C
            ExpertTask::cached(ExpertId(3), 4),   // D
            ExpertTask::cached(ExpertId(4), 1),   // E
        ]
    }

    #[test]
    fn fig5_golden_schedule() {
        // Paper Fig. 5: makespan 4 time units; C is loaded to the GPU
        // instead of being computed on the CPU; A and B run on the CPU.
        let tasks = fig5_tasks();
        let cost = UnitCostModel::paper_fig5();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let plan = HybridScheduler::new().schedule(&ctx);
        plan.validate(&tasks).unwrap();
        assert_eq!(plan.predicted_makespan.as_micros_f64(), us(4.0));
        let transferred: Vec<ExpertId> = plan.transferred_experts().collect();
        assert_eq!(transferred, vec![ExpertId(2)]);
        let cpu: Vec<ExpertId> = plan.cpu_experts().collect();
        assert!(cpu.contains(&ExpertId(0)));
        assert!(cpu.contains(&ExpertId(1)));
        // D stays on the GPU.
        assert!(plan.gpu_experts().any(|e| e == ExpertId(3)));
    }

    #[test]
    fn fig5_prediction_matches_executor() {
        let tasks = fig5_tasks();
        let cost = UnitCostModel::paper_fig5();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let plan = HybridScheduler::new().schedule(&ctx);
        let executed = PlanExecutor::new().execute(plan.to_ops(&ctx)).unwrap();
        assert_eq!(executed.makespan, plan.predicted_makespan);
    }

    #[test]
    fn all_cached_goes_to_gpu_with_steals() {
        let tasks = vec![
            ExpertTask::cached(ExpertId(0), 3),
            ExpertTask::cached(ExpertId(1), 2),
            ExpertTask::cached(ExpertId(2), 1),
        ];
        let cost = UnitCostModel::paper_fig5();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let plan = HybridScheduler::new().schedule(&ctx);
        plan.validate(&tasks).unwrap();
        // GPU takes 1 unit per task; the CPU steals the lowest-load expert
        // (1 unit on CPU) in parallel: makespan 2 beats GPU-only's 3.
        assert_eq!(plan.predicted_makespan.as_micros_f64(), us(2.0));
        assert_eq!(plan.cpu_order.len(), 1);
        assert_eq!(plan.cpu_order[0].expert, ExpertId(2));
    }

    #[test]
    fn without_steal_leaves_cached_on_gpu() {
        let tasks = vec![
            ExpertTask::cached(ExpertId(0), 3),
            ExpertTask::cached(ExpertId(1), 1),
        ];
        let cost = UnitCostModel::paper_fig5();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let plan = HybridScheduler::without_cpu_steal().schedule(&ctx);
        plan.validate(&tasks).unwrap();
        assert!(plan.cpu_order.is_empty());
        assert_eq!(plan.gpu_order.len(), 2);
    }

    #[test]
    fn all_uncached_splits_between_cpu_and_transfer() {
        // Six uncached experts of load 2: CPU computes the cheap ones while
        // PCIe feeds the GPU.
        let tasks: Vec<ExpertTask> = (0..6)
            .map(|i| ExpertTask::uncached(ExpertId(i), 2))
            .collect();
        let cost = UnitCostModel::paper_fig5();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let plan = HybridScheduler::new().schedule(&ctx);
        plan.validate(&tasks).unwrap();
        assert!(!plan.cpu_order.is_empty(), "CPU must take some work");
        assert!(!plan.pcie_order.is_empty(), "PCIe must take some work");
        // Pure CPU would need 12 units; pure transfer+GPU 3+6*1s staggered.
        assert!(plan.predicted_makespan.as_micros_f64() < us(12.0));
    }

    #[test]
    fn gpu_orders_by_load_descending() {
        let tasks = vec![
            ExpertTask::cached(ExpertId(0), 1),
            ExpertTask::cached(ExpertId(1), 5),
            ExpertTask::cached(ExpertId(2), 3),
        ];
        let cost = UnitCostModel::paper_fig5();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let plan = HybridScheduler::without_cpu_steal().schedule(&ctx);
        let gpu: Vec<ExpertId> = plan.gpu_experts().collect();
        assert_eq!(gpu, vec![ExpertId(1), ExpertId(2), ExpertId(0)]);
    }

    #[test]
    fn cpu_orders_by_load_ascending() {
        // Make transfers prohibitively slow so everything lands on the CPU.
        let cost = UnitCostModel {
            cpu_per_load: hybrimoe_hw::SimDuration::from_micros(1),
            gpu_per_task: hybrimoe_hw::SimDuration::from_micros(1),
            transfer_per_expert: hybrimoe_hw::SimDuration::from_micros(1_000),
        };
        let tasks = vec![
            ExpertTask::uncached(ExpertId(0), 5),
            ExpertTask::uncached(ExpertId(1), 1),
            ExpertTask::uncached(ExpertId(2), 3),
        ];
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let plan = HybridScheduler::new().schedule(&ctx);
        plan.validate(&tasks).unwrap();
        let cpu: Vec<ExpertId> = plan.cpu_experts().collect();
        assert_eq!(cpu, vec![ExpertId(1), ExpertId(2), ExpertId(0)]);
        assert!(plan.pcie_order.is_empty());
    }

    #[test]
    fn empty_task_set_gives_empty_plan() {
        let cost = UnitCostModel::paper_fig5();
        let ctx = ScheduleContext::for_test(LayerId(0), &[], &cost);
        let plan = HybridScheduler::new().schedule(&ctx);
        assert_eq!(plan.predicted_makespan, hybrimoe_hw::SimDuration::ZERO);
        assert!(plan.cpu_order.is_empty() && plan.gpu_order.is_empty());
    }

    #[test]
    fn insert_by_load_keeps_descending_order() {
        let mk = |load| GpuEntry {
            task: ExpertTask::cached(ExpertId(load as u16), load),
            ready: None,
        };
        let mut q = vec![mk(5), mk(3), mk(1)];
        insert_by_load(&mut q, mk(4));
        let loads: Vec<u32> = q.iter().map(|e| e.task.load).collect();
        assert_eq!(loads, vec![5, 4, 3, 1]);
        insert_by_load(&mut q, mk(9));
        assert_eq!(q[0].task.load, 9);
        insert_by_load(&mut q, mk(0));
        assert_eq!(q.last().unwrap().task.load, 0);
    }

    #[test]
    fn hybrid_beats_or_matches_fixed_split_on_random_inputs() {
        // The greedy schedule must never be worse than either trivial
        // policy: everything-on-CPU or cached-on-GPU/uncached-on-CPU.
        let cost = UnitCostModel::paper_fig5();
        let mut seed = 12345u64;
        for _ in 0..200 {
            let n = 1 + (seed % 7) as usize;
            let mut tasks = Vec::new();
            for i in 0..n {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                let load = 1 + (seed >> 33) % 6;
                let cached = (seed >> 17).is_multiple_of(2);
                tasks.push(ExpertTask {
                    expert: ExpertId(i as u16),
                    load: load as u32,
                    cached,
                });
            }
            let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
            let plan = HybridScheduler::new().schedule(&ctx);
            plan.validate(&tasks).unwrap();

            // Fixed mapping: cached → GPU sequentially, uncached → CPU.
            let gpu_time: f64 = tasks.iter().filter(|t| t.cached).count() as f64;
            let cpu_time: f64 = tasks
                .iter()
                .filter(|t| !t.cached)
                .map(|t| t.load as f64)
                .sum();
            let fixed = gpu_time.max(cpu_time);
            assert!(
                plan.predicted_makespan.as_micros_f64() <= fixed + 1e-9,
                "hybrid {} > fixed {} for {:?}",
                plan.predicted_makespan.as_micros_f64(),
                fixed,
                tasks
            );
        }
    }

    #[test]
    fn two_gpus_place_experts_on_their_affinity_shard() {
        let tasks = vec![
            ExpertTask::cached(ExpertId(0), 4), // shard 0
            ExpertTask::cached(ExpertId(1), 4), // shard 1
            ExpertTask::cached(ExpertId(2), 4), // shard 0
            ExpertTask::cached(ExpertId(3), 4), // shard 1
        ];
        let cost = UnitCostModel::paper_fig5();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost).with_gpus(2);
        let plan = HybridScheduler::without_cpu_steal().schedule(&ctx);
        plan.validate(&tasks).unwrap();
        for g in &plan.gpu_order {
            let expect = shard_of(g.task.expert, 2) as u8;
            assert_eq!(g.placement.gpu(), Some(GpuId(expect)), "{:?}", g.task);
        }
        // Two GPUs halve the serial cached chain: 2 units, not 4.
        assert_eq!(plan.predicted_makespan.as_micros_f64(), us(2.0));
    }

    #[test]
    fn more_gpus_never_slow_a_cached_layer() {
        let tasks: Vec<ExpertTask> = (0..8).map(|i| ExpertTask::cached(ExpertId(i), 2)).collect();
        let cost = UnitCostModel::paper_fig5();
        let mut last = f64::INFINITY;
        for n in [1usize, 2, 4] {
            let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost).with_gpus(n);
            let plan = HybridScheduler::without_cpu_steal().schedule(&ctx);
            plan.validate(&tasks).unwrap();
            let m = plan.predicted_makespan.as_micros_f64();
            assert!(m <= last, "N={n}: {m} > {last}");
            last = m;
        }
    }

    #[test]
    fn multi_gpu_prediction_matches_executor() {
        let tasks = fig5_tasks();
        let cost = UnitCostModel::paper_fig5();
        for n in [1usize, 2, 3, 4] {
            let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost).with_gpus(n);
            let plan = HybridScheduler::new().schedule(&ctx);
            plan.validate(&tasks).unwrap();
            let executed = PlanExecutor::new()
                .with_gpus(n)
                .execute(plan.to_ops(&ctx))
                .unwrap();
            assert_eq!(executed.makespan, plan.predicted_makespan, "N={n}");
        }
    }

    #[test]
    fn schedule_with_reused_queues_is_identical() {
        // One ScheduleQueues driven across layers and GPU counts (growing
        // and shrinking the per-shard vectors) must give the same plans as
        // fresh per-call queues.
        let cost = UnitCostModel::paper_fig5();
        let mut queues = ScheduleQueues::new();
        for n in [1usize, 3, 2, 1, 4] {
            let tasks = fig5_tasks();
            let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost).with_gpus(n);
            let fresh = HybridScheduler::new().schedule(&ctx);
            let reused = HybridScheduler::new().schedule_with(&ctx, &mut queues);
            assert_eq!(fresh, reused, "N={n}");
        }
    }

    #[test]
    fn single_gpu_context_matches_default_context() {
        // with_gpus(1) must be the identity: same plan, same placements.
        let tasks = fig5_tasks();
        let cost = UnitCostModel::paper_fig5();
        let base = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let one = ScheduleContext::for_test(LayerId(0), &tasks, &cost).with_gpus(1);
        assert_eq!(
            HybridScheduler::new().schedule(&base),
            HybridScheduler::new().schedule(&one)
        );
    }
}
