//! Inputs to a scheduling decision.

use hybrimoe_hw::{CostModel, ExpertProfile};
use hybrimoe_model::{ExpertKey, LayerId};

use crate::ExpertTask;

/// Reusable device-queue buffers for one scheduling decision after another.
///
/// The [`HybridScheduler`](crate::HybridScheduler) simulates per-device
/// queues (one CPU queue, `N` GPU queues, `N` PCIe lane queues) for every
/// layer of every engine step; allocating them fresh per layer churns the
/// allocator on the hot path. A `ScheduleQueues` owns those vectors and is
/// cleared — not freed — between layers. Pass it to
/// [`Scheduler::schedule_with`](crate::Scheduler::schedule_with);
/// schedulers that do not simulate queues ignore it.
#[derive(Debug, Default, Clone)]
pub struct ScheduleQueues {
    /// Per-shard GPU queues.
    pub(crate) gpu: Vec<Vec<crate::hybrid::GpuEntry>>,
    /// The CPU queue.
    pub(crate) cpu: Vec<ExpertTask>,
    /// Per-lane PCIe queues.
    pub(crate) pcie: Vec<Vec<ExpertTask>>,
}

impl ScheduleQueues {
    /// Creates empty queue buffers.
    pub fn new() -> Self {
        ScheduleQueues::default()
    }
}

/// Reusable buffers for building one [`ScheduleContext`] after another.
///
/// A serving engine schedules every layer of every engine step; allocating
/// fresh task and protect vectors per layer churns the allocator on the hot
/// path, and the cost grows with batch size (more activated experts per
/// layer). A `ScheduleScratch` owns those buffers — plus the scheduler's
/// device-queue buffers ([`ScheduleQueues`]) — and is cleared — not
/// freed — between layers, so steady-state scheduling allocates nothing.
///
/// # Example
///
/// ```
/// use hybrimoe_model::{ExpertId, ExpertKey, LayerId};
/// use hybrimoe_sched::{ExpertTask, ScheduleScratch};
///
/// let mut scratch = ScheduleScratch::new();
/// let (tasks, protect, _queues) = scratch.begin_layer();
/// tasks.push(ExpertTask::cached(ExpertId(0), 1));
/// protect.push(ExpertKey::new(LayerId(0), ExpertId(0)));
/// let (tasks, _, _) = scratch.begin_layer();
/// assert!(tasks.is_empty()); // cleared, capacity retained
/// ```
#[derive(Debug, Default, Clone)]
pub struct ScheduleScratch {
    tasks: Vec<ExpertTask>,
    protect: Vec<ExpertKey>,
    queues: ScheduleQueues,
}

impl ScheduleScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        ScheduleScratch::default()
    }

    /// Clears the task and protect buffers (retaining capacity) and hands
    /// them out for the next layer's bookkeeping — the activated task set
    /// and the protected expert keys (shielded from eviction while the
    /// layer is in flight) — together with the scheduler's reusable device
    /// queues (cleared by the scheduler itself).
    pub fn begin_layer(
        &mut self,
    ) -> (
        &mut Vec<ExpertTask>,
        &mut Vec<ExpertKey>,
        &mut ScheduleQueues,
    ) {
        self.tasks.clear();
        self.protect.clear();
        (&mut self.tasks, &mut self.protect, &mut self.queues)
    }
}

/// Everything a [`Scheduler`](crate::Scheduler) needs to plan one layer.
///
/// # Example
///
/// ```
/// use hybrimoe_hw::UnitCostModel;
/// use hybrimoe_model::{ExpertId, LayerId};
/// use hybrimoe_sched::{ExpertTask, ScheduleContext};
///
/// let tasks = [ExpertTask::cached(ExpertId(0), 1)];
/// let cost = UnitCostModel::paper_fig5();
/// let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
/// assert_eq!(ctx.tokens, 1);
/// ```
#[derive(Debug)]
pub struct ScheduleContext<'a> {
    /// The layer being scheduled.
    pub layer: LayerId,
    /// Tokens in the current batch (1 during decode).
    pub tokens: u32,
    /// The activated experts with loads and residency. A cached expert is
    /// resident on its affinity shard
    /// ([`shard_of`](hybrimoe_model::shard_of)); with one GPU that is
    /// always GPU 0.
    pub tasks: &'a [ExpertTask],
    /// Cost profile of one routed expert of this model.
    pub routed_profile: ExpertProfile,
    /// Combined cost profile of the shared experts, if the model has any.
    /// Shared experts always run on the GPU (they are pinned resident on
    /// GPU 0).
    pub shared_profile: Option<ExpertProfile>,
    /// The platform cost model.
    pub cost: &'a dyn CostModel,
    /// Number of GPU shards the schedule may target (1 reproduces the
    /// paper's single-GPU setup).
    pub num_gpus: usize,
}

impl<'a> ScheduleContext<'a> {
    /// Creates a single-GPU context; `tokens` is taken as the maximum task
    /// load (every token activates at least one expert, so the batch is at
    /// least the largest load). Scale out with
    /// [`with_gpus`](Self::with_gpus).
    pub fn new(
        layer: LayerId,
        tokens: u32,
        tasks: &'a [ExpertTask],
        routed_profile: ExpertProfile,
        shared_profile: Option<ExpertProfile>,
        cost: &'a dyn CostModel,
    ) -> Self {
        ScheduleContext {
            layer,
            tokens,
            tasks,
            routed_profile,
            shared_profile,
            cost,
            num_gpus: 1,
        }
    }

    /// Overrides the GPU count (expert shards spread across the GPUs by the
    /// affinity map).
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus` is zero.
    pub fn with_gpus(mut self, num_gpus: usize) -> Self {
        assert!(num_gpus > 0, "a platform needs at least one GPU");
        self.num_gpus = num_gpus;
        self
    }

    /// A minimal context for unit tests and worked examples: no shared
    /// experts, a placeholder expert profile (the [`UnitCostModel`]
    /// ignores it), one GPU, and `tokens` equal to the maximum load.
    ///
    /// [`UnitCostModel`]: hybrimoe_hw::UnitCostModel
    pub fn for_test(layer: LayerId, tasks: &'a [ExpertTask], cost: &'a dyn CostModel) -> Self {
        let tokens = tasks.iter().map(|t| t.load).max().unwrap_or(0);
        ScheduleContext {
            layer,
            tokens,
            tasks,
            routed_profile: ExpertProfile::new(1, 1),
            shared_profile: None,
            cost,
            num_gpus: 1,
        }
    }
}
