//! The output of a scheduling decision.

use hybrimoe_hw::{Device, GpuId, Op, OpId, SimDuration};
use hybrimoe_model::{ExpertId, LayerId};
use serde::{Deserialize, Serialize};

use crate::{ExpertTask, ScheduleContext};

/// Where a task was placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DevicePlacement {
    /// Computed on the CPU from host memory.
    Cpu,
    /// Computed on a GPU from its cache shard.
    Gpu(GpuId),
    /// Transferred over a GPU's PCIe lane, then computed on that GPU.
    GpuAfterTransfer(GpuId),
}

impl DevicePlacement {
    /// The target GPU of a GPU-side placement; `None` for the CPU.
    pub const fn gpu(self) -> Option<GpuId> {
        match self {
            DevicePlacement::Cpu => None,
            DevicePlacement::Gpu(g) | DevicePlacement::GpuAfterTransfer(g) => Some(g),
        }
    }

    /// Whether the placement requires a PCIe transfer.
    pub const fn is_transfer(self) -> bool {
        matches!(self, DevicePlacement::GpuAfterTransfer(_))
    }
}

/// A task together with its placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannedTask {
    /// The underlying expert task.
    pub task: ExpertTask,
    /// The chosen placement.
    pub placement: DevicePlacement,
}

/// The per-device execution orders for one MoE layer.
///
/// Device orders are execution orders: the CPU computes `cpu_order` front to
/// back; each GPU computes its subsequence of `gpu_order` front to back
/// (waiting for the matching transfer before a
/// [`DevicePlacement::GpuAfterTransfer`] entry); each PCIe lane issues its
/// subsequence of `pcie_order` front to back (a transfer rides the lane of
/// the GPU that consumes it). Shared experts, when present, are a fixed
/// GPU 0 preamble before the routed experts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulePlan {
    /// The layer this plan belongs to.
    pub layer: LayerId,
    /// Tokens in the batch.
    pub tokens: u32,
    /// CPU execution order.
    pub cpu_order: Vec<ExpertTask>,
    /// GPU execution order (cached and transferred experts interleaved).
    pub gpu_order: Vec<PlannedTask>,
    /// PCIe transfer order.
    pub pcie_order: Vec<ExpertTask>,
    /// Whether the plan includes the shared-expert GPU preamble.
    pub shared_on_gpu: bool,
    /// Overrides the cost profile used for PCIe transfers (llama.cpp-style
    /// streaming moves dequantized weights, which are larger than the
    /// packed Q4 experts). `None` uses the routed expert profile.
    pub transfer_profile: Option<hybrimoe_hw::ExpertProfile>,
    /// The makespan the scheduler's internal simulation predicts.
    pub predicted_makespan: SimDuration,
}

/// Why a plan failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanInvalid {
    /// An activated expert is computed zero or multiple times.
    WrongComputeCount(ExpertId),
    /// A cached expert is transferred.
    TransferredCached(ExpertId),
    /// A transferred expert is not computed on the GPU after its transfer.
    TransferNotConsumed(ExpertId),
    /// A GPU entry is marked `GpuAfterTransfer` but has no matching
    /// transfer.
    MissingTransfer(ExpertId),
}

impl std::fmt::Display for PlanInvalid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanInvalid::WrongComputeCount(e) => {
                write!(f, "expert {e} computed zero or multiple times")
            }
            PlanInvalid::TransferredCached(e) => write!(f, "cached expert {e} transferred"),
            PlanInvalid::TransferNotConsumed(e) => {
                write!(f, "transfer of {e} has no GPU compute")
            }
            PlanInvalid::MissingTransfer(e) => {
                write!(f, "GPU compute of {e} expects a transfer that is absent")
            }
        }
    }
}

impl std::error::Error for PlanInvalid {}

impl SchedulePlan {
    /// An empty plan (no activated experts).
    pub fn empty(layer: LayerId, tokens: u32) -> Self {
        SchedulePlan {
            layer,
            tokens,
            cpu_order: Vec::new(),
            gpu_order: Vec::new(),
            pcie_order: Vec::new(),
            shared_on_gpu: false,
            transfer_profile: None,
            predicted_makespan: SimDuration::ZERO,
        }
    }

    /// Experts computed on the CPU, in execution order.
    pub fn cpu_experts(&self) -> impl Iterator<Item = ExpertId> + '_ {
        self.cpu_order.iter().map(|t| t.expert)
    }

    /// Experts computed on the GPU, in execution order.
    pub fn gpu_experts(&self) -> impl Iterator<Item = ExpertId> + '_ {
        self.gpu_order.iter().map(|t| t.task.expert)
    }

    /// Experts moved over PCIe, in transfer order. These become resident in
    /// the GPU cache after the layer executes.
    pub fn transferred_experts(&self) -> impl Iterator<Item = ExpertId> + '_ {
        self.pcie_order.iter().map(|t| t.expert)
    }

    /// Checks the structural invariants of the plan against the activated
    /// task set.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: every activated expert computed
    /// exactly once, no cached expert transferred, every transfer consumed
    /// by a `GpuAfterTransfer` compute and vice versa.
    pub fn validate(&self, tasks: &[ExpertTask]) -> Result<(), PlanInvalid> {
        for t in tasks {
            let on_cpu = self
                .cpu_order
                .iter()
                .filter(|c| c.expert == t.expert)
                .count();
            let on_gpu = self
                .gpu_order
                .iter()
                .filter(|g| g.task.expert == t.expert)
                .count();
            if on_cpu + on_gpu != 1 {
                return Err(PlanInvalid::WrongComputeCount(t.expert));
            }
        }
        for x in &self.pcie_order {
            if x.cached {
                return Err(PlanInvalid::TransferredCached(x.expert));
            }
            let consumed = self
                .gpu_order
                .iter()
                .any(|g| g.task.expert == x.expert && g.placement.is_transfer());
            if !consumed {
                return Err(PlanInvalid::TransferNotConsumed(x.expert));
            }
        }
        for g in &self.gpu_order {
            if g.placement.is_transfer()
                && !self.pcie_order.iter().any(|x| x.expert == g.task.expert)
            {
                return Err(PlanInvalid::MissingTransfer(g.task.expert));
            }
        }
        Ok(())
    }

    /// The GPU a transferred expert's lane must feed: the shard of its
    /// consuming GPU compute (GPU 0 when the plan is malformed — validation
    /// reports that separately).
    fn transfer_lane(&self, expert: ExpertId) -> GpuId {
        self.gpu_order
            .iter()
            .find(|g| g.task.expert == expert && g.placement.is_transfer())
            .and_then(|g| g.placement.gpu())
            .unwrap_or(GpuId(0))
    }

    /// Lowers the plan to hardware ops for the
    /// [`PlanExecutor`](hybrimoe_hw::PlanExecutor): compute ops per device
    /// in plan order, transfer ops on the PCIe lane of the consuming GPU,
    /// and a dependency from each transferred expert's GPU compute to its
    /// transfer.
    pub fn to_ops(&self, ctx: &ScheduleContext<'_>) -> Vec<Op> {
        let mut ops = Vec::new();
        let mut next_id = 0u32;
        let mut id = || {
            let i = next_id;
            next_id += 1;
            i
        };

        if self.shared_on_gpu {
            if let Some(shared) = ctx.shared_profile {
                ops.push(Op::new(
                    id(),
                    Device::Gpu(GpuId(0)),
                    ctx.cost.gpu_compute(&shared, ctx.tokens),
                    format!("{} shared", self.layer),
                ));
            }
        }

        // Transfers first so GPU computes can reference them.
        let transfer_profile = self.transfer_profile.unwrap_or(ctx.routed_profile);
        let mut transfer_ids: Vec<(ExpertId, OpId)> = Vec::new();
        for x in &self.pcie_order {
            let op = Op::new(
                id(),
                Device::Pcie(self.transfer_lane(x.expert)),
                ctx.cost.transfer(&transfer_profile),
                format!("{}/{} load", self.layer, x.expert),
            );
            transfer_ids.push((x.expert, op.id));
            ops.push(op);
        }

        for (i, t) in self.cpu_order.iter().enumerate() {
            let warm = i > 0;
            ops.push(Op::new(
                id(),
                Device::Cpu,
                ctx.cost.cpu_compute(&ctx.routed_profile, t.load, warm),
                format!("{}/{}", self.layer, t.expert),
            ));
        }

        for g in &self.gpu_order {
            let mut op = Op::new(
                id(),
                Device::Gpu(g.placement.gpu().unwrap_or(GpuId(0))),
                ctx.cost.gpu_compute(&ctx.routed_profile, g.task.load),
                format!("{}/{}", self.layer, g.task.expert),
            );
            if g.placement.is_transfer() {
                if let Some((_, dep)) = transfer_ids.iter().find(|(e, _)| *e == g.task.expert) {
                    op = op.after(*dep);
                }
            }
            ops.push(op);
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrimoe_hw::{GpuId, PlanExecutor, UnitCostModel};

    fn fig5_tasks() -> Vec<ExpertTask> {
        vec![
            ExpertTask::uncached(ExpertId(0), 1),
            ExpertTask::uncached(ExpertId(1), 1),
            ExpertTask::uncached(ExpertId(2), 3),
            ExpertTask::cached(ExpertId(3), 4),
            ExpertTask::cached(ExpertId(4), 1),
        ]
    }

    fn fig5_plan() -> SchedulePlan {
        SchedulePlan {
            layer: LayerId(0),
            tokens: 4,
            cpu_order: vec![
                ExpertTask::uncached(ExpertId(0), 1),
                ExpertTask::uncached(ExpertId(1), 1),
                ExpertTask::cached(ExpertId(4), 1),
            ],
            gpu_order: vec![
                PlannedTask {
                    task: ExpertTask::cached(ExpertId(3), 4),
                    placement: DevicePlacement::Gpu(GpuId(0)),
                },
                PlannedTask {
                    task: ExpertTask::uncached(ExpertId(2), 3),
                    placement: DevicePlacement::GpuAfterTransfer(GpuId(0)),
                },
            ],
            pcie_order: vec![ExpertTask::uncached(ExpertId(2), 3)],
            shared_on_gpu: false,
            transfer_profile: None,
            predicted_makespan: SimDuration::from_micros(4),
        }
    }

    #[test]
    fn fig5_plan_validates() {
        assert_eq!(fig5_plan().validate(&fig5_tasks()), Ok(()));
    }

    #[test]
    fn validation_catches_missing_compute() {
        let mut p = fig5_plan();
        p.cpu_order.pop();
        assert_eq!(
            p.validate(&fig5_tasks()),
            Err(PlanInvalid::WrongComputeCount(ExpertId(4)))
        );
    }

    #[test]
    fn validation_catches_duplicate_compute() {
        let mut p = fig5_plan();
        p.cpu_order.push(ExpertTask::cached(ExpertId(3), 4));
        assert_eq!(
            p.validate(&fig5_tasks()),
            Err(PlanInvalid::WrongComputeCount(ExpertId(3)))
        );
    }

    #[test]
    fn validation_catches_cached_transfer() {
        let mut p = fig5_plan();
        p.pcie_order.push(ExpertTask::cached(ExpertId(3), 4));
        assert_eq!(
            p.validate(&fig5_tasks()),
            Err(PlanInvalid::TransferredCached(ExpertId(3)))
        );
    }

    #[test]
    fn validation_catches_unconsumed_transfer() {
        let mut p = fig5_plan();
        p.gpu_order[1].placement = DevicePlacement::Gpu(GpuId(0));
        assert_eq!(
            p.validate(&fig5_tasks()),
            Err(PlanInvalid::TransferNotConsumed(ExpertId(2)))
        );
    }

    #[test]
    fn validation_catches_missing_transfer() {
        let mut p = fig5_plan();
        p.pcie_order.clear();
        assert_eq!(
            p.validate(&fig5_tasks()),
            Err(PlanInvalid::MissingTransfer(ExpertId(2)))
        );
    }

    #[test]
    fn to_ops_executes_to_predicted_makespan() {
        let plan = fig5_plan();
        let cost = UnitCostModel::paper_fig5();
        let tasks = fig5_tasks();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let ops = plan.to_ops(&ctx);
        let executed = PlanExecutor::new().execute(ops).unwrap();
        assert_eq!(executed.makespan, plan.predicted_makespan);
    }

    #[test]
    fn empty_plan_is_valid_and_zero_cost() {
        let p = SchedulePlan::empty(LayerId(1), 0);
        assert_eq!(p.validate(&[]), Ok(()));
        assert_eq!(p.predicted_makespan, SimDuration::ZERO);
        let cost = UnitCostModel::paper_fig5();
        let ctx = ScheduleContext::for_test(LayerId(1), &[], &cost);
        assert!(p.to_ops(&ctx).is_empty());
    }

    #[test]
    fn invalid_display_nonempty() {
        for e in [
            PlanInvalid::WrongComputeCount(ExpertId(0)),
            PlanInvalid::TransferredCached(ExpertId(0)),
            PlanInvalid::TransferNotConsumed(ExpertId(0)),
            PlanInvalid::MissingTransfer(ExpertId(0)),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
