//! An exhaustive optimal scheduler for small task sets.
//!
//! The mapping problem is NP-hard in general (§III), but for the task-set
//! sizes of one MoE layer (≤ 8 activated experts for Mixtral/Qwen2) it can
//! be solved exactly by enumeration. The oracle is not part of the runtime
//! system — it exists to *measure the optimality gap* of the greedy hybrid
//! scheduler, an evaluation the paper does not include.
//!
//! For every assignment of tasks to {CPU, GPU-cached, transfer-then-GPU}
//! (cached tasks may run on CPU or GPU; uncached on CPU or via transfer),
//! the oracle computes the optimal makespan of that assignment:
//!
//! * CPU cost is order-independent (a sum), modulo the cold start;
//! * transfers are sequenced on PCIe and feed GPU computes; for ≤ 6
//!   transferred tasks every transfer order is tried, with the GPU greedily
//!   interleaving ready work.

use hybrimoe_hw::{SimDuration, SimTime};

use crate::{ExpertTask, ScheduleContext};

/// Upper bound on task-set size the oracle accepts (3^n assignments).
pub const ORACLE_MAX_TASKS: usize = 9;

/// Upper bound on simultaneously transferred tasks (n! transfer orders).
const MAX_TRANSFERS_ENUMERATED: usize = 6;

/// The exhaustively optimal layer makespan for `ctx`, or `None` if the task
/// set is too large to enumerate.
///
/// The returned value is the paper's objective (Eq. 2): the compute finish
/// time `max(CPU, GPU)` under the same cost model the schedulers use. It is
/// a lower bound certificate for any valid schedule of the layer.
///
/// # Example
///
/// ```
/// use hybrimoe_hw::UnitCostModel;
/// use hybrimoe_model::{ExpertId, LayerId};
/// use hybrimoe_sched::{oracle_makespan, ExpertTask, ScheduleContext};
///
/// // The Fig. 5 example: the optimum is the published 4 time units.
/// let tasks = vec![
///     ExpertTask::uncached(ExpertId(0), 1),
///     ExpertTask::uncached(ExpertId(1), 1),
///     ExpertTask::uncached(ExpertId(2), 3),
///     ExpertTask::cached(ExpertId(3), 4),
///     ExpertTask::cached(ExpertId(4), 1),
/// ];
/// let cost = UnitCostModel::paper_fig5();
/// let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
/// assert_eq!(oracle_makespan(&ctx).unwrap().as_micros_f64(), 4.0);
/// ```
pub fn oracle_makespan(ctx: &ScheduleContext<'_>) -> Option<SimDuration> {
    let n = ctx.tasks.len();
    if n > ORACLE_MAX_TASKS {
        return None;
    }
    if n == 0 {
        return Some(shared_preamble(ctx));
    }

    let mut best: Option<SimDuration> = None;
    // Each task has 2 placement choices encoded by a bit:
    // cached:   0 → GPU, 1 → CPU (steal)
    // uncached: 0 → transfer+GPU, 1 → CPU
    for mask in 0u32..(1 << n) {
        let mut cpu: Vec<ExpertTask> = Vec::new();
        let mut gpu: Vec<ExpertTask> = Vec::new();
        let mut transfers: Vec<ExpertTask> = Vec::new();
        for (i, t) in ctx.tasks.iter().enumerate() {
            let to_cpu = mask & (1 << i) != 0;
            match (t.cached, to_cpu) {
                (_, true) => cpu.push(*t),
                (true, false) => gpu.push(*t),
                (false, false) => transfers.push(*t),
            }
        }
        if transfers.len() > MAX_TRANSFERS_ENUMERATED {
            continue;
        }
        let makespan = assignment_makespan(ctx, &cpu, &gpu, &transfers);
        best = Some(match best {
            Some(b) => b.min(makespan),
            None => makespan,
        });
    }
    best
}

/// The GPU preamble cost for the shared experts, if any.
fn shared_preamble(ctx: &ScheduleContext<'_>) -> SimDuration {
    ctx.shared_profile
        .map(|s| ctx.cost.gpu_compute(&s, ctx.tokens))
        .unwrap_or(SimDuration::ZERO)
}

/// Optimal makespan of one fixed assignment.
fn assignment_makespan(
    ctx: &ScheduleContext<'_>,
    cpu: &[ExpertTask],
    gpu: &[ExpertTask],
    transfers: &[ExpertTask],
) -> SimDuration {
    // CPU: a sum; only the cold start depends on order (it applies to
    // whichever task runs first, so the sum is order-independent too).
    let mut cpu_t = SimDuration::ZERO;
    for (i, t) in cpu.iter().enumerate() {
        cpu_t += ctx.cost.cpu_compute(&ctx.routed_profile, t.load, i > 0);
    }

    // GPU + PCIe: try every transfer order (the GPU interleaves cached
    // work greedily while waiting for arrivals).
    let shared = shared_preamble(ctx);
    let mut best_gpu = None;
    let mut order: Vec<usize> = (0..transfers.len()).collect();
    permute(&mut order, 0, &mut |perm| {
        let gpu_time = gpu_schedule_makespan(ctx, gpu, transfers, perm, shared);
        best_gpu = Some(match best_gpu {
            Some(b) if b <= gpu_time => b,
            _ => gpu_time,
        });
    });
    let gpu_t = best_gpu.unwrap_or(shared);

    cpu_t.max(gpu_t)
}

/// GPU finish time for a fixed transfer order: cached tasks fill PCIe wait
/// gaps; arrivals are computed as they land.
fn gpu_schedule_makespan(
    ctx: &ScheduleContext<'_>,
    gpu: &[ExpertTask],
    transfers: &[ExpertTask],
    order: &[usize],
    shared: SimDuration,
) -> SimDuration {
    let mut gpu_t = SimTime::ZERO + shared;
    let mut pcie_t = SimTime::ZERO;
    let mut arrivals: Vec<(SimTime, u32)> = Vec::with_capacity(order.len());
    for &i in order {
        pcie_t += ctx.cost.transfer(&ctx.routed_profile);
        arrivals.push((pcie_t, transfers[i].load));
    }
    // Cached tasks are fully flexible: schedule them while waiting. A
    // simple exchange argument shows computing each arrival as early as
    // possible and filling gaps with cached work is optimal for makespan
    // on a single machine with release dates and flexible filler jobs.
    let mut cached: Vec<u32> = gpu.iter().map(|t| t.load).collect();
    cached.sort_unstable_by(|a, b| b.cmp(a));
    let mut ci = 0usize;
    for (ready, load) in arrivals {
        // Fill idle time before the arrival with cached tasks that fit.
        while gpu_t < ready && ci < cached.len() {
            gpu_t += ctx.cost.gpu_compute(&ctx.routed_profile, cached[ci]);
            ci += 1;
        }
        gpu_t = gpu_t.max(ready) + ctx.cost.gpu_compute(&ctx.routed_profile, load);
    }
    while ci < cached.len() {
        gpu_t += ctx.cost.gpu_compute(&ctx.routed_profile, cached[ci]);
        ci += 1;
    }
    gpu_t.elapsed_since(SimTime::ZERO)
}

/// Heap's algorithm over `items[at..]`.
fn permute(items: &mut Vec<usize>, at: usize, visit: &mut impl FnMut(&[usize])) {
    if at == items.len() {
        visit(items);
        return;
    }
    for i in at..items.len() {
        items.swap(at, i);
        permute(items, at + 1, visit);
        items.swap(at, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HybridScheduler, Scheduler};
    use hybrimoe_hw::UnitCostModel;
    use hybrimoe_model::{ExpertId, LayerId};

    fn fig5_tasks() -> Vec<ExpertTask> {
        vec![
            ExpertTask::uncached(ExpertId(0), 1),
            ExpertTask::uncached(ExpertId(1), 1),
            ExpertTask::uncached(ExpertId(2), 3),
            ExpertTask::cached(ExpertId(3), 4),
            ExpertTask::cached(ExpertId(4), 1),
        ]
    }

    #[test]
    fn fig5_optimum_is_four_units() {
        let cost = UnitCostModel::paper_fig5();
        let tasks = fig5_tasks();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        assert_eq!(oracle_makespan(&ctx).unwrap().as_micros_f64(), 4.0);
    }

    #[test]
    fn hybrid_is_optimal_on_fig5() {
        let cost = UnitCostModel::paper_fig5();
        let tasks = fig5_tasks();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        let hybrid = HybridScheduler::new().schedule(&ctx);
        assert_eq!(hybrid.predicted_makespan, oracle_makespan(&ctx).unwrap());
    }

    #[test]
    fn empty_task_set() {
        let cost = UnitCostModel::paper_fig5();
        let ctx = ScheduleContext::for_test(LayerId(0), &[], &cost);
        assert_eq!(oracle_makespan(&ctx), Some(SimDuration::ZERO));
    }

    #[test]
    fn oversized_task_set_declined() {
        let cost = UnitCostModel::paper_fig5();
        let tasks: Vec<ExpertTask> = (0..12)
            .map(|i| ExpertTask::cached(ExpertId(i), 1))
            .collect();
        let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
        assert_eq!(oracle_makespan(&ctx), None);
    }

    #[test]
    fn oracle_never_exceeds_hybrid_on_random_instances() {
        let cost = UnitCostModel::paper_fig5();
        let mut seed = 777u64;
        let mut optimal_hits = 0usize;
        let total = 150usize;
        for _ in 0..total {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let n = 1 + (seed >> 40) as usize % 6;
            let tasks: Vec<ExpertTask> = (0..n)
                .map(|i| {
                    let s = seed.wrapping_add(i as u64 * 0x9E37);
                    ExpertTask {
                        expert: ExpertId(i as u16),
                        load: 1 + (s >> 13) as u32 % 5,
                        cached: (s >> 7).is_multiple_of(2),
                    }
                })
                .collect();
            let ctx = ScheduleContext::for_test(LayerId(0), &tasks, &cost);
            let hybrid = HybridScheduler::new().schedule(&ctx).predicted_makespan;
            let oracle = oracle_makespan(&ctx).unwrap();
            assert!(oracle <= hybrid, "oracle {oracle} > hybrid {hybrid}");
            if oracle == hybrid {
                optimal_hits += 1;
            }
        }
        // The greedy should be exactly optimal on a large majority of
        // small instances (the paper's premise that the priority rules
        // capture the structure of the problem).
        assert!(
            optimal_hits * 10 >= total * 7,
            "hybrid optimal on only {optimal_hits}/{total}"
        );
    }

    #[test]
    fn shared_preamble_included() {
        let cost = UnitCostModel::paper_fig5();
        let tasks = vec![ExpertTask::cached(ExpertId(0), 1)];
        let ctx = ScheduleContext::new(
            LayerId(0),
            1,
            &tasks,
            hybrimoe_hw::ExpertProfile::new(1, 1),
            Some(hybrimoe_hw::ExpertProfile::new(1, 1)),
            &cost,
        );
        // 1 unit shared + 1 unit expert (GPU) — CPU steal of the only task
        // would still wait for nothing better: optimum is 2 on GPU path or
        // 1 via CPU while GPU does shared. CPU path: cpu=1, gpu=1 → max 1.
        assert_eq!(oracle_makespan(&ctx).unwrap().as_micros_f64(), 1.0);
    }
}
