//! Single-precision GEMM / GEMV reference kernels.
//!
//! These are deliberately simple, cache-blocked, dependency-free kernels:
//! fast enough to calibrate the cost model with realistic arithmetic
//! intensity, and bit-deterministic for tests. Matrices are dense row-major
//! `f32` slices.
//!
//! Unlike the quantized `qgemv_into`/`qgemm_into` hot paths, these dense
//! kernels are *not* dispatched through [`crate::backend`]: they are the
//! calibration and testing oracle, and their scalar accumulation order is
//! part of the determinism contract the SIMD backends are verified against.

/// `y = W · x` where `W` is `rows x cols` row-major.
///
/// # Panics
///
/// Panics if `w.len() != rows * cols`, `x.len() != cols`, or
/// `y.len() != rows`.
///
/// # Example
///
/// ```
/// let w = vec![1.0, 2.0, 3.0, 4.0]; // [[1,2],[3,4]]
/// let x = vec![10.0, 20.0];
/// let mut y = vec![0.0; 2];
/// hybrimoe_kernels::gemm::gemv(&w, 2, 2, &x, &mut y);
/// assert_eq!(y, vec![50.0, 110.0]);
/// ```
pub fn gemv(w: &[f32], rows: usize, cols: usize, x: &[f32], y: &mut [f32]) {
    assert_eq!(w.len(), rows * cols, "weight shape mismatch");
    assert_eq!(x.len(), cols, "input length mismatch");
    assert_eq!(y.len(), rows, "output length mismatch");
    for (r, yr) in y.iter_mut().enumerate() {
        let row = &w[r * cols..(r + 1) * cols];
        let mut acc = 0.0f32;
        // 4-way unrolled dot product; the remainder is handled below.
        let mut c = 0;
        while c + 4 <= cols {
            acc += row[c] * x[c]
                + row[c + 1] * x[c + 1]
                + row[c + 2] * x[c + 2]
                + row[c + 3] * x[c + 3];
            c += 4;
        }
        while c < cols {
            acc += row[c] * x[c];
            c += 1;
        }
        *yr = acc;
    }
}

/// `C = A · B` where `A` is `m x k`, `B` is `k x n`, `C` is `m x n`, all
/// row-major. Rows of `C` are split into bands computed by up to `threads`
/// scoped worker threads.
///
/// # Panics
///
/// Panics on shape mismatches.
///
/// # Example
///
/// ```
/// let a = vec![1.0, 0.0, 0.0, 1.0]; // identity
/// let b = vec![5.0, 6.0, 7.0, 8.0];
/// let mut c = vec![0.0; 4];
/// hybrimoe_kernels::gemm::gemm(&a, &b, &mut c, 2, 2, 2, 1);
/// assert_eq!(c, b);
/// ```
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize, threads: usize) {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");
    assert_eq!(c.len(), m * n, "C shape mismatch");
    let bands = band_ranges(m, threads);
    if bands.len() <= 1 {
        gemm_band(a, b, c, 0, m, k, n);
        return;
    }
    // Split C into disjoint mutable bands, one per worker.
    let mut slices: Vec<&mut [f32]> = Vec::with_capacity(bands.len());
    let mut rest = c;
    let mut consumed = 0usize;
    for &(r0, r1) in &bands {
        let (band, tail) = rest.split_at_mut((r1 - r0) * n);
        debug_assert_eq!(consumed, r0 * n);
        consumed += band.len();
        slices.push(band);
        rest = tail;
    }
    std::thread::scope(|scope| {
        for (band, &(r0, r1)) in slices.into_iter().zip(bands.iter()) {
            scope.spawn(move || gemm_band(a, b, band, r0, r1, k, n));
        }
    });
}

fn band_ranges(m: usize, threads: usize) -> Vec<(usize, usize)> {
    let threads = threads.max(1).min(m.max(1));
    let chunk = m.div_ceil(threads);
    (0..threads)
        .map(|t| (t * chunk, ((t + 1) * chunk).min(m)))
        .filter(|(a, b)| a < b)
        .collect()
}

/// Computes rows `r0..r1` of `C = A·B` into `band` (band-local row indexing).
fn gemm_band(a: &[f32], b: &[f32], band: &mut [f32], r0: usize, r1: usize, k: usize, n: usize) {
    // i-k-j loop order: streams B rows, accumulates into the C band.
    for i in r0..r1 {
        let crow = &mut band[(i - r0) * n..(i - r0 + 1) * n];
        crow.fill(0.0);
        for kk in 0..k {
            let aik = a[i * k + kk];
            if aik == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (cv, bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += aik * bv;
            }
        }
    }
}

/// SiLU (swish) activation: `x * sigmoid(x)`.
///
/// # Example
///
/// ```
/// assert_eq!(hybrimoe_kernels::gemm::silu(0.0), 0.0);
/// assert!(hybrimoe_kernels::gemm::silu(10.0) > 9.9);
/// ```
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// `y[i] = silu(g[i]) * u[i]` — the SwiGLU gating product.
///
/// # Panics
///
/// Panics if lengths differ.
///
/// # Example
///
/// ```
/// let mut y = [0.0_f32; 2];
/// hybrimoe_kernels::gemm::swiglu_gate(&[0.0, 1.0], &[3.0, 2.0], &mut y);
/// assert_eq!(y[0], 0.0);
/// ```
pub fn swiglu_gate(g: &[f32], u: &[f32], y: &mut [f32]) {
    assert_eq!(g.len(), u.len());
    assert_eq!(g.len(), y.len());
    for ((yv, gv), uv) in y.iter_mut().zip(g.iter()).zip(u.iter()) {
        *yv = silu(*gv) * uv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn pseudo(n: usize, seed: u32) -> Vec<f32> {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                ((state >> 8) as f32 / (1u32 << 24) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn gemv_matches_naive() {
        let (rows, cols) = (13, 29);
        let w = pseudo(rows * cols, 1);
        let x = pseudo(cols, 2);
        let mut y = vec![0.0; rows];
        gemv(&w, rows, cols, &x, &mut y);
        let c = naive_gemm(&w, &x, rows, cols, 1);
        for (a, b) in y.iter().zip(c.iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn gemm_matches_naive_single_thread() {
        let (m, k, n) = (7, 11, 5);
        let a = pseudo(m * k, 3);
        let b = pseudo(k * n, 4);
        let mut c = vec![0.0; m * n];
        gemm(&a, &b, &mut c, m, k, n, 1);
        let expect = naive_gemm(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(expect.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn gemm_threads_agree_with_single() {
        let (m, k, n) = (16, 24, 9);
        let a = pseudo(m * k, 5);
        let b = pseudo(k * n, 6);
        let mut c1 = vec![0.0; m * n];
        let mut c4 = vec![0.0; m * n];
        gemm(&a, &b, &mut c1, m, k, n, 1);
        gemm(&a, &b, &mut c4, m, k, n, 4);
        assert_eq!(c1, c4);
    }

    #[test]
    fn gemm_overwrites_stale_output() {
        let (m, k, n) = (3, 3, 3);
        let a = pseudo(m * k, 7);
        let b = pseudo(k * n, 8);
        let mut c = vec![99.0; m * n];
        gemm(&a, &b, &mut c, m, k, n, 1);
        let expect = naive_gemm(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(expect.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "weight shape mismatch")]
    fn gemv_rejects_bad_shape() {
        let mut y = vec![0.0; 2];
        gemv(&[1.0; 3], 2, 2, &[1.0; 2], &mut y);
    }

    #[test]
    fn silu_properties() {
        assert_eq!(silu(0.0), 0.0);
        assert!(silu(5.0) > 0.0);
        assert!(silu(-5.0) < 0.0);
        assert!(silu(-5.0).abs() < 0.05);
    }

    #[test]
    fn swiglu_gate_elementwise() {
        let g = [0.0, 1.0];
        let u = [3.0, 2.0];
        let mut y = [9.0, 9.0];
        swiglu_gate(&g, &u, &mut y);
        assert_eq!(y[0], 0.0);
        assert!((y[1] - silu(1.0) * 2.0).abs() < 1e-6);
    }

    #[test]
    fn band_ranges_cover() {
        for m in [1usize, 5, 16, 17] {
            for t in [1usize, 2, 4, 32] {
                let bands = band_ranges(m, t);
                assert_eq!(bands.first().unwrap().0, 0);
                assert_eq!(bands.last().unwrap().1, m);
                for w in bands.windows(2) {
                    assert_eq!(w[0].1, w[1].0);
                }
            }
        }
    }
}
