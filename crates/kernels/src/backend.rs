//! Runtime-dispatched SIMD backends for the `Q4_0` dequant+dot inner loop.
//!
//! Every quantized kernel hot path in this crate ([`qgemv_into`],
//! [`qgemm_into`], and the expert forward built on them) bottoms out in one
//! primitive: *dequantize one packed weight row and dot it with one or more
//! token activations*. [`KernelBackend`] abstracts exactly that primitive,
//! so the surrounding tiling, threading and scatter logic is written once
//! while the innermost loop is selected at startup:
//!
//! * [`KernelBackendKind::Scalar`] — the original scalar loops, kept
//!   byte-for-byte as the **reference backend**. Every determinism pin in
//!   the repo is a pin of this backend's accumulation order.
//! * [`KernelBackendKind::Portable`] — a manually-unrolled eight-lane
//!   formulation that any arch's auto-vectorizer can turn into SIMD. Its
//!   per-lane accumulation order and final reduction tree are *exactly*
//!   those of the AVX2 path, so the two are bit-identical to each other
//!   (and differ from scalar only by documented float reassociation).
//! * [`KernelBackendKind::Avx2`] — `x86_64` AVX2 intrinsics
//!   (`target_feature`-gated): 16 packed nibbles unpack with one mask +
//!   shift + interleave, widen to `f32`, and multiply-accumulate eight
//!   lanes at a time. Deliberately **no FMA**: fused multiply-adds round
//!   once where `mul`+`add` rounds twice, which would break the exact
//!   Portable ≡ AVX2 equivalence the proptests pin.
//!
//! # Selection
//!
//! [`KernelBackendKind::resolve`] picks the implementation once at
//! executor startup, in this order:
//!
//! 1. An explicit config knob (`Scalar`/`Portable`/`Avx2`) wins outright
//!    (an explicit `Avx2` on hardware without AVX2 falls back to the
//!    scalar reference rather than faulting).
//! 2. `Auto` consults the `HYBRIMOE_KERNEL_BACKEND` environment variable
//!    (`scalar` | `portable` | `avx2` | `auto`, case-insensitive).
//! 3. Otherwise `Auto` runtime-detects: `is_x86_feature_detected!("avx2")`
//!    selects the AVX2 path, anything else falls back to the scalar
//!    reference.
//!
//! # Numerical contract
//!
//! All backends compute the same exact dequantization (`(q - 8) * scale`
//! per element — integer-to-float conversion and one `f32` multiply are
//! exact here) and differ only in *float addition order*. Scalar sums each
//! token's `cols` products sequentially; Portable/AVX2 accumulate eight
//! interleaved partial sums and reduce them with a fixed tree. Each
//! reassociation is one extra rounding opportunity, so SIMD outputs stay
//! within `cols/8 + 3` ulp-scale rounding steps of the scalar oracle — the
//! bound `tests/tests/kernel_backends.rs` verifies against an `f64`
//! ground-truth accumulation.
//!
//! [`qgemv_into`]: crate::QuantizedMatrix::qgemv_into
//! [`qgemm_into`]: crate::QuantizedMatrix::qgemm_into

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::quant::{decode_block, Q4_BLOCK, Q4_BLOCK_BYTES};

/// The environment variable consulted by [`KernelBackendKind::Auto`].
pub const KERNEL_BACKEND_ENV: &str = "HYBRIMOE_KERNEL_BACKEND";

/// Which `Q4_0` inner-loop implementation to use (the
/// `RealExecOptions::kernel_backend` knob).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelBackendKind {
    /// Resolve at startup: `HYBRIMOE_KERNEL_BACKEND` if set, else CPU
    /// feature detection (AVX2 where available, scalar elsewhere).
    #[default]
    Auto,
    /// The scalar reference loops (the determinism oracle).
    Scalar,
    /// Manually-unrolled eight-lane path, auto-vectorizable on any arch.
    Portable,
    /// AVX2 intrinsics (`x86_64` only; falls back to scalar elsewhere).
    Avx2,
}

impl KernelBackendKind {
    /// The lower-case name used by the env override, `real_bench` rows and
    /// the CI gate.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackendKind::Auto => "auto",
            KernelBackendKind::Scalar => "scalar",
            KernelBackendKind::Portable => "portable",
            KernelBackendKind::Avx2 => "avx2",
        }
    }

    /// Parses a backend name as accepted in `HYBRIMOE_KERNEL_BACKEND`
    /// (case-insensitive). Returns `None` for unrecognized values.
    pub fn parse(name: &str) -> Option<KernelBackendKind> {
        match name.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(KernelBackendKind::Auto),
            "scalar" => Some(KernelBackendKind::Scalar),
            "portable" => Some(KernelBackendKind::Portable),
            "avx2" => Some(KernelBackendKind::Avx2),
            _ => None,
        }
    }

    /// Resolves this knob to a concrete backend (see the [module
    /// docs](self) for the selection order). Never fails: unsupported
    /// explicit choices fall back to the scalar reference.
    pub fn resolve(self) -> &'static dyn KernelBackend {
        match self.resolved() {
            KernelBackendKind::Portable => &Portable,
            #[cfg(target_arch = "x86_64")]
            KernelBackendKind::Avx2 => &Avx2,
            _ => &Scalar,
        }
    }

    /// The concrete kind [`resolve`](KernelBackendKind::resolve) lands on:
    /// `Auto` is expanded (env override, then feature detection) and
    /// unsupported explicit choices collapse to `Scalar`.
    pub fn resolved(self) -> KernelBackendKind {
        let requested = match self {
            KernelBackendKind::Auto => std::env::var(KERNEL_BACKEND_ENV)
                .ok()
                .and_then(|v| KernelBackendKind::parse(&v))
                .unwrap_or(KernelBackendKind::Auto),
            explicit => explicit,
        };
        match requested {
            KernelBackendKind::Auto => {
                if avx2_available() {
                    KernelBackendKind::Avx2
                } else {
                    KernelBackendKind::Scalar
                }
            }
            KernelBackendKind::Avx2 if !avx2_available() => KernelBackendKind::Scalar,
            concrete => concrete,
        }
    }
}

/// Whether the AVX2 path can run on this host.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The scalar reference backend (see [`KernelBackendKind::Scalar`]).
pub fn scalar() -> &'static dyn KernelBackend {
    &Scalar
}

/// Every backend that can run on this host: scalar and portable always,
/// plus AVX2 where detected. `real_bench` sweeps exactly this set.
pub fn available() -> Vec<&'static dyn KernelBackend> {
    let mut backends: Vec<&'static dyn KernelBackend> = vec![&Scalar, &Portable];
    if avx2_available() {
        backends.push(KernelBackendKind::Avx2.resolve());
    }
    backends
}

/// One `Q4_0` inner-loop implementation: dequantize a packed weight row
/// and dot it with a batch of activations.
///
/// Implementations are stateless statics; [`KernelBackendKind::resolve`]
/// hands out `&'static` references, so an executor stores the resolved
/// backend once and pays one virtual dispatch per weight row.
///
/// # Example
///
/// ```
/// use hybrimoe_kernels::{KernelBackendKind, QuantizedMatrix, Q4_BLOCK};
///
/// let weights: Vec<f32> = (0..Q4_BLOCK).map(|i| i as f32 / 16.0).collect();
/// let row = QuantizedMatrix::quantize(&weights, 1, Q4_BLOCK).unwrap();
///
/// let backend = KernelBackendKind::Scalar.resolve();
/// let x = vec![1.0_f32; Q4_BLOCK];
/// let mut out = [0.0_f32];
/// backend.qdot_row(&row.data(), &x, Q4_BLOCK, &mut out);
///
/// // Same math as dotting the dequantized row.
/// let reference: f32 = row.dequantize().iter().zip(&x).map(|(w, x)| w * x).sum();
/// assert!((out[0] - reference).abs() < 1e-3);
/// ```
pub trait KernelBackend: fmt::Debug + Send + Sync {
    /// The concrete kind of this implementation.
    fn kind(&self) -> KernelBackendKind;

    /// Computes `out[t] = dot(dequant(row), x[t * cols .. (t+1) * cols])`
    /// for every token `t`.
    ///
    /// `row` is one weight row's packed blocks (`cols / Q4_BLOCK` blocks of
    /// [`Q4_BLOCK_BYTES`]); `x` is token-major (`out.len() × cols`). `out`
    /// is fully overwritten. A single-token call (`out.len() == 1`) and a
    /// batched call compute each token with the *same* accumulation order,
    /// so GEMV and GEMM paths agree bit for bit within one backend.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) on shape mismatches: `cols` must be a
    /// multiple of [`Q4_BLOCK`], `row.len()` must match `cols`, and
    /// `x.len()` must equal `out.len() * cols`.
    fn qdot_row(&self, row: &[u8], x: &[f32], cols: usize, out: &mut [f32]);
}

#[inline]
fn check_shapes(row: &[u8], x: &[f32], cols: usize, out: &[f32]) {
    debug_assert!(
        cols.is_multiple_of(Q4_BLOCK),
        "cols {cols} not block-aligned"
    );
    debug_assert_eq!(row.len(), cols / Q4_BLOCK * Q4_BLOCK_BYTES, "row bytes");
    debug_assert_eq!(x.len(), out.len() * cols, "activation shape");
}

/// The scalar reference implementation: byte-for-byte the pre-dispatch
/// loops of `qgemv_into`/`qgemm_into` (block-outer, four-token tiles with
/// independent accumulation chains, strictly sequential per-token adds).
#[derive(Debug, Clone, Copy)]
pub struct Scalar;

impl KernelBackend for Scalar {
    fn kind(&self) -> KernelBackendKind {
        KernelBackendKind::Scalar
    }

    fn qdot_row(&self, row: &[u8], x: &[f32], cols: usize, out: &mut [f32]) {
        check_shapes(row, x, cols, out);
        let tokens = out.len();
        let blocks = cols / Q4_BLOCK;
        let mut buf = [0.0f32; Q4_BLOCK];
        out.fill(0.0);
        for b in 0..blocks {
            decode_block(&row[b * Q4_BLOCK_BYTES..(b + 1) * Q4_BLOCK_BYTES], &mut buf);
            let col0 = b * Q4_BLOCK;
            let mut t = 0;
            while t + 4 <= tokens {
                let x0 = &x[t * cols + col0..][..Q4_BLOCK];
                let x1 = &x[(t + 1) * cols + col0..][..Q4_BLOCK];
                let x2 = &x[(t + 2) * cols + col0..][..Q4_BLOCK];
                let x3 = &x[(t + 3) * cols + col0..][..Q4_BLOCK];
                let mut a0 = out[t];
                let mut a1 = out[t + 1];
                let mut a2 = out[t + 2];
                let mut a3 = out[t + 3];
                for i in 0..Q4_BLOCK {
                    let w = buf[i];
                    a0 += w * x0[i];
                    a1 += w * x1[i];
                    a2 += w * x2[i];
                    a3 += w * x3[i];
                }
                out[t] = a0;
                out[t + 1] = a1;
                out[t + 2] = a2;
                out[t + 3] = a3;
                t += 4;
            }
            while t < tokens {
                let xs = &x[t * cols + col0..][..Q4_BLOCK];
                let mut acc = out[t];
                for (wv, xv) in buf.iter().zip(xs.iter()) {
                    acc += wv * xv;
                }
                out[t] = acc;
                t += 1;
            }
        }
    }
}

/// How many tokens the SIMD paths process per tile (per-token accumulators
/// held in registers across the whole row).
const SIMD_TILE: usize = 4;

/// Reduces the eight lane accumulators with the fixed tree the AVX2
/// horizontal sum produces: `extract`+`add` folds lane `j` with `j+4`,
/// `movehl`+`add` folds pairs, and the final scalar add joins the halves.
/// Portable replicates it so the two SIMD paths agree bit for bit.
#[inline]
fn reduce8(l: &[f32; 8]) -> f32 {
    ((l[0] + l[4]) + (l[2] + l[6])) + ((l[1] + l[5]) + (l[3] + l[7]))
}

/// The portable eight-lane implementation (see
/// [`KernelBackendKind::Portable`]): plain indexed loops over fixed-size
/// lane arrays, which LLVM auto-vectorizes on any target with 128/256-bit
/// vectors, and which executes correctly (if scalar) everywhere else.
#[derive(Debug, Clone, Copy)]
pub struct Portable;

impl KernelBackend for Portable {
    fn kind(&self) -> KernelBackendKind {
        KernelBackendKind::Portable
    }

    fn qdot_row(&self, row: &[u8], x: &[f32], cols: usize, out: &mut [f32]) {
        check_shapes(row, x, cols, out);
        let tokens = out.len();
        let blocks = cols / Q4_BLOCK;
        let mut buf = [0.0f32; Q4_BLOCK];
        let mut t = 0;
        while t < tokens {
            let tile = (tokens - t).min(SIMD_TILE);
            let mut lanes = [[0.0f32; 8]; SIMD_TILE];
            for b in 0..blocks {
                decode_block(&row[b * Q4_BLOCK_BYTES..(b + 1) * Q4_BLOCK_BYTES], &mut buf);
                let col0 = b * Q4_BLOCK;
                for (j, lane) in lanes.iter_mut().enumerate().take(tile) {
                    let xs = &x[(t + j) * cols + col0..][..Q4_BLOCK];
                    for g in 0..Q4_BLOCK / 8 {
                        for k in 0..8 {
                            lane[k] += buf[g * 8 + k] * xs[g * 8 + k];
                        }
                    }
                }
            }
            for (j, lane) in lanes.iter().enumerate().take(tile) {
                out[t + j] = reduce8(lane);
            }
            t += tile;
        }
    }
}

/// The AVX2 implementation (see [`KernelBackendKind::Avx2`]). Constructed
/// only through [`KernelBackendKind::resolve`], which verifies AVX2 via
/// `is_x86_feature_detected!` first.
#[cfg(target_arch = "x86_64")]
#[derive(Debug, Clone, Copy)]
pub struct Avx2;

#[cfg(target_arch = "x86_64")]
impl KernelBackend for Avx2 {
    fn kind(&self) -> KernelBackendKind {
        KernelBackendKind::Avx2
    }

    fn qdot_row(&self, row: &[u8], x: &[f32], cols: usize, out: &mut [f32]) {
        check_shapes(row, x, cols, out);
        // SAFETY: `Avx2` is only handed out by `resolve()` after
        // `is_x86_feature_detected!("avx2")` returned true, so the
        // target-feature function below is safe to call on this host.
        #[allow(unsafe_code)]
        unsafe {
            qdot_row_avx2(row, x, cols, out)
        }
    }
}

/// The AVX2 inner loop. Per 32-weight block: one 16-byte load, nibble
/// unpack (`and 0x0f` for even elements, `shift`+`and` for odd,
/// `unpacklo/hi_epi8` restoring the interleaved element order of
/// `decode_block`), four zero-extending widens to `i32`, subtract 8,
/// convert to `f32` and scale — an exact dequantization — then one
/// `mul`+`add` (never FMA) per eight-lane group into per-token
/// accumulators that live across the whole row.
///
/// # Safety
///
/// Requires AVX2 at runtime (the caller checks via feature detection).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(unsafe_code)]
unsafe fn qdot_row_avx2(row: &[u8], x: &[f32], cols: usize, out: &mut [f32]) {
    use std::arch::x86_64::*;

    let tokens = out.len();
    let blocks = cols / Q4_BLOCK;
    let low_nibble = _mm_set1_epi8(0x0f);
    let minus8 = _mm256_set1_epi32(8);

    let mut t = 0;
    while t < tokens {
        let tile = (tokens - t).min(SIMD_TILE);
        let mut acc = [_mm256_setzero_ps(); SIMD_TILE];
        for b in 0..blocks {
            let blk = &row[b * Q4_BLOCK_BYTES..(b + 1) * Q4_BLOCK_BYTES];
            let scale = f32::from_le_bytes([blk[0], blk[1], blk[2], blk[3]]);
            let vscale = _mm256_set1_ps(scale);
            // SAFETY: `blk` holds the 4-byte scale plus exactly 16 nibble
            // bytes; the unaligned 128-bit load reads those 16 bytes.
            let raw = _mm_loadu_si128(blk[4..].as_ptr() as *const __m128i);
            let lo = _mm_and_si128(raw, low_nibble);
            let hi = _mm_and_si128(_mm_srli_epi16::<4>(raw), low_nibble);
            // Interleave restores decode order: element 2i is byte i's low
            // nibble, element 2i+1 its high nibble.
            let il_lo = _mm_unpacklo_epi8(lo, hi); // elements 0..16
            let il_hi = _mm_unpackhi_epi8(lo, hi); // elements 16..32
            let groups = [
                _mm256_cvtepu8_epi32(il_lo),
                _mm256_cvtepu8_epi32(_mm_srli_si128::<8>(il_lo)),
                _mm256_cvtepu8_epi32(il_hi),
                _mm256_cvtepu8_epi32(_mm_srli_si128::<8>(il_hi)),
            ];
            let w = groups
                .map(|g| _mm256_mul_ps(_mm256_cvtepi32_ps(_mm256_sub_epi32(g, minus8)), vscale));
            let col0 = b * Q4_BLOCK;
            for (j, acc_j) in acc.iter_mut().enumerate().take(tile) {
                let xs = x[(t + j) * cols + col0..].as_ptr();
                for (g, wg) in w.iter().enumerate() {
                    // SAFETY: `xs` points at `Q4_BLOCK` in-bounds floats
                    // (shape-checked above); each group reads eight.
                    let xv = _mm256_loadu_ps(xs.add(g * 8));
                    *acc_j = _mm256_add_ps(*acc_j, _mm256_mul_ps(*wg, xv));
                }
            }
        }
        for (j, acc_j) in acc.iter().enumerate().take(tile) {
            // The fixed reduction tree `reduce8` mirrors: fold lane j with
            // j+4, then pairs, then the two halves.
            let lo128 = _mm256_castps256_ps128(*acc_j);
            let hi128 = _mm256_extractf128_ps::<1>(*acc_j);
            let s = _mm_add_ps(lo128, hi128);
            let s2 = _mm_add_ps(s, _mm_movehl_ps(s, s));
            let s3 = _mm_add_ss(s2, _mm_shuffle_ps::<0x55>(s2, s2));
            out[t + j] = _mm_cvtss_f32(s3);
        }
        t += tile;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::QuantizedMatrix;

    fn pseudo(n: usize, seed: u32) -> Vec<f32> {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                ((state >> 8) as f32 / (1u32 << 24) as f32) - 0.5
            })
            .collect()
    }

    /// `f64` ground truth for one row × one token.
    fn dot_f64(w: &[f32], x: &[f32]) -> f64 {
        w.iter()
            .zip(x.iter())
            .map(|(a, b)| *a as f64 * *b as f64)
            .sum()
    }

    fn row_bytes(q: &QuantizedMatrix, r: usize) -> Vec<u8> {
        let bpr = q.cols() / Q4_BLOCK * Q4_BLOCK_BYTES;
        q.data()[r * bpr..(r + 1) * bpr].to_vec()
    }

    #[test]
    fn kind_round_trips_through_names() {
        for kind in [
            KernelBackendKind::Auto,
            KernelBackendKind::Scalar,
            KernelBackendKind::Portable,
            KernelBackendKind::Avx2,
        ] {
            assert_eq!(KernelBackendKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(
            KernelBackendKind::parse("AVX2"),
            Some(KernelBackendKind::Avx2)
        );
        assert_eq!(KernelBackendKind::parse("neon"), None);
    }

    #[test]
    fn explicit_kinds_resolve_to_themselves_or_scalar() {
        assert_eq!(
            KernelBackendKind::Scalar.resolve().kind(),
            KernelBackendKind::Scalar
        );
        assert_eq!(
            KernelBackendKind::Portable.resolve().kind(),
            KernelBackendKind::Portable
        );
        let avx2 = KernelBackendKind::Avx2.resolved();
        if avx2_available() {
            assert_eq!(avx2, KernelBackendKind::Avx2);
        } else {
            assert_eq!(avx2, KernelBackendKind::Scalar, "clean scalar fallback");
        }
    }

    #[test]
    fn auto_resolves_to_a_concrete_backend() {
        let kind = KernelBackendKind::Auto.resolve().kind();
        assert_ne!(kind, KernelBackendKind::Auto);
    }

    #[test]
    fn available_always_includes_the_reference() {
        let kinds: Vec<_> = available().iter().map(|b| b.kind()).collect();
        assert!(kinds.contains(&KernelBackendKind::Scalar));
        assert!(kinds.contains(&KernelBackendKind::Portable));
        assert_eq!(kinds.contains(&KernelBackendKind::Avx2), avx2_available());
    }

    #[test]
    fn every_backend_stays_within_the_reassociation_bound_of_f64_truth() {
        let (rows, cols) = (7, 96);
        let q = QuantizedMatrix::quantize(&pseudo(rows * cols, 21), rows, cols).unwrap();
        let dense = q.dequantize();
        for tokens in [1usize, 2, 4, 5, 9] {
            let x = pseudo(tokens * cols, 22);
            for backend in available() {
                let mut out = vec![0.0f32; tokens];
                for r in 0..rows {
                    let row = row_bytes(&q, r);
                    backend.qdot_row(&row, &x, cols, &mut out);
                    for (t, got) in out.iter().enumerate() {
                        let w = &dense[r * cols..(r + 1) * cols];
                        let truth = dot_f64(w, &x[t * cols..(t + 1) * cols]);
                        let mag: f64 = w
                            .iter()
                            .zip(&x[t * cols..(t + 1) * cols])
                            .map(|(a, b)| (*a as f64 * *b as f64).abs())
                            .sum();
                        let bound = (cols as f64) * f64::from(f32::EPSILON) * mag + 1e-12;
                        assert!(
                            ((*got as f64) - truth).abs() <= bound,
                            "{:?} r={r} t={t}: {got} vs {truth} (bound {bound})",
                            backend.kind()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn portable_and_avx2_are_bit_identical() {
        if !avx2_available() {
            return;
        }
        let (rows, cols) = (5, 160);
        let q = QuantizedMatrix::quantize(&pseudo(rows * cols, 31), rows, cols).unwrap();
        let avx2 = KernelBackendKind::Avx2.resolve();
        for tokens in [1usize, 3, 4, 6, 8] {
            let x = pseudo(tokens * cols, 32);
            for r in 0..rows {
                let row = row_bytes(&q, r);
                let mut a = vec![0.0f32; tokens];
                let mut b = vec![0.0f32; tokens];
                Portable.qdot_row(&row, &x, cols, &mut a);
                avx2.qdot_row(&row, &x, cols, &mut b);
                assert_eq!(a, b, "r={r} tokens={tokens}");
            }
        }
    }

    #[test]
    fn batched_and_single_token_calls_agree_within_each_backend() {
        let (rows, cols, tokens) = (4, 64, 7);
        let q = QuantizedMatrix::quantize(&pseudo(rows * cols, 41), rows, cols).unwrap();
        let x = pseudo(tokens * cols, 42);
        for backend in available() {
            for r in 0..rows {
                let row = row_bytes(&q, r);
                let mut batched = vec![0.0f32; tokens];
                backend.qdot_row(&row, &x, cols, &mut batched);
                for t in 0..tokens {
                    let mut one = [0.0f32; 1];
                    backend.qdot_row(&row, &x[t * cols..(t + 1) * cols], cols, &mut one);
                    assert_eq!(
                        one[0].to_bits(),
                        batched[t].to_bits(),
                        "{:?} r={r} t={t}",
                        backend.kind()
                    );
                }
            }
        }
    }

    #[test]
    fn scalar_backend_overwrites_stale_output() {
        let cols = Q4_BLOCK;
        let q = QuantizedMatrix::quantize(&pseudo(cols, 51), 1, cols).unwrap();
        let x = pseudo(cols, 52);
        for backend in available() {
            let mut dirty = vec![123.0f32; 1];
            backend.qdot_row(&row_bytes(&q, 0), &x, cols, &mut dirty);
            let mut clean = vec![0.0f32; 1];
            backend.qdot_row(&row_bytes(&q, 0), &x, cols, &mut clean);
            assert_eq!(dirty, clean, "{:?}", backend.kind());
        }
    }
}
