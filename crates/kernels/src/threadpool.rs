//! Minimal data-parallel helper built on scoped threads.
//!
//! The expert kernels split their row ranges across a small number of worker
//! threads, mirroring how llama.cpp splits expert GEMMs across the CPU cores
//! the deployment allows (the paper restricts the Xeon to 10 cores, §VI-A1).

use std::num::NonZeroUsize;

/// Runs `body(range_start, range_end)` over `0..n` split into contiguous
/// chunks across up to `threads` worker threads.
///
/// `body` must be safe to call concurrently on disjoint ranges. With
/// `threads == 1` (or tiny `n`) the body runs inline with no thread overhead.
///
/// # Example
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use hybrimoe_kernels::parallel_for;
///
/// let sum = AtomicUsize::new(0);
/// parallel_for(100, 4, |a, b| {
///     sum.fetch_add((a..b).sum::<usize>(), Ordering::Relaxed);
/// });
/// assert_eq!(sum.load(Ordering::Relaxed), (0..100).sum());
/// ```
pub fn parallel_for<F>(n: usize, threads: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 || n < 2 {
        body(0, n);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(n);
            if start >= end {
                break;
            }
            let body = &body;
            scope.spawn(move || body(start, end));
        }
    });
}

/// The number of worker threads to use by default: the machine's available
/// parallelism, capped at `cap`.
///
/// # Example
///
/// ```
/// let t = hybrimoe_kernels::threadpool::default_threads(10);
/// assert!(t >= 1 && t <= 10);
/// ```
pub fn default_threads(cap: usize) -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(cap.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn covers_whole_range_once() {
        for threads in [1, 2, 3, 8] {
            for n in [0, 1, 7, 64, 100] {
                let hits = (0..n).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
                parallel_for(n, threads, |a, b| {
                    for hit in &hits[a..b] {
                        hit.fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "n={n} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn single_thread_runs_inline() {
        let mut touched = false;
        // A FnMut would not compile with real threads; the inline path is
        // exercised through an atomic to keep the closure Fn.
        let flag = AtomicUsize::new(0);
        parallel_for(1, 1, |a, b| {
            assert_eq!((a, b), (0, 1));
            flag.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            touched = true;
        }
        assert!(touched);
    }

    #[test]
    fn default_threads_bounds() {
        assert!(default_threads(1) == 1);
        assert!(default_threads(4) <= 4);
        assert!(default_threads(0) >= 1);
    }
}
