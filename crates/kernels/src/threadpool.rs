//! Data-parallel helpers: scoped-thread [`parallel_for`] and the persistent
//! [`WorkerPool`].
//!
//! The expert kernels split their row ranges across a small number of worker
//! threads, mirroring how llama.cpp splits expert GEMMs across the CPU cores
//! the deployment allows (the paper restricts the Xeon to 10 cores, §VI-A1).
//! [`parallel_for`] spawns scoped threads per call — simple, but the spawn
//! cost dwarfs a microsecond-scale kernel. A [`WorkerPool`] spawns its
//! workers once and parks them between calls, so the steady-state dispatch
//! cost is one mutex round-trip per call.

use std::num::NonZeroUsize;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Runs `body(range_start, range_end)` over `0..n` split into contiguous
/// chunks across up to `threads` worker threads.
///
/// `body` must be safe to call concurrently on disjoint ranges. With
/// `threads == 1` (or tiny `n`) the body runs inline with no thread overhead.
///
/// # Example
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use hybrimoe_kernels::parallel_for;
///
/// let sum = AtomicUsize::new(0);
/// parallel_for(100, 4, |a, b| {
///     sum.fetch_add((a..b).sum::<usize>(), Ordering::Relaxed);
/// });
/// assert_eq!(sum.load(Ordering::Relaxed), (0..100).sum());
/// ```
pub fn parallel_for<F>(n: usize, threads: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 || n < 2 {
        body(0, n);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(n);
            if start >= end {
                break;
            }
            let body = &body;
            scope.spawn(move || body(start, end));
        }
    });
}

/// A type-erased pointer to the body closure of the job in flight.
///
/// The pointee is borrowed from the stack frame of [`WorkerPool::run`],
/// which blocks until every worker has acknowledged the job's epoch — so
/// the pointer never outlives the borrow it was erased from.
#[derive(Clone, Copy)]
struct Job {
    /// The caller's `body` closure, lifetime-erased (see the type docs).
    body: *const (dyn Fn(usize, usize, usize) + Sync),
    /// Iteration-space length.
    n: usize,
    /// Contiguous chunk length per part.
    chunk: usize,
    /// Number of parts the space is split into (`<= threads`).
    parts: usize,
}

// SAFETY: the raw pointer is only dereferenced by workers between the epoch
// bump in `run` and their acknowledgement; `run` does not return (and the
// pointee is not dropped) until every acknowledgement arrived, and the
// pointee is `Sync`, so sharing it across the pool threads is sound.
#[allow(unsafe_code)]
unsafe impl Send for Job {}

/// Shared state between the pool handle and its parked workers.
struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here between jobs.
    start: Condvar,
    /// The caller parks here until every worker acknowledged the epoch.
    done: Condvar,
}

struct PoolState {
    /// Bumped once per job; workers run a job exactly once per epoch.
    epoch: u64,
    job: Option<Job>,
    /// Workers yet to acknowledge the current epoch.
    remaining: usize,
    /// A worker's body panicked during the current epoch (caught and
    /// re-raised by the caller so the pool itself survives).
    worker_panicked: bool,
    shutdown: bool,
}

/// Locks a possibly-poisoned mutex: the pool's own invariants never depend
/// on data guarded across a panic (workers run the body *outside* the
/// lock), so a poisoned lock is still safe to use.
fn lock_state(shared: &PoolShared) -> std::sync::MutexGuard<'_, PoolState> {
    shared
        .state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A persistent pool of parked worker threads for the expert kernels.
///
/// [`parallel_for`] pays a full OS-thread spawn per worker per call — fine
/// for coarse jobs, ruinous when a decode-sized `qgemv` takes tens of
/// microseconds. A `WorkerPool` spawns `threads - 1` workers once (the
/// calling thread is the remaining worker) and parks them on a condvar
/// between calls, so [`WorkerPool::run`] costs one lock/notify round-trip.
///
/// `run` splits `0..n` into up to `threads` contiguous chunks and calls
/// `body(part, start, end)` for each, exactly like [`parallel_for`] but
/// with the part index exposed so callers can pre-partition output buffers.
/// `run` must not be called reentrantly from inside `body`.
///
/// `run` is panic-safe: if `body` panics on any thread, the call still
/// waits for every other part to finish (the borrowed closure must outlive
/// all its users) and then panics on the calling thread; the pool remains
/// usable afterwards.
///
/// # Example
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use hybrimoe_kernels::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let sum = AtomicUsize::new(0);
/// pool.run(100, |_part, a, b| {
///     sum.fetch_add((a..b).sum::<usize>(), Ordering::Relaxed);
/// });
/// assert_eq!(sum.load(Ordering::Relaxed), (0..100).sum());
/// ```
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `threads` total workers (`threads - 1` OS threads;
    /// the thread calling [`WorkerPool::run`] is the first worker). A pool
    /// of 1 spawns nothing and runs every job inline.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                remaining: 0,
                worker_panicked: false,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|part| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hybrimoe-kern-{part}"))
                    .spawn(move || worker_loop(&shared, part))
                    .expect("worker thread spawns")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Total parallelism of the pool (spawned workers + the caller).
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// How [`WorkerPool::run`] will split `0..n`: `(parts, chunk)` with
    /// part `p` covering `p * chunk .. min(n, (p + 1) * chunk)`. Callers
    /// use this to pre-partition output buffers into matching bands.
    pub fn partition(&self, n: usize) -> (usize, usize) {
        let parts = self.threads().min(n.max(1));
        (parts, n.div_ceil(parts.max(1)).max(1))
    }

    /// Runs `body(part, start, end)` over `0..n` split into contiguous
    /// chunks across the pool (see [`WorkerPool::partition`]). Blocks until
    /// every part has finished. `body` must be safe to call concurrently on
    /// disjoint ranges.
    pub fn run<F>(&self, n: usize, body: F)
    where
        F: Fn(usize, usize, usize) + Sync,
    {
        let (parts, chunk) = self.partition(n);
        if parts <= 1 || self.workers.is_empty() {
            body(0, 0, n);
            return;
        }

        let erased: &(dyn Fn(usize, usize, usize) + Sync) = &body;
        // SAFETY: lifetime erasure only — same layout, and the wait loop
        // below guarantees no worker holds the pointer once `run` returns
        // (see the `Job` safety notes).
        #[allow(unsafe_code)]
        let body_ptr = unsafe {
            std::mem::transmute::<
                &(dyn Fn(usize, usize, usize) + Sync),
                &'static (dyn Fn(usize, usize, usize) + Sync),
            >(erased)
        } as *const (dyn Fn(usize, usize, usize) + Sync);

        {
            let mut state = lock_state(&self.shared);
            state.job = Some(Job {
                body: body_ptr,
                n,
                chunk,
                parts,
            });
            state.epoch = state.epoch.wrapping_add(1);
            state.remaining = self.workers.len();
            state.worker_panicked = false;
        }
        self.shared.start.notify_all();

        // Even if the caller's part panics below, unwinding out of `run`
        // must not free the erased closure while workers still hold it:
        // this guard waits for every acknowledgement on the way out.
        struct WaitGuard<'a>(&'a PoolShared);
        impl Drop for WaitGuard<'_> {
            fn drop(&mut self) {
                let mut state = lock_state(self.0);
                while state.remaining != 0 {
                    state = self
                        .0
                        .done
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                state.job = None;
            }
        }
        let wait = WaitGuard(&self.shared);

        // The calling thread is part 0.
        body(0, 0, chunk.min(n));

        drop(wait);
        if lock_state(&self.shared).worker_panicked {
            panic!("WorkerPool: a worker's body panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = lock_state(&self.shared);
            state.shutdown = true;
        }
        self.shared.start.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, part: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut state = lock_state(shared);
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen_epoch {
                    seen_epoch = state.epoch;
                    break state.job;
                }
                state = shared
                    .start
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        if let Some(job) = job {
            if part < job.parts {
                let start = part * job.chunk;
                let end = ((part + 1) * job.chunk).min(job.n);
                if start < end {
                    // SAFETY: the caller is blocked in `run` (or its wait
                    // guard) until this epoch is acknowledged below, so
                    // the erased borrow is still live (see the `Job`
                    // safety notes).
                    #[allow(unsafe_code)]
                    let body = unsafe { &*job.body };
                    // A panicking body must still acknowledge the epoch
                    // (the caller waits on `remaining`); catch it and let
                    // the caller re-raise.
                    if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        body(part, start, end)
                    }))
                    .is_err()
                    {
                        lock_state(shared).worker_panicked = true;
                    }
                }
            }
        }
        let mut state = lock_state(shared);
        state.remaining -= 1;
        if state.remaining == 0 {
            shared.done.notify_one();
        }
    }
}

/// The number of worker threads to use by default: the machine's available
/// parallelism, capped at `cap`.
///
/// # Example
///
/// ```
/// let t = hybrimoe_kernels::threadpool::default_threads(10);
/// assert!(t >= 1 && t <= 10);
/// ```
pub fn default_threads(cap: usize) -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(cap.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn covers_whole_range_once() {
        for threads in [1, 2, 3, 8] {
            for n in [0, 1, 7, 64, 100] {
                let hits = (0..n).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
                parallel_for(n, threads, |a, b| {
                    for hit in &hits[a..b] {
                        hit.fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "n={n} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn single_thread_runs_inline() {
        let mut touched = false;
        // A FnMut would not compile with real threads; the inline path is
        // exercised through an atomic to keep the closure Fn.
        let flag = AtomicUsize::new(0);
        parallel_for(1, 1, |a, b| {
            assert_eq!((a, b), (0, 1));
            flag.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            touched = true;
        }
        assert!(touched);
    }

    #[test]
    fn default_threads_bounds() {
        assert!(default_threads(1) == 1);
        assert!(default_threads(4) <= 4);
        assert!(default_threads(0) >= 1);
    }

    #[test]
    fn pool_covers_whole_range_once() {
        for threads in [1, 2, 3, 8] {
            let pool = WorkerPool::new(threads);
            assert_eq!(pool.threads(), threads);
            for n in [0, 1, 7, 64, 100] {
                let hits = (0..n).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
                pool.run(n, |_part, a, b| {
                    for hit in &hits[a..b] {
                        hit.fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "n={n} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn pool_parts_match_partition() {
        let pool = WorkerPool::new(3);
        let (parts, chunk) = pool.partition(10);
        assert_eq!(parts, 3);
        assert_eq!(chunk, 4);
        let seen = std::sync::Mutex::new(Vec::new());
        pool.run(10, |part, a, b| {
            seen.lock().unwrap().push((part, a, b));
        });
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 0, 4), (1, 4, 8), (2, 8, 10)]);
    }

    #[test]
    fn pool_is_reusable_across_many_jobs() {
        // The park/unpark protocol must survive rapid back-to-back jobs
        // (each run is one epoch; stale acknowledgements would deadlock).
        let pool = WorkerPool::new(4);
        let sum = AtomicUsize::new(0);
        for _ in 0..200 {
            pool.run(17, |_p, a, b| {
                sum.fetch_add(b - a, Ordering::Relaxed);
            });
        }
        assert_eq!(sum.load(Ordering::Relaxed), 200 * 17);
    }

    #[test]
    fn pool_survives_panicking_bodies() {
        let pool = WorkerPool::new(3);
        // Panic on a worker part: run re-raises on the caller, workers
        // acknowledge, and the pool stays usable.
        let worker_panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(10, |_p, a, _b| {
                if a >= 4 {
                    panic!("boom on worker");
                }
            });
        }));
        assert!(worker_panic.is_err());
        // Panic on the caller's own part: the wait guard still collects
        // every worker before the unwind leaves `run`.
        let caller_panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(10, |_p, a, _b| {
                if a == 0 {
                    panic!("boom on caller");
                }
            });
        }));
        assert!(caller_panic.is_err());
        let sum = AtomicUsize::new(0);
        pool.run(10, |_p, a, b| {
            sum.fetch_add(b - a, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn pool_of_one_runs_inline() {
        let pool = WorkerPool::new(1);
        let flag = AtomicUsize::new(0);
        pool.run(5, |part, a, b| {
            assert_eq!((part, a, b), (0, 0, 5));
            flag.store(1, Ordering::Relaxed);
        });
        assert_eq!(flag.load(Ordering::Relaxed), 1);
        assert_eq!(pool.partition(0), (1, 1));
    }
}
