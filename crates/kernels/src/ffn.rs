//! The SwiGLU expert feed-forward network.
//!
//! Every routed and shared expert in Mixtral, DeepSeek-V2 and Qwen2 is a
//! gated FFN: `y = W_down · (silu(W_gate · x) ⊙ (W_up · x))` with
//! `W_gate, W_up : inter x hidden` and `W_down : hidden x inter`. This module
//! implements that forward pass over `Q4_0` weights, the unit of work that
//! the hybrid scheduler assigns to the CPU.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::gemm::swiglu_gate;
use crate::quant::{QuantError, QuantizedMatrix};
use crate::threadpool::WorkerPool;

/// Reusable scratch for the allocation-free expert forward passes.
///
/// [`ExpertFfn::forward_batch`] allocates four intermediates per call; on
/// the real-execution hot path that churn (one batch per expert per layer
/// per step) is pure overhead. An `ExecScratch` owns those buffers and is
/// resized — not freed — between calls, mirroring the scheduler's
/// `ScheduleScratch`. Thread one instance through the executor and pass it
/// to [`ExpertFfn::forward_batch_into`].
///
/// # Example
///
/// ```
/// use hybrimoe_kernels::{backend, ExecScratch, ExpertFfn, WorkerPool};
///
/// let ffn = ExpertFfn::random(64, 96, 7);
/// let pool = WorkerPool::new(2);
/// let mut scratch = ExecScratch::new();
/// let x = vec![0.05_f32; 2 * 64];
/// let mut y = vec![0.0_f32; 2 * 64];
/// ffn.forward_batch_into(&x, 2, &mut y, &mut scratch, &pool, backend::scalar());
/// assert_eq!(y, ffn.forward_batch(&x, 2, 1));
/// ```
#[derive(Debug, Default, Clone)]
pub struct ExecScratch {
    /// Gate projection output, `tokens x inter`.
    g: Vec<f32>,
    /// Up projection output, `tokens x inter`.
    u: Vec<f32>,
    /// SwiGLU gating product, `tokens x inter`.
    h: Vec<f32>,
    /// Row-major GEMM intermediate shared by the three projections.
    band: Vec<f32>,
}

impl ExecScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        ExecScratch::default()
    }
}

/// One expert's quantized weights and its forward pass.
///
/// # Example
///
/// ```
/// use hybrimoe_kernels::ExpertFfn;
///
/// let ffn = ExpertFfn::random(64, 96, 7);
/// let x = vec![0.05_f32; 64];
/// let y = ffn.forward(&x);
/// assert_eq!(y.len(), 64);
/// assert!(y.iter().all(|v| v.is_finite()));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpertFfn {
    hidden: usize,
    inter: usize,
    w_gate: QuantizedMatrix,
    w_up: QuantizedMatrix,
    w_down: QuantizedMatrix,
}

impl ExpertFfn {
    /// Builds an expert from dense weights, quantizing them to `Q4_0`.
    ///
    /// `w_gate` and `w_up` are `inter x hidden`; `w_down` is `hidden x
    /// inter`, all row-major.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError`] if either dimension is not a multiple of the
    /// quantization block or a slice length is wrong.
    pub fn from_dense(
        hidden: usize,
        inter: usize,
        w_gate: &[f32],
        w_up: &[f32],
        w_down: &[f32],
    ) -> Result<Self, QuantError> {
        Ok(ExpertFfn {
            hidden,
            inter,
            w_gate: QuantizedMatrix::quantize(w_gate, inter, hidden)?,
            w_up: QuantizedMatrix::quantize(w_up, inter, hidden)?,
            w_down: QuantizedMatrix::quantize(w_down, hidden, inter)?,
        })
    }

    /// Generates an expert with random weights scaled like a trained model
    /// (`N(0, 1/sqrt(fan_in))` approximated by a scaled uniform).
    ///
    /// # Panics
    ///
    /// Panics if `hidden` or `inter` is not a multiple of
    /// [`Q4_BLOCK`](crate::Q4_BLOCK).
    pub fn random(hidden: usize, inter: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let scale_h = (1.0 / (hidden as f32)).sqrt();
        let scale_i = (1.0 / (inter as f32)).sqrt();
        let mut gen =
            |n: usize, s: f32| -> Vec<f32> { (0..n).map(|_| rng.gen_range(-s..s)).collect() };
        let w_gate = gen(inter * hidden, scale_h);
        let w_up = gen(inter * hidden, scale_h);
        let w_down = gen(hidden * inter, scale_i);
        ExpertFfn::from_dense(hidden, inter, &w_gate, &w_up, &w_down)
            .expect("dimensions must be block-aligned")
    }

    /// Hidden (model) dimension.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Intermediate dimension.
    pub fn inter(&self) -> usize {
        self.inter
    }

    /// Packed weight bytes across the three matrices.
    pub fn packed_bytes(&self) -> usize {
        self.w_gate.packed_bytes() + self.w_up.packed_bytes() + self.w_down.packed_bytes()
    }

    /// FLOPs for one token's forward pass (two FLOPs per multiply-add).
    pub fn flops_per_token(&self) -> u64 {
        // gate + up + down GEMVs.
        3 * 2 * self.hidden as u64 * self.inter as u64
    }

    /// Single-token forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != hidden()`.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        self.forward_threads(x, 1)
    }

    /// Single-token forward pass using up to `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != hidden()`.
    pub fn forward_threads(&self, x: &[f32], threads: usize) -> Vec<f32> {
        assert_eq!(x.len(), self.hidden, "input dimension mismatch");
        let mut g = vec![0.0f32; self.inter];
        let mut u = vec![0.0f32; self.inter];
        self.w_gate.qgemv(x, &mut g, threads);
        self.w_up.qgemv(x, &mut u, threads);
        let mut h = vec![0.0f32; self.inter];
        swiglu_gate(&g, &u, &mut h);
        let mut y = vec![0.0f32; self.hidden];
        self.w_down.qgemv(&h, &mut y, threads);
        y
    }

    /// Batched forward pass: `x` is `tokens x hidden` row-major, the result
    /// is `tokens x hidden` row-major.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != tokens * hidden()`.
    pub fn forward_batch(&self, x: &[f32], tokens: usize, threads: usize) -> Vec<f32> {
        assert_eq!(x.len(), tokens * self.hidden, "input shape mismatch");
        let mut g = vec![0.0f32; tokens * self.inter];
        let mut u = vec![0.0f32; tokens * self.inter];
        self.w_gate.qgemm(x, tokens, &mut g, threads);
        self.w_up.qgemm(x, tokens, &mut u, threads);
        let mut h = vec![0.0f32; tokens * self.inter];
        swiglu_gate(&g, &u, &mut h);
        let mut y = vec![0.0f32; tokens * self.hidden];
        self.w_down.qgemm(&h, tokens, &mut y, threads);
        y
    }

    /// [`ExpertFfn::forward_batch`] into a caller-owned output with reusable
    /// scratch, running on a persistent [`WorkerPool`]: zero allocations on
    /// the steady-state path, and each Q4 block of the three weight
    /// matrices is dequantized once per call instead of once per token.
    /// The dequant+dot inner loop is dispatched to `backend`; with the
    /// scalar backend ([`crate::backend::scalar`]) per-token results are
    /// bit-identical to [`ExpertFfn::forward_threads`] (see
    /// [`QuantizedMatrix::qgemm_into`]), and every backend computes the
    /// single-token fast path and the batched path with the same
    /// accumulation order.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != tokens * hidden()` or
    /// `y.len() != tokens * hidden()`.
    pub fn forward_batch_into(
        &self,
        x: &[f32],
        tokens: usize,
        y: &mut [f32],
        scratch: &mut ExecScratch,
        pool: &WorkerPool,
        backend: &dyn crate::backend::KernelBackend,
    ) {
        assert_eq!(x.len(), tokens * self.hidden, "input shape mismatch");
        assert_eq!(y.len(), tokens * self.hidden, "output shape mismatch");
        let inter = tokens * self.inter;
        scratch.g.resize(inter, 0.0);
        scratch.u.resize(inter, 0.0);
        scratch.h.resize(inter, 0.0);
        if tokens == 1 {
            // Single-token fast path: the GEMV writes row-major output
            // directly, skipping the GEMM's band intermediate and its
            // token-major scatter. Bit-identical to the batched path
            // within any backend (`qdot_row` on one token is the batched
            // computation with a one-token tile).
            self.w_gate.qgemv_into(x, &mut scratch.g, pool, backend);
            self.w_up.qgemv_into(x, &mut scratch.u, pool, backend);
            swiglu_gate(&scratch.g, &scratch.u, &mut scratch.h);
            self.w_down.qgemv_into(&scratch.h, y, pool, backend);
            return;
        }
        self.w_gate
            .qgemm_into(x, tokens, &mut scratch.g, &mut scratch.band, pool, backend);
        self.w_up
            .qgemm_into(x, tokens, &mut scratch.u, &mut scratch.band, pool, backend);
        swiglu_gate(&scratch.g, &scratch.u, &mut scratch.h);
        self.w_down
            .qgemm_into(&scratch.h, tokens, y, &mut scratch.band, pool, backend);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_finiteness() {
        let ffn = ExpertFfn::random(32, 64, 1);
        let x = vec![0.1f32; 32];
        let y = ffn.forward(&x);
        assert_eq!(y.len(), 32);
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn deterministic_for_seed() {
        let a = ExpertFfn::random(32, 32, 42);
        let b = ExpertFfn::random(32, 32, 42);
        assert_eq!(a, b);
        let c = ExpertFfn::random(32, 32, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn batch_matches_single_token() {
        let ffn = ExpertFfn::random(32, 64, 2);
        let x: Vec<f32> = (0..3 * 32).map(|i| (i as f32 * 0.01).sin() * 0.1).collect();
        let batch = ffn.forward_batch(&x, 3, 2);
        for t in 0..3 {
            let single = ffn.forward(&x[t * 32..(t + 1) * 32]);
            for i in 0..32 {
                assert!((batch[t * 32 + i] - single[i]).abs() < 1e-4, "t={t} i={i}");
            }
        }
    }

    #[test]
    fn zero_input_gives_zero_output() {
        let ffn = ExpertFfn::random(32, 32, 3);
        let y = ffn.forward(&[0.0; 32]);
        assert!(y.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn flops_and_bytes_accounting() {
        let ffn = ExpertFfn::random(64, 96, 4);
        assert_eq!(ffn.flops_per_token(), 3 * 2 * 64 * 96);
        // 5 bits per weight over 3 matrices (Q4 nibbles + f32 block scale).
        let weights = 3 * 64 * 96;
        let expected = weights * 5 / 8;
        assert_eq!(ffn.packed_bytes(), expected);
    }

    #[test]
    fn multithreaded_forward_agrees() {
        let ffn = ExpertFfn::random(32, 64, 5);
        let x: Vec<f32> = (0..32).map(|i| (i as f32 * 0.1).cos() * 0.2).collect();
        let y1 = ffn.forward_threads(&x, 1);
        let y4 = ffn.forward_threads(&x, 4);
        for (a, b) in y1.iter().zip(y4.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn forward_rejects_bad_input() {
        let ffn = ExpertFfn::random(32, 32, 6);
        let _ = ffn.forward(&[0.0; 31]);
    }

    #[test]
    fn batch_into_is_bit_identical_to_forward_threads() {
        // The expert-major hot path must reproduce the token-major
        // reference bit for bit: per-token accumulation order is unchanged.
        let (hidden, inter) = (64, 96);
        let ffn = ExpertFfn::random(hidden, inter, 9);
        for tokens in [1usize, 3, 5, 8] {
            let x: Vec<f32> = (0..tokens * hidden)
                .map(|i| (i as f32 * 0.013).sin() * 0.2)
                .collect();
            for threads in [1, 2, 4] {
                let pool = crate::threadpool::WorkerPool::new(threads);
                let mut scratch = ExecScratch::new();
                let mut y = vec![0.0f32; tokens * hidden];
                ffn.forward_batch_into(
                    &x,
                    tokens,
                    &mut y,
                    &mut scratch,
                    &pool,
                    crate::backend::scalar(),
                );
                for t in 0..tokens {
                    let single = ffn.forward_threads(&x[t * hidden..(t + 1) * hidden], 1);
                    assert_eq!(
                        &y[t * hidden..(t + 1) * hidden],
                        &single[..],
                        "tokens={tokens} t={t} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_into_reuses_scratch_across_shapes() {
        let ffn = ExpertFfn::random(32, 64, 10);
        let pool = crate::threadpool::WorkerPool::new(2);
        let mut scratch = ExecScratch::new();
        // Shrinking and growing the batch between calls must not leak
        // stale values through the retained buffers.
        for tokens in [4usize, 1, 6, 2] {
            let x: Vec<f32> = (0..tokens * 32)
                .map(|i| (i as f32 * 0.07).cos() * 0.1)
                .collect();
            let mut y = vec![0.0f32; tokens * 32];
            ffn.forward_batch_into(
                &x,
                tokens,
                &mut y,
                &mut scratch,
                &pool,
                crate::backend::scalar(),
            );
            assert_eq!(y, ffn.forward_batch(&x, tokens, 1), "tokens={tokens}");
        }
    }

    #[test]
    fn batch_into_every_backend_is_close_to_the_scalar_oracle() {
        let (hidden, inter) = (64, 96);
        let ffn = ExpertFfn::random(hidden, inter, 11);
        let pool = crate::threadpool::WorkerPool::new(2);
        for tokens in [1usize, 4, 7] {
            let x: Vec<f32> = (0..tokens * hidden)
                .map(|i| (i as f32 * 0.017).sin() * 0.2)
                .collect();
            let mut reference = vec![0.0f32; tokens * hidden];
            let mut scratch = ExecScratch::new();
            ffn.forward_batch_into(
                &x,
                tokens,
                &mut reference,
                &mut scratch,
                &pool,
                crate::backend::scalar(),
            );
            for backend in crate::backend::available() {
                let mut y = vec![0.0f32; tokens * hidden];
                let mut scratch = ExecScratch::new();
                ffn.forward_batch_into(&x, tokens, &mut y, &mut scratch, &pool, backend);
                for (i, (a, b)) in y.iter().zip(reference.iter()).enumerate() {
                    assert!(
                        (a - b).abs() <= 1e-4,
                        "{:?} tokens={tokens} i={i}: {a} vs {b}",
                        backend.kind()
                    );
                }
            }
        }
    }
}
