//! # hybrimoe-kernels
//!
//! Real CPU compute kernels for quantized Mixture-of-Experts inference:
//!
//! * [`backend`] — runtime-dispatched SIMD backends (scalar reference,
//!   portable auto-vectorizable, `x86_64` AVX2) for the `Q4_0` dequant+dot
//!   inner loop, selected once at startup by CPU feature detection with an
//!   env/config override;
//! * [`gemm`] — single-precision GEMM/GEMV reference kernels with row-blocked
//!   multi-threading;
//! * [`quant`] — llama.cpp-style `Q4_0` block quantization (32 weights per
//!   block, one scale each) with fused dequant-GEMV;
//! * [`ffn`] — the SwiGLU expert feed-forward used by Mixtral / DeepSeek /
//!   Qwen2 experts, running on quantized weights;
//! * [`calibrate`] — micro-benchmarks that measure the *achieved* CPU
//!   GFLOP/s, memory bandwidth and task overheads and export them as a
//!   [`hybrimoe_hw::CalibrationProfile`], reproducing the paper's warmup
//!   phase (§IV-A) for the CPU side of the platform.
//!
//! The GPU of the paper's testbed is not available in this environment, so
//! GPU and PCIe behaviour is modeled analytically in `hybrimoe-hw`; the CPU
//! path is the one that is executed for real (see DESIGN.md §2).
//!
//! ## Example
//!
//! ```
//! use hybrimoe_kernels::ExpertFfn;
//!
//! let ffn = ExpertFfn::random(64, 96, 42);
//! let x = vec![0.1_f32; 64];
//! let y = ffn.forward(&x);
//! assert_eq!(y.len(), 64);
//! ```

// `deny` rather than `forbid`: the persistent `WorkerPool` needs two
// narrowly-scoped `allow(unsafe_code)` regions (lifetime erasure of the job
// closure, with a completion barrier guaranteeing the borrow outlives every
// use — see `threadpool`), and the AVX2 kernel backend needs
// `allow(unsafe_code)` for its feature-gated intrinsics (guarded by
// `is_x86_feature_detected!` at selection time — see `backend`). Everything
// else remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod calibrate;
pub mod ffn;
pub mod gemm;
pub mod quant;
pub mod quant8;
pub mod threadpool;

pub use backend::{KernelBackend, KernelBackendKind};
pub use calibrate::{calibrate_cpu, CalibrationOptions};
pub use ffn::{ExecScratch, ExpertFfn};
pub use quant::{QuantError, QuantizedMatrix, Q4_BLOCK};
pub use quant8::{Q8Matrix, Q8_BLOCK};
pub use threadpool::{parallel_for, WorkerPool};
