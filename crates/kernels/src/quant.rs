//! `Q4_0` block quantization, llama.cpp-compatible layout.
//!
//! Weights are grouped into blocks of [`Q4_BLOCK`] = 32 consecutive values.
//! Each block stores one `f32` scale and 32 packed 4-bit codes (two per
//! byte), code `q ∈ [0, 15]` decoding to `(q - 8) * scale`. This is the
//! format the paper's system inherits from llama.cpp/Marlin (§V); it costs
//! 5 bits per weight with the `f32` scale used here (llama.cpp's `f16`
//! scale brings it to 4.5).

use std::fmt;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::backend::KernelBackend;
use crate::threadpool::{parallel_for, WorkerPool};

/// A band of GEMV/GEMM results: `(first_row, values)` per worker.
type RowBands = std::sync::Mutex<Vec<(usize, Vec<f32>)>>;

/// Number of weights per quantization block.
pub const Q4_BLOCK: usize = 32;

/// Bytes used to store one block: a 4-byte scale plus 16 packed nibbles.
pub const Q4_BLOCK_BYTES: usize = 4 + Q4_BLOCK / 2;

/// Errors from quantized matrix constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantError {
    /// The number of columns must be a multiple of [`Q4_BLOCK`].
    ColsNotBlockAligned {
        /// Offending column count.
        cols: usize,
    },
    /// The weight slice length does not equal `rows * cols`.
    ShapeMismatch {
        /// Expected element count.
        expected: usize,
        /// Actual element count.
        actual: usize,
    },
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::ColsNotBlockAligned { cols } => {
                write!(f, "column count {cols} is not a multiple of {Q4_BLOCK}")
            }
            QuantError::ShapeMismatch { expected, actual } => {
                write!(f, "expected {expected} weights, got {actual}")
            }
        }
    }
}

impl std::error::Error for QuantError {}

/// A `rows x cols` matrix stored in `Q4_0` blocks, row-major.
///
/// The packed buffer is a cheaply-cloneable [`Bytes`], so a weight store can
/// hand out shared references to expert weights without copying.
///
/// # Example
///
/// ```
/// use hybrimoe_kernels::QuantizedMatrix;
///
/// let w: Vec<f32> = (0..64).map(|i| (i as f32 - 32.0) / 10.0).collect();
/// let q = QuantizedMatrix::quantize(&w, 2, 32)?;
/// let back = q.dequantize();
/// // Round-trip error is bounded by half a quantization step per weight.
/// for (a, b) in w.iter().zip(back.iter()) {
///     assert!((a - b).abs() <= q.max_step() / 2.0 + 1e-6);
/// }
/// # Ok::<(), hybrimoe_kernels::QuantError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    /// Packed blocks: per row, `cols / Q4_BLOCK` blocks of
    /// [`Q4_BLOCK_BYTES`].
    data: Bytes,
}

impl QuantizedMatrix {
    /// Quantizes a dense row-major `rows x cols` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::ColsNotBlockAligned`] if `cols` is not a
    /// multiple of [`Q4_BLOCK`], or [`QuantError::ShapeMismatch`] if the
    /// slice length is wrong.
    pub fn quantize(w: &[f32], rows: usize, cols: usize) -> Result<Self, QuantError> {
        if !cols.is_multiple_of(Q4_BLOCK) {
            return Err(QuantError::ColsNotBlockAligned { cols });
        }
        if w.len() != rows * cols {
            return Err(QuantError::ShapeMismatch {
                expected: rows * cols,
                actual: w.len(),
            });
        }
        let blocks_per_row = cols / Q4_BLOCK;
        let mut data = vec![0u8; rows * blocks_per_row * Q4_BLOCK_BYTES];
        for r in 0..rows {
            for b in 0..blocks_per_row {
                let src = &w[r * cols + b * Q4_BLOCK..r * cols + (b + 1) * Q4_BLOCK];
                let dst_off = (r * blocks_per_row + b) * Q4_BLOCK_BYTES;
                let dst = &mut data[dst_off..dst_off + Q4_BLOCK_BYTES];
                encode_block(src, dst);
            }
        }
        Ok(QuantizedMatrix {
            rows,
            cols,
            data: Bytes::from(data),
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Size of the packed representation in bytes.
    pub fn packed_bytes(&self) -> usize {
        self.data.len()
    }

    /// A shared handle to the packed bytes (zero-copy clone).
    pub fn data(&self) -> Bytes {
        self.data.clone()
    }

    /// The largest quantization step across all blocks (`scale` of the block
    /// with the widest range). Bounds the element-wise round-trip error at
    /// `max_step() / 2`.
    pub fn max_step(&self) -> f32 {
        let blocks_per_row = self.cols / Q4_BLOCK;
        let mut max = 0.0f32;
        for i in 0..self.rows * blocks_per_row {
            let off = i * Q4_BLOCK_BYTES;
            let scale = f32::from_le_bytes(self.data[off..off + 4].try_into().expect("4 bytes"));
            max = max.max(scale.abs());
        }
        max
    }

    /// Decodes the matrix back to dense `f32`, row-major.
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.rows * self.cols];
        let blocks_per_row = self.cols / Q4_BLOCK;
        for r in 0..self.rows {
            for b in 0..blocks_per_row {
                let off = (r * blocks_per_row + b) * Q4_BLOCK_BYTES;
                let dst =
                    &mut out[r * self.cols + b * Q4_BLOCK..r * self.cols + (b + 1) * Q4_BLOCK];
                decode_block(&self.data[off..off + Q4_BLOCK_BYTES], dst);
            }
        }
        out
    }

    /// Fused dequantize + `y = W · x` GEMV, split across `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    pub fn qgemv(&self, x: &[f32], y: &mut [f32], threads: usize) {
        assert_eq!(x.len(), self.cols, "input length mismatch");
        assert_eq!(y.len(), self.rows, "output length mismatch");
        let blocks_per_row = self.cols / Q4_BLOCK;
        let data = &self.data;
        // Rows are independent; compute into a temporary then scatter to
        // avoid sharing &mut y across workers.
        let results: RowBands = std::sync::Mutex::new(Vec::new());
        parallel_for(self.rows, threads, |r0, r1| {
            let mut band = vec![0.0f32; r1 - r0];
            let mut buf = [0.0f32; Q4_BLOCK];
            for r in r0..r1 {
                let mut acc = 0.0f32;
                for b in 0..blocks_per_row {
                    let off = (r * blocks_per_row + b) * Q4_BLOCK_BYTES;
                    decode_block(&data[off..off + Q4_BLOCK_BYTES], &mut buf);
                    let xs = &x[b * Q4_BLOCK..(b + 1) * Q4_BLOCK];
                    for (wv, xv) in buf.iter().zip(xs.iter()) {
                        acc += wv * xv;
                    }
                }
                band[r - r0] = acc;
            }
            results.lock().expect("poisoned").push((r0, band));
        });
        for (r0, band) in results.into_inner().expect("poisoned") {
            y[r0..r0 + band.len()].copy_from_slice(&band);
        }
    }

    /// Fused dequantize + `Y = X · Wᵀ` for a batch of inputs: `x` is
    /// `tokens x cols` row-major, `y` is `tokens x rows` row-major.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn qgemm(&self, x: &[f32], tokens: usize, y: &mut [f32], threads: usize) {
        assert_eq!(x.len(), tokens * self.cols, "input shape mismatch");
        assert_eq!(y.len(), tokens * self.rows, "output shape mismatch");
        let blocks_per_row = self.cols / Q4_BLOCK;
        let data = &self.data;
        let results: RowBands = std::sync::Mutex::new(Vec::new());
        // Parallelize over weight rows: each worker dequantizes its rows
        // once and applies them to every token, amortizing the decode.
        parallel_for(self.rows, threads, |r0, r1| {
            let mut band = vec![0.0f32; (r1 - r0) * tokens];
            let mut wrow = vec![0.0f32; self.cols];
            for r in r0..r1 {
                for b in 0..blocks_per_row {
                    let off = (r * blocks_per_row + b) * Q4_BLOCK_BYTES;
                    decode_block(
                        &data[off..off + Q4_BLOCK_BYTES],
                        &mut wrow[b * Q4_BLOCK..(b + 1) * Q4_BLOCK],
                    );
                }
                for t in 0..tokens {
                    let xs = &x[t * self.cols..(t + 1) * self.cols];
                    let mut acc = 0.0f32;
                    for (wv, xv) in wrow.iter().zip(xs.iter()) {
                        acc += wv * xv;
                    }
                    band[(r - r0) * tokens + t] = acc;
                }
            }
            results.lock().expect("poisoned").push((r0, band));
        });
        for (r0, band) in results.into_inner().expect("poisoned") {
            let rows_in_band = band.len() / tokens;
            for (ri, chunk) in band.chunks(tokens).enumerate() {
                let r = r0 + ri;
                debug_assert!(ri < rows_in_band);
                for (t, v) in chunk.iter().enumerate() {
                    y[t * self.rows + r] = *v;
                }
            }
        }
    }

    /// [`QuantizedMatrix::qgemv`] on a persistent [`WorkerPool`]: no thread
    /// spawns, no intermediate allocations. The output is written directly
    /// into disjoint bands of `y`, with the per-row dequant+dot dispatched
    /// to `backend`. With the scalar backend ([`crate::backend::scalar`])
    /// the result is bit-identical to `qgemv`; SIMD backends stay within
    /// the reassociation bound documented in [`crate::backend`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    pub fn qgemv_into(
        &self,
        x: &[f32],
        y: &mut [f32],
        pool: &WorkerPool,
        backend: &dyn KernelBackend,
    ) {
        assert_eq!(x.len(), self.cols, "input length mismatch");
        assert_eq!(y.len(), self.rows, "output length mismatch");
        let row_bytes = self.cols / Q4_BLOCK * Q4_BLOCK_BYTES;
        let cols = self.cols;
        let data = &self.data;
        // Rows are contiguous in y, so each part gets its own disjoint
        // band; the per-band mutex is uncontended (one lock per part per
        // call) and exists only to hand a `&mut` band through a `Fn` body.
        let (_, chunk) = pool.partition(self.rows);
        let bands: Vec<std::sync::Mutex<&mut [f32]>> =
            y.chunks_mut(chunk).map(std::sync::Mutex::new).collect();
        pool.run(self.rows, |part, r0, r1| {
            if r1 <= r0 {
                return;
            }
            let mut band = bands[part].lock().expect("band poisoned");
            for r in r0..r1 {
                let row = &data[r * row_bytes..(r + 1) * row_bytes];
                backend.qdot_row(row, x, cols, &mut band[r - r0..r - r0 + 1]);
            }
        });
    }

    /// [`QuantizedMatrix::qgemm`] on a persistent [`WorkerPool`] with
    /// caller-owned scratch: the per-row dequant+dot over the whole token
    /// batch is dispatched to `backend` (the scalar backend decodes each
    /// Q4 block exactly once per row and applies it to the tokens in tiles
    /// of four, keeping four independent FP accumulation chains in
    /// flight). With the scalar backend, per-token results are
    /// bit-identical to `qgemv` (each token's element order is unchanged;
    /// only independent chains are interleaved); every backend guarantees
    /// its batched and single-token results agree bit for bit.
    ///
    /// `band` is reusable scratch for the row-major intermediate; it is
    /// resized (capacity retained) and scattered into the token-major `y`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn qgemm_into(
        &self,
        x: &[f32],
        tokens: usize,
        y: &mut [f32],
        band: &mut Vec<f32>,
        pool: &WorkerPool,
        backend: &dyn KernelBackend,
    ) {
        assert_eq!(x.len(), tokens * self.cols, "input shape mismatch");
        assert_eq!(y.len(), tokens * self.rows, "output shape mismatch");
        let row_bytes = self.cols / Q4_BLOCK * Q4_BLOCK_BYTES;
        let cols = self.cols;
        let data = &self.data;
        band.clear();
        band.resize(self.rows * tokens, 0.0);
        let (_, chunk) = pool.partition(self.rows);
        let bands: Vec<std::sync::Mutex<&mut [f32]>> = band
            .chunks_mut(chunk * tokens.max(1))
            .map(std::sync::Mutex::new)
            .collect();
        pool.run(self.rows, |part, r0, r1| {
            if r1 <= r0 || tokens == 0 {
                return;
            }
            let mut band = bands[part].lock().expect("band poisoned");
            for r in r0..r1 {
                let row = &data[r * row_bytes..(r + 1) * row_bytes];
                let row_out = &mut band[(r - r0) * tokens..(r - r0 + 1) * tokens];
                backend.qdot_row(row, x, cols, row_out);
            }
        });
        drop(bands);
        // Scatter the row-major intermediate into the token-major output.
        for (r, row) in band.chunks(tokens.max(1)).enumerate() {
            for (t, v) in row.iter().enumerate() {
                y[t * self.rows + r] = *v;
            }
        }
    }
}

fn encode_block(src: &[f32], dst: &mut [u8]) {
    debug_assert_eq!(src.len(), Q4_BLOCK);
    debug_assert_eq!(dst.len(), Q4_BLOCK_BYTES);
    // llama.cpp Q4_0: scale = max|x| / 7 mapped over [-8, 7]; we use the
    // symmetric variant scale = max|x| / 7.5 rounding to [0, 15] - 8.
    let amax = src.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let scale = if amax == 0.0 { 0.0 } else { amax / 7.5 };
    dst[..4].copy_from_slice(&scale.to_le_bytes());
    let inv = if scale == 0.0 { 0.0 } else { 1.0 / scale };
    for i in 0..Q4_BLOCK / 2 {
        let q0 = quantize_one(src[2 * i], inv);
        let q1 = quantize_one(src[2 * i + 1], inv);
        dst[4 + i] = q0 | (q1 << 4);
    }
}

fn quantize_one(v: f32, inv_scale: f32) -> u8 {
    let q = (v * inv_scale).round() as i32 + 8;
    q.clamp(0, 15) as u8
}

pub(crate) fn decode_block(src: &[u8], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), Q4_BLOCK_BYTES);
    debug_assert_eq!(dst.len(), Q4_BLOCK);
    let scale = f32::from_le_bytes(src[..4].try_into().expect("4 bytes"));
    for i in 0..Q4_BLOCK / 2 {
        let byte = src[4 + i];
        dst[2 * i] = ((byte & 0x0f) as i32 - 8) as f32 * scale;
        dst[2 * i + 1] = ((byte >> 4) as i32 - 8) as f32 * scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(n: usize, seed: u32) -> Vec<f32> {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                ((state >> 8) as f32 / (1u32 << 24) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn round_trip_error_bounded() {
        let w = pseudo(4 * 64, 1);
        let q = QuantizedMatrix::quantize(&w, 4, 64).unwrap();
        let back = q.dequantize();
        let bound = q.max_step() / 2.0 + 1e-6;
        for (a, b) in w.iter().zip(back.iter()) {
            assert!((a - b).abs() <= bound, "{a} vs {b} (bound {bound})");
        }
    }

    #[test]
    fn zero_block_encodes_to_zero() {
        let w = vec![0.0f32; 32];
        let q = QuantizedMatrix::quantize(&w, 1, 32).unwrap();
        assert_eq!(q.dequantize(), w);
        assert_eq!(q.max_step(), 0.0);
    }

    #[test]
    fn rejects_unaligned_cols() {
        assert_eq!(
            QuantizedMatrix::quantize(&[0.0; 30], 1, 30),
            Err(QuantError::ColsNotBlockAligned { cols: 30 })
        );
    }

    #[test]
    fn rejects_shape_mismatch() {
        assert_eq!(
            QuantizedMatrix::quantize(&[0.0; 31], 1, 32),
            Err(QuantError::ShapeMismatch {
                expected: 32,
                actual: 31
            })
        );
    }

    #[test]
    fn packed_size_is_5_bits_per_weight() {
        let q = QuantizedMatrix::quantize(&pseudo(8 * 128, 2), 8, 128).unwrap();
        let bits_per_weight = q.packed_bytes() as f64 * 8.0 / (8.0 * 128.0);
        assert!((bits_per_weight - 5.0).abs() < 1e-9);
    }

    #[test]
    fn qgemv_matches_dequantized_gemv() {
        let (rows, cols) = (9, 96);
        let w = pseudo(rows * cols, 3);
        let q = QuantizedMatrix::quantize(&w, rows, cols).unwrap();
        let x = pseudo(cols, 4);
        let mut y_fused = vec![0.0; rows];
        q.qgemv(&x, &mut y_fused, 2);
        let dense = q.dequantize();
        let mut y_ref = vec![0.0; rows];
        crate::gemm::gemv(&dense, rows, cols, &x, &mut y_ref);
        for (a, b) in y_fused.iter().zip(y_ref.iter()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn qgemm_matches_per_token_qgemv() {
        let (rows, cols, tokens) = (5, 64, 3);
        let w = pseudo(rows * cols, 5);
        let q = QuantizedMatrix::quantize(&w, rows, cols).unwrap();
        let x = pseudo(tokens * cols, 6);
        let mut y = vec![0.0; tokens * rows];
        q.qgemm(&x, tokens, &mut y, 2);
        for t in 0..tokens {
            let mut y1 = vec![0.0; rows];
            q.qgemv(&x[t * cols..(t + 1) * cols], &mut y1, 1);
            for r in 0..rows {
                assert!((y[t * rows + r] - y1[r]).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn qgemv_into_is_bit_identical_to_qgemv() {
        let (rows, cols) = (9, 96);
        let q = QuantizedMatrix::quantize(&pseudo(rows * cols, 8), rows, cols).unwrap();
        let x = pseudo(cols, 9);
        let mut y_ref = vec![0.0; rows];
        q.qgemv(&x, &mut y_ref, 1);
        for threads in [1, 2, 4] {
            let pool = WorkerPool::new(threads);
            let mut y = vec![0.0; rows];
            q.qgemv_into(&x, &mut y, &pool, crate::backend::scalar());
            assert_eq!(y, y_ref, "threads={threads}");
        }
    }

    #[test]
    fn qgemm_into_is_bit_identical_to_qgemv_per_token() {
        let (rows, cols) = (7, 64);
        let q = QuantizedMatrix::quantize(&pseudo(rows * cols, 10), rows, cols).unwrap();
        for tokens in [1usize, 2, 4, 5, 9] {
            let x = pseudo(tokens * cols, 11);
            for threads in [1, 3] {
                let pool = WorkerPool::new(threads);
                let mut band = Vec::new();
                let mut y = vec![0.0; tokens * rows];
                q.qgemm_into(
                    &x,
                    tokens,
                    &mut y,
                    &mut band,
                    &pool,
                    crate::backend::scalar(),
                );
                for t in 0..tokens {
                    let mut y1 = vec![0.0; rows];
                    q.qgemv(&x[t * cols..(t + 1) * cols], &mut y1, 1);
                    assert_eq!(
                        &y[t * rows..(t + 1) * rows],
                        &y1[..],
                        "tokens={tokens} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn data_clone_is_shared() {
        let q = QuantizedMatrix::quantize(&pseudo(32, 7), 1, 32).unwrap();
        let a = q.data();
        let b = q.data();
        assert_eq!(a, b);
    }

    #[test]
    fn error_display() {
        assert!(!QuantError::ColsNotBlockAligned { cols: 7 }
            .to_string()
            .is_empty());
        assert!(!QuantError::ShapeMismatch {
            expected: 1,
            actual: 2
        }
        .to_string()
        .is_empty());
    }
}
