//! `Q8_0` block quantization: 8-bit codes, 32 weights per block.
//!
//! The higher-precision sibling of [`Q4_0`](crate::quant): ~8.5× smaller
//! error, ~1.9× the bytes (9 vs 5 bits per weight with `f32` scales). Used
//! by the mixed-precision offloading ablation — transferring a Q4 copy of
//! an expert is ~1.9× cheaper on PCIe than the Q8 copy with a small
//! accuracy cost, the trade explored by HOBBIT (paper ref.\ 7).

use std::fmt;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::quant::{QuantError, Q4_BLOCK};

/// Weights per `Q8_0` block (shared with `Q4_0`).
pub const Q8_BLOCK: usize = Q4_BLOCK;

/// Bytes per block: a 4-byte scale plus 32 one-byte codes.
pub const Q8_BLOCK_BYTES: usize = 4 + Q8_BLOCK;

/// A `rows x cols` matrix stored in `Q8_0` blocks, row-major.
///
/// # Example
///
/// ```
/// use hybrimoe_kernels::quant8::Q8Matrix;
///
/// let w: Vec<f32> = (0..64).map(|i| (i as f32 - 32.0) / 16.0).collect();
/// let q8 = Q8Matrix::quantize(&w, 2, 32)?;
/// let back = q8.dequantize();
/// for (a, b) in w.iter().zip(back.iter()) {
///     assert!((a - b).abs() <= q8.max_step() / 2.0 + 1e-6);
/// }
/// # Ok::<(), hybrimoe_kernels::QuantError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Q8Matrix {
    rows: usize,
    cols: usize,
    data: Bytes,
}

impl Q8Matrix {
    /// Quantizes a dense row-major matrix to `Q8_0`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError`] if `cols` is not a multiple of [`Q8_BLOCK`]
    /// or the slice length is wrong.
    pub fn quantize(w: &[f32], rows: usize, cols: usize) -> Result<Self, QuantError> {
        if !cols.is_multiple_of(Q8_BLOCK) {
            return Err(QuantError::ColsNotBlockAligned { cols });
        }
        if w.len() != rows * cols {
            return Err(QuantError::ShapeMismatch {
                expected: rows * cols,
                actual: w.len(),
            });
        }
        let blocks_per_row = cols / Q8_BLOCK;
        let mut data = vec![0u8; rows * blocks_per_row * Q8_BLOCK_BYTES];
        for r in 0..rows {
            for b in 0..blocks_per_row {
                let src = &w[r * cols + b * Q8_BLOCK..r * cols + (b + 1) * Q8_BLOCK];
                let off = (r * blocks_per_row + b) * Q8_BLOCK_BYTES;
                let amax = src.iter().fold(0.0f32, |m, v| m.max(v.abs()));
                let scale = if amax == 0.0 { 0.0 } else { amax / 127.0 };
                data[off..off + 4].copy_from_slice(&scale.to_le_bytes());
                let inv = if scale == 0.0 { 0.0 } else { 1.0 / scale };
                for (i, v) in src.iter().enumerate() {
                    let q = (v * inv).round().clamp(-127.0, 127.0) as i8;
                    data[off + 4 + i] = q as u8;
                }
            }
        }
        Ok(Q8Matrix {
            rows,
            cols,
            data: Bytes::from(data),
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Packed size in bytes.
    pub fn packed_bytes(&self) -> usize {
        self.data.len()
    }

    /// The largest quantization step across blocks (error ≤ `max_step()/2`
    /// per weight).
    pub fn max_step(&self) -> f32 {
        let blocks_per_row = self.cols / Q8_BLOCK;
        let mut max = 0.0f32;
        for i in 0..self.rows * blocks_per_row {
            let off = i * Q8_BLOCK_BYTES;
            let scale = f32::from_le_bytes(self.data[off..off + 4].try_into().expect("4 bytes"));
            max = max.max(scale.abs());
        }
        max
    }

    /// Decodes back to dense row-major `f32`.
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.rows * self.cols];
        let blocks_per_row = self.cols / Q8_BLOCK;
        for r in 0..self.rows {
            for b in 0..blocks_per_row {
                let off = (r * blocks_per_row + b) * Q8_BLOCK_BYTES;
                let scale =
                    f32::from_le_bytes(self.data[off..off + 4].try_into().expect("4 bytes"));
                for i in 0..Q8_BLOCK {
                    let q = self.data[off + 4 + i] as i8;
                    out[r * self.cols + b * Q8_BLOCK + i] = q as f32 * scale;
                }
            }
        }
        out
    }

    /// Fused dequantize + `y = W · x`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn qgemv(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "input length mismatch");
        assert_eq!(y.len(), self.rows, "output length mismatch");
        let blocks_per_row = self.cols / Q8_BLOCK;
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for b in 0..blocks_per_row {
                let off = (r * blocks_per_row + b) * Q8_BLOCK_BYTES;
                let scale =
                    f32::from_le_bytes(self.data[off..off + 4].try_into().expect("4 bytes"));
                let xs = &x[b * Q8_BLOCK..(b + 1) * Q8_BLOCK];
                let codes = &self.data[off + 4..off + 4 + Q8_BLOCK];
                let mut block_acc = 0.0f32;
                for (code, xv) in codes.iter().zip(xs.iter()) {
                    block_acc += (*code as i8) as f32 * xv;
                }
                acc += scale * block_acc;
            }
            *yr = acc;
        }
    }
}

impl fmt::Display for Q8Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q8Matrix({}x{})", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::QuantizedMatrix;

    fn pseudo(n: usize, seed: u32) -> Vec<f32> {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(99);
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                ((state >> 8) as f32 / (1u32 << 24) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn round_trip_error_bounded() {
        let w = pseudo(4 * 64, 1);
        let q = Q8Matrix::quantize(&w, 4, 64).unwrap();
        let back = q.dequantize();
        let bound = q.max_step() / 2.0 + 1e-6;
        for (a, b) in w.iter().zip(back.iter()) {
            assert!((a - b).abs() <= bound);
        }
    }

    #[test]
    fn q8_is_more_accurate_than_q4() {
        let w = pseudo(8 * 64, 2);
        let q8 = Q8Matrix::quantize(&w, 8, 64).unwrap();
        let q4 = QuantizedMatrix::quantize(&w, 8, 64).unwrap();
        let err = |back: &[f32]| -> f64 {
            w.iter()
                .zip(back.iter())
                .map(|(a, b)| ((a - b) as f64).powi(2))
                .sum::<f64>()
        };
        let e8 = err(&q8.dequantize());
        let e4 = err(&q4.dequantize());
        assert!(e8 * 8.0 < e4, "q8 err {e8:.3e} vs q4 err {e4:.3e}");
    }

    #[test]
    fn q8_costs_1_8x_the_bytes_of_q4() {
        let w = pseudo(4 * 128, 3);
        let q8 = Q8Matrix::quantize(&w, 4, 128).unwrap();
        let q4 = QuantizedMatrix::quantize(&w, 4, 128).unwrap();
        let ratio = q8.packed_bytes() as f64 / q4.packed_bytes() as f64;
        assert!((ratio - 1.8).abs() < 1e-9, "ratio {ratio}"); // 9 vs 5 bits
    }

    #[test]
    fn qgemv_matches_dequantized_reference() {
        let (rows, cols) = (7, 64);
        let w = pseudo(rows * cols, 4);
        let q = Q8Matrix::quantize(&w, rows, cols).unwrap();
        let x = pseudo(cols, 5);
        let mut fused = vec![0.0; rows];
        q.qgemv(&x, &mut fused);
        let dense = q.dequantize();
        let mut reference = vec![0.0; rows];
        crate::gemm::gemv(&dense, rows, cols, &x, &mut reference);
        for (a, b) in fused.iter().zip(reference.iter()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(Q8Matrix::quantize(&[0.0; 30], 1, 30).is_err());
        assert!(Q8Matrix::quantize(&[0.0; 31], 1, 32).is_err());
    }

    #[test]
    fn zero_block_round_trips() {
        let q = Q8Matrix::quantize(&[0.0; 32], 1, 32).unwrap();
        assert_eq!(q.dequantize(), vec![0.0; 32]);
        assert_eq!(q.to_string(), "Q8Matrix(1x32)");
    }
}
