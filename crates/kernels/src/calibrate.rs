//! CPU warmup calibration.
//!
//! Reproduces the paper's warmup phase (§IV-A) for the CPU side: times real
//! quantized-FFN forwards and raw memory streams with [`std::time::Instant`],
//! then distills effective GFLOP/s, memory bandwidth and task overheads into
//! a [`CalibrationProfile`] that `hybrimoe-hw` folds into its cost model.

use std::time::Instant;

use hybrimoe_hw::{CalibrationProfile, SimDuration};

use crate::ffn::ExpertFfn;

/// Options controlling a calibration run.
///
/// # Example
///
/// ```no_run
/// use hybrimoe_kernels::{calibrate_cpu, CalibrationOptions};
///
/// let profile = calibrate_cpu(&CalibrationOptions::quick());
/// assert!(profile.is_plausible());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CalibrationOptions {
    /// Hidden dimension of the probe expert.
    pub hidden: usize,
    /// Intermediate dimension of the probe expert.
    pub inter: usize,
    /// Number of timed repetitions per measurement.
    pub reps: u32,
    /// Worker threads for the probe kernels.
    pub threads: usize,
}

impl CalibrationOptions {
    /// A fast profile suitable for tests and CI (sub-second).
    pub fn quick() -> Self {
        CalibrationOptions {
            hidden: 256,
            inter: 384,
            reps: 3,
            threads: 1,
        }
    }

    /// A thorough profile for real deployments.
    pub fn thorough() -> Self {
        CalibrationOptions {
            hidden: 1024,
            inter: 2048,
            reps: 10,
            threads: crate::threadpool::default_threads(10),
        }
    }
}

impl Default for CalibrationOptions {
    fn default() -> Self {
        CalibrationOptions::quick()
    }
}

/// Runs the warmup calibration and returns the measured CPU profile.
///
/// The returned profile reports *achieved* rates for the quantized expert
/// FFN kernel, which is what the scheduler's cost model needs (datasheet
/// peaks would systematically overestimate the CPU).
pub fn calibrate_cpu(options: &CalibrationOptions) -> CalibrationProfile {
    let ffn = ExpertFfn::random(options.hidden, options.inter, 0xCA11B);
    let x: Vec<f32> = (0..options.hidden)
        .map(|i| ((i as f32) * 0.37).sin() * 0.1)
        .collect();

    // Cold measurement: the very first forward pays allocation/cache misses.
    let cold_start = Instant::now();
    let y = ffn.forward_threads(&x, options.threads);
    let cold = cold_start.elapsed();
    std::hint::black_box(&y);

    // Warm measurements.
    let mut warm_total = std::time::Duration::ZERO;
    for _ in 0..options.reps.max(1) {
        let t = Instant::now();
        let y = ffn.forward_threads(&x, options.threads);
        warm_total += t.elapsed();
        std::hint::black_box(&y);
    }
    let warm = warm_total / options.reps.max(1);

    let flops = ffn.flops_per_token() as f64;
    let bytes = ffn.packed_bytes() as f64;
    let warm_s = warm.as_secs_f64().max(1e-9);
    // The same kernel both streams the weights once and does the FLOPs; we
    // attribute the whole time to each to get conservative effective rates.
    let cpu_gflops = flops / warm_s / 1e9;
    let cpu_mem_bw_gbps = bytes / warm_s / 1e9;
    let cold_penalty = cold.saturating_sub(warm);

    // Task overhead: time an empty-ish dispatch (tiny forward).
    let tiny = ExpertFfn::random(32, 32, 0xCA11C);
    let tx = vec![0.0f32; 32];
    let t = Instant::now();
    for _ in 0..options.reps.max(1) {
        std::hint::black_box(tiny.forward(&tx));
    }
    let overhead = t.elapsed() / options.reps.max(1);

    CalibrationProfile {
        cpu_gflops: cpu_gflops.max(0.01),
        cpu_mem_bw_gbps: cpu_mem_bw_gbps.max(0.01),
        cpu_task_overhead: SimDuration::from_secs_f64(overhead.as_secs_f64()),
        cpu_cold_penalty: SimDuration::from_secs_f64(cold_penalty.as_secs_f64()),
        samples: options.reps.max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_calibration_is_plausible() {
        let profile = calibrate_cpu(&CalibrationOptions::quick());
        assert!(profile.is_plausible(), "{profile:?}");
        assert!(profile.cpu_gflops > 0.01);
        assert!(profile.cpu_mem_bw_gbps > 0.01);
    }

    #[test]
    fn options_presets_differ() {
        let q = CalibrationOptions::quick();
        let t = CalibrationOptions::thorough();
        assert!(t.hidden > q.hidden);
        assert!(t.reps > q.reps);
        assert_eq!(CalibrationOptions::default(), q);
    }
}
