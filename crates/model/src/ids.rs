//! Typed identifiers for layers and experts.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A transformer layer index, from `0` to `ModelConfig::layers - 1`.
///
/// # Example
///
/// ```
/// use hybrimoe_model::LayerId;
///
/// let l = LayerId(3);
/// assert_eq!(l.next(), LayerId(4));
/// assert_eq!(l.to_string(), "L3");
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct LayerId(pub u16);

impl LayerId {
    /// The following layer.
    pub const fn next(self) -> LayerId {
        LayerId(self.0 + 1)
    }

    /// Distance to a later layer; `None` if `other` is not later.
    pub fn distance_to(self, other: LayerId) -> Option<u16> {
        other.0.checked_sub(self.0)
    }
}

impl fmt::Display for LayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A routed-expert index within one layer, from `0` to
/// `ModelConfig::routed_experts - 1`.
///
/// # Example
///
/// ```
/// use hybrimoe_model::ExpertId;
///
/// assert_eq!(ExpertId(17).to_string(), "E17");
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ExpertId(pub u16);

impl fmt::Display for ExpertId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

/// The globally unique identity of a routed expert: `(layer, expert)`.
///
/// This is the unit that the GPU cache tracks and that PCIe transfers move.
///
/// # Example
///
/// ```
/// use hybrimoe_model::{ExpertId, ExpertKey, LayerId};
///
/// let k = ExpertKey::new(LayerId(2), ExpertId(5));
/// assert_eq!(k.to_string(), "L2/E5");
/// assert!(k < ExpertKey::new(LayerId(3), ExpertId(0)));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ExpertKey {
    /// The layer the expert belongs to.
    pub layer: LayerId,
    /// The expert index within the layer.
    pub expert: ExpertId,
}

impl ExpertKey {
    /// Creates a key from its parts.
    pub const fn new(layer: LayerId, expert: ExpertId) -> Self {
        ExpertKey { layer, expert }
    }

    /// A dense index given the number of routed experts per layer, suitable
    /// for flat arrays over all experts of a model.
    pub fn dense_index(self, experts_per_layer: u16) -> usize {
        self.layer.0 as usize * experts_per_layer as usize + self.expert.0 as usize
    }
}

impl fmt::Display for ExpertKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.layer, self.expert)
    }
}

/// The expert→shard affinity map of a multi-GPU deployment: expert `e` may
/// only be cached on (and transferred to) GPU shard `e mod num_shards`.
///
/// A static affinity keeps every shard's cache and score estimates
/// device-local — an expert never has copies on two GPUs, so residency,
/// eviction and MRS scoring all stay per-shard decisions. Round-robin by
/// expert id spreads each layer's experts evenly across shards. With one
/// shard everything maps to shard 0 (the paper's single-GPU setup).
///
/// # Example
///
/// ```
/// use hybrimoe_model::{shard_of, ExpertId};
///
/// assert_eq!(shard_of(ExpertId(5), 1), 0);
/// assert_eq!(shard_of(ExpertId(5), 4), 1);
/// assert_eq!(shard_of(ExpertId(6), 4), 2);
/// ```
pub fn shard_of(expert: ExpertId, num_shards: usize) -> usize {
    debug_assert!(num_shards > 0, "a deployment needs at least one shard");
    expert.0 as usize % num_shards.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_ordering_and_distance() {
        assert!(LayerId(1) < LayerId(2));
        assert_eq!(LayerId(1).distance_to(LayerId(4)), Some(3));
        assert_eq!(LayerId(4).distance_to(LayerId(1)), None);
        assert_eq!(LayerId(0).next(), LayerId(1));
    }

    #[test]
    fn key_ordering_is_layer_major() {
        let a = ExpertKey::new(LayerId(1), ExpertId(63));
        let b = ExpertKey::new(LayerId(2), ExpertId(0));
        assert!(a < b);
    }

    #[test]
    fn dense_index_is_bijective() {
        let per_layer = 8;
        let mut seen = std::collections::HashSet::new();
        for l in 0..4u16 {
            for e in 0..per_layer {
                let k = ExpertKey::new(LayerId(l), ExpertId(e));
                assert!(seen.insert(k.dense_index(per_layer)));
            }
        }
        assert_eq!(seen.len(), 32);
        assert_eq!(*seen.iter().max().unwrap(), 31);
    }

    #[test]
    fn shard_affinity_is_round_robin_and_total() {
        for shards in 1..=4usize {
            let mut counts = vec![0usize; shards];
            for e in 0..64u16 {
                let s = shard_of(ExpertId(e), shards);
                assert!(s < shards);
                counts[s] += 1;
            }
            // 64 experts split evenly across 1, 2 or 4 shards.
            assert!(counts.iter().all(|c| *c == 64 / shards || shards == 3));
        }
        assert_eq!(shard_of(ExpertId(9), 1), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(LayerId(7).to_string(), "L7");
        assert_eq!(ExpertId(9).to_string(), "E9");
        assert_eq!(ExpertKey::new(LayerId(7), ExpertId(9)).to_string(), "L7/E9");
    }
}
