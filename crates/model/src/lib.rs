//! # hybrimoe-model
//!
//! Mixture-of-Experts model descriptions for the HybriMoE framework:
//!
//! * [`ids`] — typed identifiers for layers and experts;
//! * [`shape`] — expert tensor shapes with byte/FLOP accounting;
//! * [`config`] — full architecture presets for the three models the paper
//!   evaluates (Table II): Mixtral-8x7B, DeepSeek-V2-Lite, Qwen2-57B-A14B;
//! * [`router`] — the gating math (softmax, top-K selection, load
//!   aggregation);
//! * [`weights`] — a synthetic weight store that lazily materializes real
//!   quantized [`ExpertFfn`](hybrimoe_kernels::ExpertFfn) weights for
//!   small configurations (real-execution mode) under a memory budget.
//!
//! ## Example
//!
//! ```
//! use hybrimoe_model::ModelConfig;
//!
//! let mixtral = ModelConfig::mixtral();
//! assert_eq!(mixtral.layers, 32);
//! assert_eq!(mixtral.routed_experts, 8);
//! assert_eq!(mixtral.activated_experts, 2);
//! // ~110 MB per quantized expert:
//! assert!(mixtral.routed_shape.packed_bytes() > 80_000_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod ids;
pub mod router;
pub mod shape;
pub mod weights;

pub use config::ModelConfig;
pub use ids::{shard_of, ExpertId, ExpertKey, LayerId};
pub use router::{softmax, top_k, LayerRouting, RouterOutput};
pub use shape::ExpertShape;
pub use weights::{WeightStore, WeightStoreError};
