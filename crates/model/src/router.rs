//! MoE gating math.
//!
//! The router maps a token's gate logits to a probability distribution over
//! the layer's routed experts (Eq. 1 of the paper):
//! `y = Σ Softmax(TopK(x·Wg))_i · E_i(x)`. Besides selecting the top-K
//! experts per token, the full softmax score vector is preserved — it is the
//! signal the MRS cache policy (§IV-D) and the impact-driven prefetcher
//! (§IV-C) consume.

use serde::{Deserialize, Serialize};

use crate::{ExpertId, LayerId};

/// Numerically stable softmax.
///
/// Returns an empty vector for empty input.
///
/// # Example
///
/// ```
/// let p = hybrimoe_model::softmax(&[1.0, 1.0]);
/// assert!((p[0] - 0.5).abs() < 1e-6);
/// assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
/// ```
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Indices and values of the `k` largest scores, descending, ties broken by
/// the lower index (deterministic).
///
/// # Example
///
/// ```
/// let top = hybrimoe_model::top_k(&[0.1, 0.7, 0.2], 2);
/// assert_eq!(top[0].0, 1);
/// assert_eq!(top[1].0, 2);
/// ```
pub fn top_k(scores: &[f32], k: usize) -> Vec<(usize, f32)> {
    let mut indexed: Vec<(usize, f32)> = scores.iter().copied().enumerate().collect();
    indexed.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    indexed.truncate(k);
    indexed
}

/// The routing decision for one token at one layer.
///
/// # Example
///
/// ```
/// use hybrimoe_model::RouterOutput;
///
/// let out = RouterOutput::route(&[2.0, 0.0, 1.0, 0.5], 2);
/// assert_eq!(out.selected.len(), 2);
/// assert_eq!(out.selected[0].0 .0, 0); // highest logit
/// // Selected weights are renormalized to sum to 1:
/// let w: f32 = out.selected.iter().map(|(_, w)| w).sum();
/// assert!((w - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterOutput {
    /// Full softmax scores over all routed experts (the cache/prefetch
    /// signal).
    pub scores: Vec<f32>,
    /// The selected top-K experts with their renormalized combine weights,
    /// in descending score order.
    pub selected: Vec<(ExpertId, f32)>,
}

impl RouterOutput {
    /// Routes a token given its gate logits: softmax over all experts,
    /// top-`k` selection, then renormalization of the selected weights.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > logits.len()`.
    pub fn route(logits: &[f32], k: usize) -> RouterOutput {
        assert!(k > 0 && k <= logits.len(), "invalid top-k: {k}");
        let scores = softmax(logits);
        let top = top_k(&scores, k);
        let total: f32 = top.iter().map(|(_, s)| s).sum();
        let selected = top
            .into_iter()
            .map(|(i, s)| {
                (
                    ExpertId(i as u16),
                    if total > 0.0 { s / total } else { 0.0 },
                )
            })
            .collect();
        RouterOutput { scores, selected }
    }

    /// The selected expert ids, descending by score.
    pub fn expert_ids(&self) -> impl Iterator<Item = ExpertId> + '_ {
        self.selected.iter().map(|(e, _)| *e)
    }
}

/// Aggregated routing of a whole token batch at one layer: the input to the
/// scheduler (per-expert loads) and the cache policy (per-expert score
/// mass).
///
/// # Example
///
/// ```
/// use hybrimoe_model::{LayerId, LayerRouting, RouterOutput};
///
/// let t0 = RouterOutput::route(&[5.0, 0.0, 0.0, 0.0], 1);
/// let t1 = RouterOutput::route(&[5.0, 4.0, 0.0, 0.0], 1);
/// let routing = LayerRouting::from_tokens(LayerId(0), 4, &[t0, t1]);
/// assert_eq!(routing.tokens(), 2);
/// assert_eq!(routing.loads()[0], 2); // expert 0 got both tokens
/// assert_eq!(routing.activated().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerRouting {
    layer: LayerId,
    tokens: u32,
    loads: Vec<u32>,
    score_mass: Vec<f32>,
}

impl LayerRouting {
    /// Aggregates per-token router outputs into per-expert loads and score
    /// masses.
    ///
    /// # Panics
    ///
    /// Panics if any token selects an expert index `>= experts` or has a
    /// score vector whose length differs from `experts`.
    pub fn from_tokens(layer: LayerId, experts: u16, tokens: &[RouterOutput]) -> Self {
        let mut loads = vec![0u32; experts as usize];
        let mut score_mass = vec![0f32; experts as usize];
        for t in tokens {
            assert_eq!(t.scores.len(), experts as usize, "score length mismatch");
            for (i, s) in t.scores.iter().enumerate() {
                score_mass[i] += s;
            }
            for (e, _) in &t.selected {
                loads[e.0 as usize] += 1;
            }
        }
        LayerRouting {
            layer,
            tokens: tokens.len() as u32,
            loads,
            score_mass,
        }
    }

    /// Builds a routing directly from loads and score masses (used by trace
    /// replay).
    ///
    /// # Panics
    ///
    /// Panics if the two vectors differ in length.
    pub fn from_parts(layer: LayerId, tokens: u32, loads: Vec<u32>, score_mass: Vec<f32>) -> Self {
        assert_eq!(loads.len(), score_mass.len(), "length mismatch");
        LayerRouting {
            layer,
            tokens,
            loads,
            score_mass,
        }
    }

    /// The layer this routing belongs to.
    pub fn layer(&self) -> LayerId {
        self.layer
    }

    /// Number of tokens in the batch.
    pub fn tokens(&self) -> u32 {
        self.tokens
    }

    /// Tokens routed to each expert (indexed by expert id).
    pub fn loads(&self) -> &[u32] {
        &self.loads
    }

    /// Sum of softmax scores per expert across the batch.
    pub fn score_mass(&self) -> &[f32] {
        &self.score_mass
    }

    /// Experts with nonzero load, with their loads, ascending by expert id.
    pub fn activated(&self) -> Vec<(ExpertId, u32)> {
        self.loads
            .iter()
            .enumerate()
            .filter(|(_, l)| **l > 0)
            .map(|(i, l)| (ExpertId(i as u16), *l))
            .collect()
    }

    /// Merges another routing of the **same layer** into this one, adding
    /// loads, score masses and token counts — the aggregation a
    /// continuous-batching server performs when several requests' tokens go
    /// through one forward pass together.
    ///
    /// # Panics
    ///
    /// Panics if the layers or expert counts disagree.
    ///
    /// # Example
    ///
    /// ```
    /// use hybrimoe_model::{LayerId, LayerRouting};
    ///
    /// let mut a = LayerRouting::from_parts(LayerId(0), 1, vec![1, 0], vec![0.9, 0.1]);
    /// let b = LayerRouting::from_parts(LayerId(0), 1, vec![0, 1], vec![0.2, 0.8]);
    /// a.merge(&b);
    /// assert_eq!(a.tokens(), 2);
    /// assert_eq!(a.loads(), &[1, 1]);
    /// ```
    pub fn merge(&mut self, other: &LayerRouting) {
        assert_eq!(self.layer, other.layer, "merging routings across layers");
        assert_eq!(
            self.loads.len(),
            other.loads.len(),
            "merging routings across models"
        );
        self.tokens += other.tokens;
        for (l, o) in self.loads.iter_mut().zip(other.loads.iter()) {
            *l += o;
        }
        for (m, o) in self.score_mass.iter_mut().zip(other.score_mass.iter()) {
            *m += o;
        }
    }

    /// Normalized mean score per expert (score mass divided by tokens),
    /// the `s` of the MRS update rule (Eq. 3).
    pub fn mean_scores(&self) -> Vec<f32> {
        if self.tokens == 0 {
            return vec![0.0; self.score_mass.len()];
        }
        self.score_mass
            .iter()
            .map(|m| m / self.tokens as f32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[0.0, 1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_empty() {
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn top_k_breaks_ties_by_index() {
        let top = top_k(&[0.5, 0.5, 0.5], 2);
        assert_eq!(top[0].0, 0);
        assert_eq!(top[1].0, 1);
    }

    #[test]
    fn top_k_handles_k_equal_len() {
        let top = top_k(&[0.1, 0.3], 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 1);
    }

    #[test]
    #[should_panic(expected = "invalid top-k")]
    fn route_rejects_zero_k() {
        let _ = RouterOutput::route(&[1.0, 2.0], 0);
    }

    #[test]
    fn route_renormalizes_selected() {
        let out = RouterOutput::route(&[3.0, 2.0, 1.0, 0.0], 2);
        let sum: f32 = out.selected.iter().map(|(_, w)| w).sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert_eq!(out.scores.len(), 4);
        let ids: Vec<u16> = out.expert_ids().map(|e| e.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn layer_routing_aggregates_loads_and_mass() {
        let tokens: Vec<RouterOutput> = (0..4)
            .map(|i| {
                let mut logits = vec![0.0f32; 8];
                logits[i % 2] = 5.0;
                RouterOutput::route(&logits, 2)
            })
            .collect();
        let routing = LayerRouting::from_tokens(LayerId(3), 8, &tokens);
        assert_eq!(routing.tokens(), 4);
        assert_eq!(routing.loads().iter().sum::<u32>(), 8); // 4 tokens x top-2
        let mass: f32 = routing.score_mass().iter().sum();
        assert!((mass - 4.0).abs() < 1e-5); // each token's scores sum to 1
        assert_eq!(routing.layer(), LayerId(3));
    }

    #[test]
    fn activated_lists_only_loaded_experts() {
        let routing = LayerRouting::from_parts(LayerId(0), 2, vec![0, 3, 0, 1], vec![0.0; 4]);
        let act = routing.activated();
        assert_eq!(act, vec![(ExpertId(1), 3), (ExpertId(3), 1)]);
    }

    #[test]
    fn merge_adds_loads_mass_and_tokens() {
        let mut a = LayerRouting::from_parts(LayerId(2), 2, vec![1, 0, 1], vec![0.5, 0.2, 0.3]);
        let b = LayerRouting::from_parts(LayerId(2), 1, vec![0, 2, 0], vec![0.1, 0.8, 0.1]);
        a.merge(&b);
        assert_eq!(a.tokens(), 3);
        assert_eq!(a.loads(), &[1, 2, 1]);
        assert!((a.score_mass()[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "across layers")]
    fn merge_rejects_layer_mismatch() {
        let mut a = LayerRouting::from_parts(LayerId(0), 1, vec![1], vec![1.0]);
        let b = LayerRouting::from_parts(LayerId(1), 1, vec![1], vec![1.0]);
        a.merge(&b);
    }

    #[test]
    fn mean_scores_divide_by_tokens() {
        let routing = LayerRouting::from_parts(LayerId(0), 4, vec![0; 2], vec![2.0, 4.0]);
        assert_eq!(routing.mean_scores(), vec![0.5, 1.0]);
        let empty = LayerRouting::from_parts(LayerId(0), 0, vec![0; 2], vec![2.0, 4.0]);
        assert_eq!(empty.mean_scores(), vec![0.0, 0.0]);
    }
}
