//! Expert tensor shapes and their resource accounting.

use hybrimoe_hw::ExpertProfile;
use serde::{Deserialize, Serialize};

/// The `(hidden, intermediate)` dimensions of one SwiGLU expert, matching
/// the "Expert Size" rows of the paper's Table II.
///
/// An expert holds three matrices: gate and up projections of
/// `inter x hidden` and a down projection of `hidden x inter`.
///
/// # Example
///
/// ```
/// use hybrimoe_model::ExpertShape;
///
/// let mixtral = ExpertShape::new(4096, 14336);
/// assert_eq!(mixtral.params(), 3 * 4096 * 14336);
/// // Q4 quantization at 5 bits/weight:
/// assert_eq!(mixtral.packed_bytes(), mixtral.params() * 5 / 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExpertShape {
    hidden: u32,
    inter: u32,
}

impl ExpertShape {
    /// Creates a shape from hidden and intermediate dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(hidden: u32, inter: u32) -> Self {
        assert!(hidden > 0 && inter > 0, "expert dimensions must be nonzero");
        ExpertShape { hidden, inter }
    }

    /// Hidden (model) dimension.
    pub const fn hidden(&self) -> u32 {
        self.hidden
    }

    /// Intermediate dimension.
    pub const fn inter(&self) -> u32 {
        self.inter
    }

    /// Total parameter count across the three matrices.
    pub const fn params(&self) -> u64 {
        3 * self.hidden as u64 * self.inter as u64
    }

    /// Bytes of the Q4-quantized expert (5 bits per weight: 4-bit codes
    /// plus per-block `f32` scales, see `hybrimoe-kernels`).
    pub const fn packed_bytes(&self) -> u64 {
        self.params() * 5 / 8
    }

    /// FLOPs to push one token through the expert (2 per multiply-add).
    pub const fn flops_per_token(&self) -> u64 {
        2 * self.params()
    }

    /// The cost-model profile of this expert.
    pub const fn profile(&self) -> ExpertProfile {
        ExpertProfile::new(self.packed_bytes(), self.flops_per_token())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_matches_table2_mixtral() {
        let s = ExpertShape::new(4096, 14336);
        assert_eq!(s.params(), 176_160_768);
        assert_eq!(s.packed_bytes(), 110_100_480);
        assert_eq!(s.flops_per_token(), 352_321_536);
    }

    #[test]
    fn accounting_matches_table2_deepseek() {
        let s = ExpertShape::new(2048, 1408);
        assert_eq!(s.params(), 8_650_752);
        assert_eq!(s.flops_per_token(), 17_301_504);
    }

    #[test]
    fn profile_carries_bytes_and_flops() {
        let s = ExpertShape::new(64, 96);
        let p = s.profile();
        assert_eq!(p.bytes(), s.packed_bytes());
        assert_eq!(p.flops_per_token(), s.flops_per_token());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimension_rejected() {
        let _ = ExpertShape::new(0, 5);
    }

    #[test]
    fn serde_round_trip() {
        let s = ExpertShape::new(2048, 1408);
        let json = serde_json::to_string(&s).unwrap();
        let back: ExpertShape = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
