//! Full model architecture configurations (paper Table II).

use hybrimoe_hw::ExpertProfile;
use serde::{Deserialize, Serialize};

use crate::{ExpertId, ExpertKey, ExpertShape, LayerId};

/// The architecture of one MoE model, as consumed by the trace generator,
/// the cache and the scheduler.
///
/// The three presets mirror the paper's Table II. One deliberate deviation
/// is documented in DESIGN.md: the table lists Qwen2's routed expert as
/// `(3584, 18944)`, which is the *dense* FFN width of the Qwen2 7B model and
/// is inconsistent both with the published Qwen2-57B-A14B configuration
/// (`moe_intermediate_size = 2560`) and with the paper's own measured decode
/// latencies; [`ModelConfig::qwen2`] therefore uses `(3584, 2560)`.
///
/// # Example
///
/// ```
/// use hybrimoe_model::ModelConfig;
///
/// let ds = ModelConfig::deepseek();
/// assert_eq!(ds.shared_experts, 2);
/// assert_eq!(ds.total_routed_experts(), 26 * 64);
/// assert_eq!(ds.cache_capacity_for_ratio(0.25), 26 * 64 / 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable model name.
    pub name: String,
    /// Number of MoE transformer layers.
    pub layers: u16,
    /// Shared experts activated for every token (0 for Mixtral).
    pub shared_experts: u16,
    /// Routed experts per layer.
    pub routed_experts: u16,
    /// Routed experts activated per token (the K of top-K).
    pub activated_experts: u16,
    /// Shape of each shared expert, if any.
    pub shared_shape: Option<ExpertShape>,
    /// Shape of each routed expert.
    pub routed_shape: ExpertShape,
}

impl ModelConfig {
    /// Mixtral-8x7B-Instruct: few large experts, no shared expert.
    pub fn mixtral() -> Self {
        ModelConfig {
            name: "Mixtral-8x7B".to_owned(),
            layers: 32,
            shared_experts: 0,
            routed_experts: 8,
            activated_experts: 2,
            shared_shape: None,
            routed_shape: ExpertShape::new(4096, 14336),
        }
    }

    /// DeepSeek-V2-Lite-Chat: many small experts plus two shared experts.
    pub fn deepseek() -> Self {
        ModelConfig {
            name: "DeepSeek-V2-Lite".to_owned(),
            layers: 26,
            shared_experts: 2,
            routed_experts: 64,
            activated_experts: 6,
            shared_shape: Some(ExpertShape::new(2048, 1408)),
            routed_shape: ExpertShape::new(2048, 1408),
        }
    }

    /// Qwen2-57B-A14B-Instruct: many small experts plus one large shared
    /// expert (see the type-level note about the routed expert shape).
    pub fn qwen2() -> Self {
        ModelConfig {
            name: "Qwen2-57B-A14B".to_owned(),
            layers: 28,
            shared_experts: 1,
            routed_experts: 64,
            activated_experts: 8,
            shared_shape: Some(ExpertShape::new(3584, 20480)),
            routed_shape: ExpertShape::new(3584, 2560),
        }
    }

    /// A tiny configuration whose weights fit in memory, for real-execution
    /// tests and examples (not a paper model).
    pub fn tiny_test() -> Self {
        ModelConfig {
            name: "tiny-test".to_owned(),
            layers: 4,
            shared_experts: 1,
            routed_experts: 8,
            activated_experts: 2,
            shared_shape: Some(ExpertShape::new(64, 96)),
            routed_shape: ExpertShape::new(64, 96),
        }
    }

    /// The three paper models, in the order the figures list them.
    pub fn paper_models() -> Vec<ModelConfig> {
        vec![
            ModelConfig::deepseek(),
            ModelConfig::mixtral(),
            ModelConfig::qwen2(),
        ]
    }

    /// Total number of routed experts across all layers.
    pub fn total_routed_experts(&self) -> usize {
        self.layers as usize * self.routed_experts as usize
    }

    /// The cost profile of one routed expert.
    pub fn routed_profile(&self) -> ExpertProfile {
        self.routed_shape.profile()
    }

    /// The combined cost profile of the per-token shared-expert work (all
    /// shared experts fused), if the model has shared experts.
    pub fn shared_profile(&self) -> Option<ExpertProfile> {
        let shape = self.shared_shape?;
        if self.shared_experts == 0 {
            return None;
        }
        Some(ExpertProfile::new(
            shape.packed_bytes() * self.shared_experts as u64,
            shape.flops_per_token() * self.shared_experts as u64,
        ))
    }

    /// The cost profile of the non-MoE work of one layer (attention,
    /// norms), which always runs on the GPU. Approximated as the standard
    /// `8 · hidden²` FLOPs per token of fused QKV/output projections.
    pub fn attention_profile(&self) -> ExpertProfile {
        let hidden = self.routed_shape.hidden() as u64;
        // 4 projection matrices of hidden x hidden at 5 bits/weight.
        ExpertProfile::new(4 * hidden * hidden * 5 / 8, 8 * hidden * hidden)
    }

    /// Total bytes of all quantized routed experts (what must live in host
    /// memory when nothing is cached).
    pub fn total_routed_bytes(&self) -> u64 {
        self.total_routed_experts() as u64 * self.routed_shape.packed_bytes()
    }

    /// How many routed experts fit in a cache holding `ratio` of them,
    /// as used by the paper's "GPU expert cache ratio" axis (25/50/75 %).
    ///
    /// The result is clamped to `[0, total_routed_experts()]`.
    pub fn cache_capacity_for_ratio(&self, ratio: f64) -> usize {
        let total = self.total_routed_experts();
        if !ratio.is_finite() || ratio <= 0.0 {
            return 0;
        }
        ((total as f64 * ratio).round() as usize).min(total)
    }

    /// Iterates over every routed expert key of the model, layer-major.
    pub fn expert_keys(&self) -> impl Iterator<Item = ExpertKey> + '_ {
        let experts = self.routed_experts;
        (0..self.layers)
            .flat_map(move |l| (0..experts).map(move |e| ExpertKey::new(LayerId(l), ExpertId(e))))
    }

    /// Whether `key` addresses a valid routed expert of this model.
    pub fn contains(&self, key: ExpertKey) -> bool {
        key.layer.0 < self.layers && key.expert.0 < self.routed_experts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table2() {
        let m = ModelConfig::mixtral();
        assert_eq!((m.layers, m.shared_experts), (32, 0));
        assert_eq!((m.routed_experts, m.activated_experts), (8, 2));
        assert!(m.shared_shape.is_none());

        let q = ModelConfig::qwen2();
        assert_eq!((q.layers, q.shared_experts), (28, 1));
        assert_eq!((q.routed_experts, q.activated_experts), (64, 8));
        assert_eq!(q.shared_shape.unwrap(), ExpertShape::new(3584, 20480));

        let d = ModelConfig::deepseek();
        assert_eq!((d.layers, d.shared_experts), (26, 2));
        assert_eq!((d.routed_experts, d.activated_experts), (64, 6));
        assert_eq!(d.routed_shape, ExpertShape::new(2048, 1408));
    }

    #[test]
    fn cache_capacity_ratios() {
        let m = ModelConfig::mixtral();
        assert_eq!(m.cache_capacity_for_ratio(0.5), 128);
        assert_eq!(m.cache_capacity_for_ratio(0.0), 0);
        assert_eq!(m.cache_capacity_for_ratio(-1.0), 0);
        assert_eq!(m.cache_capacity_for_ratio(2.0), 256);
        assert_eq!(m.cache_capacity_for_ratio(f64::NAN), 0);
    }

    #[test]
    fn shared_profile_scales_with_count() {
        let d = ModelConfig::deepseek();
        let p = d.shared_profile().unwrap();
        let single = d.shared_shape.unwrap();
        assert_eq!(p.bytes(), 2 * single.packed_bytes());
        assert_eq!(p.flops_per_token(), 2 * single.flops_per_token());
        assert!(ModelConfig::mixtral().shared_profile().is_none());
    }

    #[test]
    fn expert_keys_enumerates_all() {
        let t = ModelConfig::tiny_test();
        let keys: Vec<_> = t.expert_keys().collect();
        assert_eq!(keys.len(), t.total_routed_experts());
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert!(keys.iter().all(|k| t.contains(*k)));
        assert!(!t.contains(ExpertKey::new(LayerId(99), ExpertId(0))));
    }

    #[test]
    fn mixtral_total_bytes_are_tens_of_gb() {
        let m = ModelConfig::mixtral();
        let gb = m.total_routed_bytes() as f64 / 1e9;
        assert!(gb > 20.0 && gb < 40.0, "{gb} GB");
    }

    #[test]
    fn paper_models_order() {
        let names: Vec<_> = ModelConfig::paper_models()
            .into_iter()
            .map(|m| m.name)
            .collect();
        assert_eq!(names.len(), 3);
        assert!(names[0].contains("DeepSeek"));
        assert!(names[1].contains("Mixtral"));
        assert!(names[2].contains("Qwen2"));
    }
}
