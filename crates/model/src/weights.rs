//! Synthetic expert weight store for real-execution mode.
//!
//! The paper runs on real model checkpoints; this reproduction generates
//! deterministic synthetic weights instead (DESIGN.md §2). A [`WeightStore`]
//! lazily materializes the quantized [`ExpertFfn`] of any expert key, under
//! an explicit memory budget so that a full-size Mixtral cannot be
//! accidentally instantiated on a laptop.

use std::collections::HashMap;
use std::fmt;

use hybrimoe_kernels::ExpertFfn;

use crate::{ExpertKey, ModelConfig};

/// Errors from [`WeightStore`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightStoreError {
    /// The key does not address a routed expert of the model.
    UnknownExpert(ExpertKey),
    /// Materializing the expert would exceed the store's memory budget.
    BudgetExceeded {
        /// Bytes that would be resident after the materialization.
        needed: u64,
        /// The configured budget.
        budget: u64,
    },
}

impl fmt::Display for WeightStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightStoreError::UnknownExpert(key) => write!(f, "unknown expert {key}"),
            WeightStoreError::BudgetExceeded { needed, budget } => {
                write!(f, "materializing needs {needed} bytes, budget is {budget}")
            }
        }
    }
}

impl std::error::Error for WeightStoreError {}

/// Lazily materialized synthetic expert weights.
///
/// Every expert's weights are generated from a seed derived from the store
/// seed and the expert key, so two stores with the same seed hold identical
/// weights — runs are reproducible without shipping checkpoints.
///
/// # Example
///
/// ```
/// use hybrimoe_model::{ExpertId, ExpertKey, LayerId, ModelConfig, WeightStore};
///
/// let config = ModelConfig::tiny_test();
/// let mut store = WeightStore::new(config, 42, 64 * 1024 * 1024);
/// let key = ExpertKey::new(LayerId(0), ExpertId(3));
/// let ffn = store.expert(key)?;
/// assert_eq!(ffn.hidden(), 64);
/// assert!(store.resident_bytes() > 0);
/// # Ok::<(), hybrimoe_model::WeightStoreError>(())
/// ```
#[derive(Debug)]
pub struct WeightStore {
    config: ModelConfig,
    seed: u64,
    budget_bytes: u64,
    resident: HashMap<ExpertKey, ExpertFfn>,
    resident_bytes: u64,
}

impl WeightStore {
    /// Creates a store for `config` with the given seed and memory budget.
    pub fn new(config: ModelConfig, seed: u64, budget_bytes: u64) -> Self {
        WeightStore {
            config,
            seed,
            budget_bytes,
            resident: HashMap::new(),
            resident_bytes: 0,
        }
    }

    /// The model this store belongs to.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Bytes currently materialized.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Number of experts currently materialized.
    pub fn resident_experts(&self) -> usize {
        self.resident.len()
    }

    /// Returns (materializing if necessary) the weights of `key`.
    ///
    /// # Errors
    ///
    /// Returns [`WeightStoreError::UnknownExpert`] for out-of-range keys and
    /// [`WeightStoreError::BudgetExceeded`] if materialization would exceed
    /// the memory budget.
    pub fn expert(&mut self, key: ExpertKey) -> Result<&ExpertFfn, WeightStoreError> {
        if !self.config.contains(key) {
            return Err(WeightStoreError::UnknownExpert(key));
        }
        if !self.resident.contains_key(&key) {
            let bytes = self.config.routed_shape.packed_bytes();
            let needed = self.resident_bytes + bytes;
            if needed > self.budget_bytes {
                return Err(WeightStoreError::BudgetExceeded {
                    needed,
                    budget: self.budget_bytes,
                });
            }
            let shape = self.config.routed_shape;
            let ffn = ExpertFfn::random(
                shape.hidden() as usize,
                shape.inter() as usize,
                expert_seed(self.seed, key),
            );
            self.resident_bytes += bytes;
            self.resident.insert(key, ffn);
        }
        Ok(self.resident.get(&key).expect("just inserted"))
    }

    /// Drops the materialized weights of `key`, if resident. Returns whether
    /// anything was evicted.
    pub fn evict(&mut self, key: ExpertKey) -> bool {
        if self.resident.remove(&key).is_some() {
            self.resident_bytes -= self.config.routed_shape.packed_bytes();
            true
        } else {
            false
        }
    }
}

/// Derives a unique, stable seed for one expert's weights.
fn expert_seed(store_seed: u64, key: ExpertKey) -> u64 {
    // SplitMix64-style mixing of (seed, layer, expert).
    let mut z = store_seed
        ^ ((key.layer.0 as u64) << 32)
        ^ ((key.expert.0 as u64) << 1)
        ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExpertId, LayerId};

    fn key(l: u16, e: u16) -> ExpertKey {
        ExpertKey::new(LayerId(l), ExpertId(e))
    }

    #[test]
    fn materializes_and_accounts() {
        let mut store = WeightStore::new(ModelConfig::tiny_test(), 1, u64::MAX);
        assert_eq!(store.resident_experts(), 0);
        store.expert(key(0, 0)).unwrap();
        store.expert(key(0, 1)).unwrap();
        assert_eq!(store.resident_experts(), 2);
        let per = store.config().routed_shape.packed_bytes();
        assert_eq!(store.resident_bytes(), 2 * per);
    }

    #[test]
    fn repeated_access_does_not_regenerate() {
        let mut store = WeightStore::new(ModelConfig::tiny_test(), 1, u64::MAX);
        store.expert(key(1, 1)).unwrap();
        let bytes = store.resident_bytes();
        store.expert(key(1, 1)).unwrap();
        assert_eq!(store.resident_bytes(), bytes);
    }

    #[test]
    fn deterministic_across_stores() {
        let mut a = WeightStore::new(ModelConfig::tiny_test(), 7, u64::MAX);
        let mut b = WeightStore::new(ModelConfig::tiny_test(), 7, u64::MAX);
        assert_eq!(a.expert(key(2, 3)).unwrap(), b.expert(key(2, 3)).unwrap());
        let mut c = WeightStore::new(ModelConfig::tiny_test(), 8, u64::MAX);
        assert_ne!(a.expert(key(2, 3)).unwrap(), c.expert(key(2, 3)).unwrap());
    }

    #[test]
    fn distinct_experts_get_distinct_weights() {
        let mut store = WeightStore::new(ModelConfig::tiny_test(), 7, u64::MAX);
        let x = store.expert(key(0, 0)).unwrap().clone();
        let y = store.expert(key(0, 1)).unwrap().clone();
        assert_ne!(x, y);
    }

    #[test]
    fn budget_enforced() {
        let config = ModelConfig::tiny_test();
        let per = config.routed_shape.packed_bytes();
        let mut store = WeightStore::new(config, 1, per); // room for exactly one
        store.expert(key(0, 0)).unwrap();
        let err = store.expert(key(0, 1)).unwrap_err();
        assert!(matches!(err, WeightStoreError::BudgetExceeded { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn eviction_frees_budget() {
        let config = ModelConfig::tiny_test();
        let per = config.routed_shape.packed_bytes();
        let mut store = WeightStore::new(config, 1, per);
        store.expert(key(0, 0)).unwrap();
        assert!(store.evict(key(0, 0)));
        assert!(!store.evict(key(0, 0)));
        store.expert(key(0, 1)).unwrap();
        assert_eq!(store.resident_experts(), 1);
    }

    #[test]
    fn unknown_expert_rejected() {
        let mut store = WeightStore::new(ModelConfig::tiny_test(), 1, u64::MAX);
        let err = store.expert(key(99, 0)).unwrap_err();
        assert_eq!(err, WeightStoreError::UnknownExpert(key(99, 0)));
    }
}
