//! The blocking worker client and the shard-affine client pool.
//!
//! [`WorkerClient`] owns one connection: it performs the Hello handshake
//! on connect, enforces a per-request deadline via socket read timeouts,
//! and supports request pipelining (send several [`ExecuteBatch`] frames,
//! then collect their in-order replies — the worker answers strictly
//! FIFO). [`WorkerClientPool`] owns one slot per configured worker with a
//! reconnect-with-backoff state machine: a failed worker goes `Down` and
//! its experts fall back to local execution until the backoff expires and
//! a reconnect succeeds.

use std::collections::VecDeque;
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use hybrimoe_model::{ids::shard_of, ExpertId};

use crate::protocol::{
    read_frame, write_frame, ErrorReply, ExecuteBatch, ExecuteBatchAck, FrameHeader, HeartbeatAck,
    Hello, HelloAck, LoadShard, LoadShardAck, Opcode, ProtocolError,
};
use crate::transport::WireStream;

/// Where a worker listens: a TCP address or a Unix-domain socket path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP `host:port` address.
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses an endpoint string: `unix:/path/to.sock` selects a
    /// Unix-domain socket, anything else is a TCP `host:port`.
    ///
    /// # Example
    ///
    /// ```
    /// use hybrimoe_worker::Endpoint;
    ///
    /// assert_eq!(
    ///     Endpoint::parse("127.0.0.1:7070"),
    ///     Endpoint::Tcp("127.0.0.1:7070".into())
    /// );
    /// assert_eq!(
    ///     Endpoint::parse("unix:/tmp/w0.sock"),
    ///     Endpoint::Unix("/tmp/w0.sock".into())
    /// );
    /// ```
    pub fn parse(s: &str) -> Endpoint {
        match s.strip_prefix("unix:") {
            Some(path) => Endpoint::Unix(PathBuf::from(path)),
            None => Endpoint::Tcp(s.to_owned()),
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(addr) => f.write_str(addr),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// Client-side failure: either the transport/codec broke, or the worker
/// answered with a protocol-level [`ErrorReply`].
#[derive(Debug)]
pub enum ClientError {
    /// Transport or codec failure (timeouts surface as
    /// [`ProtocolError::Io`] with a `WouldBlock`/`TimedOut` kind,
    /// disconnects as [`ProtocolError::Truncated`]).
    Protocol(ProtocolError),
    /// The worker answered with an error reply.
    Remote(ErrorReply),
}

impl ClientError {
    /// Whether the connection is unusable after this error. Remote error
    /// replies keep the stream in sync; everything else (timeouts
    /// included — a late reply would desynchronize the FIFO) requires a
    /// reconnect.
    pub fn is_fatal(&self) -> bool {
        !matches!(self, ClientError::Remote(_))
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Remote(e) => write!(f, "worker error {:?}: {}", e.code, e.message),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Protocol(e.into())
    }
}

/// Deadline, pipelining and backoff knobs of a client (and of every
/// client a [`WorkerClientPool`] opens).
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// Per-request deadline, enforced as the socket read timeout while
    /// waiting for each reply. `None` waits forever.
    pub deadline: Option<Duration>,
    /// Whether the execution backend may pipeline several in-flight
    /// [`ExecuteBatch`] requests per connection.
    pub pipeline: bool,
    /// First reconnect delay after a worker goes down.
    pub backoff_initial: Duration,
    /// Reconnect delay ceiling (each failed attempt doubles the delay).
    pub backoff_max: Duration,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            deadline: Some(Duration::from_secs(5)),
            pipeline: true,
            backoff_initial: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
        }
    }
}

/// One blocking connection to a worker.
///
/// # Example
///
/// Connect to an in-thread worker, load its shard and execute a batch:
///
/// ```
/// use hybrimoe_worker::protocol::{ExecuteBatch, LoadShard};
/// use hybrimoe_worker::{
///     ClientOptions, Endpoint, WorkerClient, WorkerServer, WorkerServerOptions,
/// };
///
/// let server = WorkerServer::bind(
///     &Endpoint::parse("127.0.0.1:0"),
///     WorkerServerOptions::default(),
/// )
/// .unwrap();
/// let handle = server.spawn();
///
/// let mut client =
///     WorkerClient::connect(handle.endpoint(), ClientOptions::default()).unwrap();
/// let ack = client
///     .load_shard(&LoadShard {
///         seed: 42,
///         worker: 0,
///         num_workers: 1,
///         layers: 4,
///         routed_experts: 8,
///         hidden: 64,
///         inter: 96,
///         weight_budget_bytes: 64 * 1024 * 1024,
///         backend: 1, // scalar
///     })
///     .unwrap();
/// assert_eq!(ack.experts_owned, 8);
///
/// let out = client
///     .execute(&ExecuteBatch {
///         layer: 0,
///         expert: 3,
///         tokens: 2,
///         hidden: 64,
///         data: vec![0.05; 2 * 64],
///     })
///     .unwrap();
/// assert_eq!(out.data.len(), 2 * 64);
/// handle.shutdown();
/// ```
#[derive(Debug)]
pub struct WorkerClient {
    stream: WireStream,
    next_id: u32,
    /// Request ids awaiting their FIFO replies (pipelined executes).
    inflight: VecDeque<u32>,
    payload: Vec<u8>,
}

impl WorkerClient {
    /// Connects and performs the Hello handshake.
    pub fn connect(
        endpoint: &Endpoint,
        options: ClientOptions,
    ) -> Result<WorkerClient, ClientError> {
        let stream = WireStream::connect(endpoint)?;
        stream.set_read_timeout(options.deadline)?;
        let mut client = WorkerClient {
            stream,
            next_id: 1,
            inflight: VecDeque::new(),
            payload: Vec::new(),
        };
        let mut buf = Vec::new();
        Hello::current().encode(&mut buf);
        let id = client.send(Opcode::Hello, &buf)?;
        let header = client.recv(id, Opcode::HelloAck)?;
        debug_assert_eq!(header.opcode, Opcode::HelloAck);
        let ack = HelloAck::decode(&client.payload)?;
        let _ = ack.version; // v1 only today; future versions downshift here.
        Ok(client)
    }

    /// Loads the worker's weight shard.
    pub fn load_shard(&mut self, spec: &LoadShard) -> Result<LoadShardAck, ClientError> {
        let mut buf = Vec::new();
        spec.encode(&mut buf);
        let id = self.send(Opcode::LoadShard, &buf)?;
        self.recv(id, Opcode::LoadShardAck)?;
        Ok(LoadShardAck::decode(&self.payload)?)
    }

    /// Executes one expert batch, blocking for the reply.
    pub fn execute(&mut self, batch: &ExecuteBatch) -> Result<ExecuteBatchAck, ClientError> {
        self.send_execute(batch)?;
        self.recv_execute()
    }

    /// Sends an [`ExecuteBatch`] without waiting (pipelining). Replies
    /// must be collected with [`WorkerClient::recv_execute`] in send
    /// order.
    pub fn send_execute(&mut self, batch: &ExecuteBatch) -> Result<(), ClientError> {
        let mut buf = Vec::new();
        batch.encode(&mut buf);
        let id = self.send(Opcode::ExecuteBatch, &buf)?;
        self.inflight.push_back(id);
        Ok(())
    }

    /// Receives the oldest in-flight execute reply.
    pub fn recv_execute(&mut self) -> Result<ExecuteBatchAck, ClientError> {
        let id = self
            .inflight
            .pop_front()
            .expect("recv_execute with no in-flight request");
        self.recv(id, Opcode::ExecuteBatchAck)?;
        Ok(ExecuteBatchAck::decode(&self.payload)?)
    }

    /// In-flight pipelined requests awaiting replies.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Probes worker liveness.
    pub fn heartbeat(&mut self) -> Result<HeartbeatAck, ClientError> {
        let id = self.send(Opcode::Heartbeat, &[])?;
        self.recv(id, Opcode::HeartbeatAck)?;
        Ok(HeartbeatAck::decode(&self.payload)?)
    }

    /// Asks the worker to finish and close the connection.
    pub fn drain(&mut self) -> Result<(), ClientError> {
        let id = self.send(Opcode::Drain, &[])?;
        self.recv(id, Opcode::DrainAck)?;
        Ok(())
    }

    fn send(&mut self, opcode: Opcode, payload: &[u8]) -> Result<u32, ClientError> {
        debug_assert!(
            opcode == Opcode::ExecuteBatch || self.inflight.is_empty(),
            "only ExecuteBatch may be pipelined"
        );
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        write_frame(&mut self.stream, opcode, id, payload)?;
        Ok(id)
    }

    /// Reads the next reply frame, checking FIFO id correlation, and
    /// leaves its payload in `self.payload`. An [`Opcode::Error`] reply
    /// becomes [`ClientError::Remote`].
    fn recv(&mut self, id: u32, expect: Opcode) -> Result<FrameHeader, ClientError> {
        let header = read_frame(&mut self.stream, &mut self.payload)?;
        if header.request_id != id {
            return Err(ClientError::Protocol(ProtocolError::BadPayload(format!(
                "reply id {} does not match oldest in-flight id {id}",
                header.request_id
            ))));
        }
        if header.opcode == Opcode::Error {
            let reply = ErrorReply::decode(&self.payload)?;
            return Err(ClientError::Remote(reply));
        }
        if header.opcode != expect {
            return Err(ClientError::Protocol(ProtocolError::BadPayload(format!(
                "expected {expect:?}, got {:?}",
                header.opcode
            ))));
        }
        Ok(header)
    }
}

/// Worker fleet health, as published in the serving layer's `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerHealthSnapshot {
    /// Workers configured in the pool.
    pub configured: u64,
    /// Workers currently connected.
    pub up: u64,
    /// Expert batches dispatched remotely.
    pub requests: u64,
    /// Expert batches that fell back to local execution after a worker
    /// failure or while a worker was down.
    pub failovers: u64,
    /// Successful reconnects after a worker was marked down.
    pub reconnects: u64,
    /// Workers whose circuit breaker is currently open (remote dispatch
    /// suspended; traffic routes local until a half-open probe succeeds).
    /// Filled by the engine-side executor — the pool itself tracks
    /// connections, not breakers.
    pub breaker_open: u64,
    /// Cumulative closed→open breaker transitions across the fleet.
    pub breaker_trips: u64,
}

/// The per-worker connection state machine.
#[derive(Debug)]
enum SlotState {
    /// Never connected (or cleanly drained); connect on first use.
    Idle,
    /// Connected and healthy.
    Up(Box<WorkerClient>),
    /// Recently failed; no reconnect attempt before `until`.
    Down {
        /// Earliest next reconnect attempt.
        until: Instant,
        /// Delay to apply after the *next* failed attempt.
        backoff: Duration,
    },
}

#[derive(Debug)]
struct Slot {
    endpoint: Endpoint,
    state: SlotState,
    shard: LoadShard,
    ever_connected: bool,
}

/// A pool of worker connections with static shard affinity
/// (`expert % num_workers`, the same map the multi-GPU cache shards use)
/// and reconnect-with-backoff failover.
#[derive(Debug)]
pub struct WorkerClientPool {
    slots: Vec<Slot>,
    options: ClientOptions,
    requests: u64,
    failovers: u64,
    reconnects: u64,
}

impl WorkerClientPool {
    /// Creates a pool over `endpoints`, one worker per endpoint. `base`
    /// is the shard spec template; each slot gets its own
    /// `(worker, num_workers)` pair. Connections open lazily on first
    /// use, so a pool can be built while its workers are still starting.
    pub fn new(endpoints: &[String], base: LoadShard, options: ClientOptions) -> WorkerClientPool {
        let n = endpoints.len() as u16;
        let slots = endpoints
            .iter()
            .enumerate()
            .map(|(i, e)| Slot {
                endpoint: Endpoint::parse(e),
                state: SlotState::Idle,
                shard: LoadShard {
                    worker: i as u16,
                    num_workers: n,
                    ..base
                },
                ever_connected: false,
            })
            .collect();
        WorkerClientPool {
            slots,
            options,
            requests: 0,
            failovers: 0,
            reconnects: 0,
        }
    }

    /// Workers configured in this pool.
    pub fn num_workers(&self) -> usize {
        self.slots.len()
    }

    /// Whether pipelined dispatch is enabled.
    pub fn pipeline(&self) -> bool {
        self.options.pipeline
    }

    /// The worker owning `expert` under the static shard map.
    pub fn worker_for_expert(&self, expert: ExpertId) -> usize {
        shard_of(expert, self.slots.len())
    }

    /// The connected client of worker `worker`, connecting (with the
    /// Hello handshake and shard load) if the slot is idle or its backoff
    /// has expired. Returns `None` while the worker is down — the caller
    /// executes the expert locally instead.
    pub fn client(&mut self, worker: usize) -> Option<&mut WorkerClient> {
        let options = self.options.clone();
        let attempt_backoff = match &self.slots[worker].state {
            SlotState::Up(_) => None,
            SlotState::Down { until, backoff } => {
                if Instant::now() < *until {
                    return None;
                }
                Some(*backoff)
            }
            SlotState::Idle => Some(options.backoff_initial),
        };
        if let Some(backoff) = attempt_backoff {
            let endpoint = self.slots[worker].endpoint.clone();
            let shard = self.slots[worker].shard;
            match WorkerClient::connect(&endpoint, options.clone())
                .and_then(|mut c| c.load_shard(&shard).map(|_| c))
            {
                Ok(client) => {
                    if self.slots[worker].ever_connected {
                        self.reconnects += 1;
                    }
                    let slot = &mut self.slots[worker];
                    slot.ever_connected = true;
                    slot.state = SlotState::Up(Box::new(client));
                }
                Err(_) => {
                    self.slots[worker].state = SlotState::Down {
                        until: Instant::now() + backoff,
                        backoff: (backoff * 2).min(options.backoff_max),
                    };
                    return None;
                }
            }
        }
        match &mut self.slots[worker].state {
            SlotState::Up(client) => Some(client),
            _ => None,
        }
    }

    /// Marks worker `worker` failed: its connection is dropped and its
    /// experts run locally until the backoff expires and a reconnect
    /// succeeds.
    pub fn fail(&mut self, worker: usize) {
        let initial = self.options.backoff_initial;
        let max = self.options.backoff_max;
        let slot = &mut self.slots[worker];
        let backoff = match &slot.state {
            SlotState::Down { backoff, .. } => *backoff,
            _ => initial,
        };
        slot.state = SlotState::Down {
            until: Instant::now() + backoff,
            backoff: (backoff * 2).min(max),
        };
    }

    /// Counts one remotely-dispatched expert batch.
    pub fn note_request(&mut self) {
        self.requests += 1;
    }

    /// Counts one expert batch that fell back to local execution.
    pub fn note_failover(&mut self) {
        self.failovers += 1;
    }

    /// Current fleet health.
    pub fn health(&self) -> WorkerHealthSnapshot {
        WorkerHealthSnapshot {
            configured: self.slots.len() as u64,
            up: self
                .slots
                .iter()
                .filter(|s| matches!(s.state, SlotState::Up(_)))
                .count() as u64,
            requests: self.requests,
            failovers: self.failovers,
            reconnects: self.reconnects,
            breaker_open: 0,
            breaker_trips: 0,
        }
    }

    /// Drains every connected worker (best-effort; used at shutdown).
    pub fn drain(&mut self) {
        for slot in &mut self.slots {
            if let SlotState::Up(client) = &mut slot.state {
                let _ = client.drain();
            }
            slot.state = SlotState::Idle;
        }
    }
}
