//! The standalone expert-worker process.
//!
//! ```text
//! hybrimoe_worker --listen 127.0.0.1:0 [--threads N] [--fail-after N]
//! ```
//!
//! Binds the endpoint (TCP `host:port`, port 0 allowed, or
//! `unix:/path.sock`), prints `listening on <endpoint>` on stdout so a
//! parent process can read back the resolved port, and serves until a
//! client sends Drain. `--fail-after N` is the fault-injection knob used
//! by failover demos: the worker crashes mid-request after N executes.

use std::process::ExitCode;

use hybrimoe_worker::{Endpoint, WorkerServer, WorkerServerOptions};

fn main() -> ExitCode {
    let mut listen = String::from("127.0.0.1:0");
    let mut options = WorkerServerOptions::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--listen" => listen = value("--listen"),
            "--threads" => {
                options.threads = value("--threads").parse().expect("--threads: not a number")
            }
            "--fail-after" => {
                options.fail_after_executes = Some(
                    value("--fail-after")
                        .parse()
                        .expect("--fail-after: not a number"),
                )
            }
            "--help" | "-h" => {
                println!(
                    "usage: hybrimoe_worker [--listen ADDR|unix:PATH] [--threads N] [--fail-after N]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let server = match WorkerServer::bind(&Endpoint::parse(&listen), options) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The parent reads this line to learn the resolved port when
    // listening on port 0.
    println!("listening on {}", server.endpoint());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("worker failed: {e}");
            ExitCode::FAILURE
        }
    }
}
