//! The standalone expert-worker process.
//!
//! ```text
//! hybrimoe_worker --listen 127.0.0.1:0 [--threads N] [--fault-plan SPEC] [--fail-after N]
//! ```
//!
//! Binds the endpoint (TCP `host:port`, port 0 allowed, or
//! `unix:/path.sock`), prints `listening on <endpoint>` on stdout so a
//! parent process can read back the resolved port, and serves until a
//! client sends Drain.
//!
//! `--fault-plan seed=S,key=val,...` arms the deterministic fault
//! injector (see `hybrimoe_fault::FaultPlan::parse_spec` for the knobs:
//! `conn_drop_ppm`, `reply_delay_ppm`/`reply_delay_ms`, `corrupt_ppm`,
//! `truncate_ppm`, `fail_after`). `--fail-after N` is the legacy
//! crash-only knob, kept as an alias for `--fault-plan fail_after=N`:
//! the worker crashes mid-request after N executes.

use std::process::ExitCode;

use hybrimoe_fault::FaultPlan;
use hybrimoe_worker::{Endpoint, WorkerServer, WorkerServerOptions};

fn main() -> ExitCode {
    let mut listen = String::from("127.0.0.1:0");
    let mut options = WorkerServerOptions::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--listen" => listen = value("--listen"),
            "--threads" => {
                options.threads = value("--threads").parse().expect("--threads: not a number")
            }
            "--fault-plan" => {
                let spec = value("--fault-plan");
                let plan = match FaultPlan::parse_spec(&spec) {
                    Ok(plan) => plan,
                    Err(e) => {
                        eprintln!("--fault-plan: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                // --fail-after may have set the folded knob already; the
                // plan wins for everything it names, the alias fills in.
                let fail_after = options.fault_plan.rates.fail_after;
                options.fault_plan = plan;
                if options.fault_plan.rates.fail_after.is_none() {
                    options.fault_plan.rates.fail_after = fail_after;
                }
            }
            // Legacy alias for `--fault-plan fail_after=N`.
            "--fail-after" => {
                options.fault_plan.rates.fail_after = Some(
                    value("--fail-after")
                        .parse()
                        .expect("--fail-after: not a number"),
                )
            }
            "--help" | "-h" => {
                println!(
                    "usage: hybrimoe_worker [--listen ADDR|unix:PATH] [--threads N] \
                     [--fault-plan seed=S,key=val,...] [--fail-after N]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let server = match WorkerServer::bind(&Endpoint::parse(&listen), options) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The parent reads this line to learn the resolved port when
    // listening on port 0.
    println!("listening on {}", server.endpoint());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("worker failed: {e}");
            ExitCode::FAILURE
        }
    }
}
