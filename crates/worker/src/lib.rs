//! # hybrimoe-worker
//!
//! Out-of-process expert workers for scale-out MoE serving.
//!
//! HybriMoE's scheduler treats every compute resource as a queue with a
//! transfer cost; this crate extends the set of resources past the local
//! box. A worker owns a deterministic weight shard (the same
//! `expert % num_workers` affinity map the multi-GPU cache shards use) and
//! executes each expert's gathered token batch on request, speaking a
//! compact length-prefixed framed protocol over TCP or Unix-domain
//! sockets:
//!
//! * [`protocol`] — the codec: 14-byte big-endian frame header (magic,
//!   version, opcode, request id, payload length), typed payloads, and the
//!   error-reply and version-negotiation rules. Byte-level documentation
//!   lives in `docs/protocol.md`, kept honest by a round-trip test.
//! * [`server`] — [`WorkerServer`]: the worker side. Runs in-process on a
//!   thread (deterministic tests/benches) or standalone via the
//!   `hybrimoe_worker` bin.
//! * [`client`] — [`WorkerClient`] (blocking, pipelined, per-request
//!   deadlines) and [`WorkerClientPool`] (shard-affine routing,
//!   reconnect-with-backoff, health counters for `/metrics`).
//!
//! The engine side lives in the `hybrimoe` core crate: its
//! `RemoteBackend` gathers tokens expert-major exactly like local
//! execution, ships each batch to the expert's shard-affine worker, and
//! falls back to local execution per expert when a worker is down —
//! outputs are bit-identical either way.
//!
//! ## Example
//!
//! ```
//! use hybrimoe_worker::protocol::{ExecuteBatch, LoadShard};
//! use hybrimoe_worker::{
//!     ClientOptions, Endpoint, WorkerClient, WorkerServer, WorkerServerOptions,
//! };
//!
//! // A worker in a thread, speaking the real codec over a real socket.
//! let server = WorkerServer::bind(
//!     &Endpoint::parse("127.0.0.1:0"),
//!     WorkerServerOptions::default(),
//! )
//! .unwrap();
//! let handle = server.spawn();
//!
//! let mut client =
//!     WorkerClient::connect(handle.endpoint(), ClientOptions::default()).unwrap();
//! client
//!     .load_shard(&LoadShard {
//!         seed: 42,
//!         worker: 0,
//!         num_workers: 1,
//!         layers: 4,
//!         routed_experts: 8,
//!         hidden: 64,
//!         inter: 96,
//!         weight_budget_bytes: 64 * 1024 * 1024,
//!         backend: 1, // scalar
//!     })
//!     .unwrap();
//! let ack = client
//!     .execute(&ExecuteBatch {
//!         layer: 0,
//!         expert: 0,
//!         tokens: 1,
//!         hidden: 64,
//!         data: vec![0.1; 64],
//!     })
//!     .unwrap();
//! assert!(ack.data.iter().all(|v| v.is_finite()));
//! handle.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;
pub mod transport;

pub use client::{
    ClientError, ClientOptions, Endpoint, WorkerClient, WorkerClientPool, WorkerHealthSnapshot,
};
pub use server::{WorkerHandle, WorkerServer, WorkerServerOptions};
pub use transport::{FrameFate, FrameInjector, NoFaults};

/// The wire encoding of `KernelBackendKind` used by
/// [`protocol::LoadShard::backend`]: the engine pins the worker's kernel
/// backend so remote outputs are bit-identical to local ones.
pub mod wire_backend {
    use hybrimoe_kernels::KernelBackendKind;

    /// Encodes a kernel backend kind as its wire byte.
    pub fn to_wire(kind: KernelBackendKind) -> u8 {
        match kind {
            KernelBackendKind::Auto => 0,
            KernelBackendKind::Scalar => 1,
            KernelBackendKind::Portable => 2,
            KernelBackendKind::Avx2 => 3,
        }
    }

    /// Decodes a wire byte back to a kernel backend kind.
    pub fn from_wire(byte: u8) -> Option<KernelBackendKind> {
        Some(match byte {
            0 => KernelBackendKind::Auto,
            1 => KernelBackendKind::Scalar,
            2 => KernelBackendKind::Portable,
            3 => KernelBackendKind::Avx2,
            _ => return None,
        })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn wire_round_trips() {
            for kind in [
                KernelBackendKind::Auto,
                KernelBackendKind::Scalar,
                KernelBackendKind::Portable,
                KernelBackendKind::Avx2,
            ] {
                assert_eq!(from_wire(to_wire(kind)), Some(kind));
            }
            assert_eq!(from_wire(9), None);
        }
    }
}
